"""Declarative fault-plan grammar and registry.

A :class:`FaultPlan` describes, per link, which faults the interconnect
may inject: message drop, duplication, payload corruption, delay jitter,
reordering, and deterministic transient link-down windows.  Plans are
selected by name through ``MachineParams.faults`` (like fabrics and
coherence protocols) and applied by wrapping any fabric in
:class:`repro.faults.fabric.FaultyFabric`.

Plans are *declarative data*: every fault decision is drawn from a seeded
RNG stream keyed by ``(fault_seed, source, dest, per-link message index)``,
so a run under a given ``(plan, seed)`` is bit-reproducible regardless of
process interleaving, ``--jobs`` parallelism, or host.  The plan name is
part of ``MachineParams`` and therefore folds into the spec hash — fault
runs are cache-keyed like any other experiment point.

Grammar
-------

``MachineParams.faults`` accepts either a registered plan name
(``"lossy1"``, ``"chaos"``, …) or an inline single-rule spec::

    drop=0.01,dup=0.002,corrupt=0.001,jitter=20,reorder=0.05:40,down=1000/50

where ``reorder=RATE:WINDOW`` delays a fraction RATE of messages by up to
WINDOW extra cycles (letting later messages overtake) and
``down=PERIOD/CYCLES`` takes every link down for the first CYCLES of each
PERIOD-cycle interval.  Multi-rule plans (per-link patterns like
``"3->*"``) are built programmatically and registered with
:func:`register_plan`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple


class FaultPlanError(ValueError):
    """Raised for malformed fault plans or unknown plan names."""


def _parse_endpoint(text: str) -> Optional[int]:
    text = text.strip()
    if text == "*":
        return None
    try:
        return int(text)
    except ValueError as exc:
        raise FaultPlanError(f"bad link endpoint {text!r} (want int or '*')") from exc


@dataclass(frozen=True)
class FaultRule:
    """Fault profile applied to the links matching ``links``.

    ``links`` selects directed links: ``"*"`` (every link), ``"2->5"``
    (one directed link), ``"3->*"`` / ``"*->3"`` (every link out of / into
    a node), or ``"3<->*"`` (both directions touching a node).  Rules are
    evaluated in declaration order; the first matching rule applies.
    """

    links: str = "*"
    #: Probability a message is silently dropped after link-level accept
    #: (the hardware sliding-window slot is still freed; recovery is the
    #: end-to-end reliability layer's job).
    drop: float = 0.0
    #: Probability a message is delivered twice.
    duplicate: float = 0.0
    #: Probability a message arrives with its payload corrupted
    #: (``NetworkMessage.corrupted``); the reliability layer discards it.
    corrupt: float = 0.0
    #: Max extra delivery delay (cycles), uniform in [0, jitter], applied
    #: to every message on the link.
    jitter: int = 0
    #: Fraction of messages additionally held back by up to
    #: ``reorder_window`` cycles so later messages can overtake.
    reorder: float = 0.0
    reorder_window: int = 0
    #: Deterministic transient outage: the link is down for the first
    #: ``down_cycles`` of every ``down_period``-cycle interval (starting at
    #: ``down_phase``); messages injected while down are dropped.
    down_period: int = 0
    down_cycles: int = 0
    down_phase: int = 0

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "corrupt", "reorder"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultPlanError(f"{name} rate {rate!r} not in [0, 1]")
        for name in ("jitter", "reorder_window", "down_period", "down_cycles", "down_phase"):
            if getattr(self, name) < 0:
                raise FaultPlanError(f"{name} must be >= 0")
        if self.reorder > 0.0 and self.reorder_window <= 0:
            raise FaultPlanError("reorder rate needs a positive reorder_window")
        if self.down_cycles > 0 and self.down_period <= self.down_cycles:
            raise FaultPlanError("down_period must exceed down_cycles")
        # Parse eagerly so bad patterns fail at construction, not mid-run.
        self._compile_links()

    def _compile_links(self) -> Tuple[Tuple[Optional[int], Optional[int]], ...]:
        """Directed (src, dst) patterns this rule matches (None = any)."""
        text = self.links.strip()
        if text in ("*", "*->*"):
            return ((None, None),)
        if "<->" in text:
            left, right = text.split("<->", 1)
            a, b = _parse_endpoint(left), _parse_endpoint(right)
            return ((a, b), (b, a))
        if "->" in text:
            left, right = text.split("->", 1)
            return ((_parse_endpoint(left), _parse_endpoint(right)),)
        raise FaultPlanError(f"bad links pattern {self.links!r}")

    def matches(self, src: int, dst: int) -> bool:
        for a, b in self._compile_links():
            if (a is None or a == src) and (b is None or b == dst):
                return True
        return False

    def is_noop(self) -> bool:
        return (
            self.drop == 0.0
            and self.duplicate == 0.0
            and self.corrupt == 0.0
            and self.jitter == 0
            and self.reorder == 0.0
            and self.down_cycles == 0
        )

    def is_lossy(self) -> bool:
        """True if this rule can lose or damage a message (drop, duplicate,
        corrupt, or outage) — i.e. completing under it needs end-to-end
        reliability, not just patience."""
        return (
            self.drop > 0.0
            or self.duplicate > 0.0
            or self.corrupt > 0.0
            or self.down_cycles > 0
        )


@dataclass(frozen=True)
class FaultPlan:
    """A named, ordered collection of :class:`FaultRule`."""

    name: str
    rules: Tuple[FaultRule, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise FaultPlanError("fault plan needs a name")
        object.__setattr__(self, "rules", tuple(self.rules))

    def rule_for(self, src: int, dst: int) -> Optional[FaultRule]:
        """First rule matching the directed link, or None (no faults)."""
        for rule in self.rules:
            if rule.matches(src, dst):
                return None if rule.is_noop() else rule
        return None

    def is_lossy(self) -> bool:
        return any(rule.is_lossy() for rule in self.rules)

    def describe(self) -> str:
        if self.description:
            return f"{self.name}: {self.description}"
        return self.name

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "description": self.description,
            "rules": [
                {
                    "links": r.links,
                    "drop": r.drop,
                    "duplicate": r.duplicate,
                    "corrupt": r.corrupt,
                    "jitter": r.jitter,
                    "reorder": r.reorder,
                    "reorder_window": r.reorder_window,
                    "down_period": r.down_period,
                    "down_cycles": r.down_cycles,
                    "down_phase": r.down_phase,
                }
                for r in self.rules
            ],
        }


# ----------------------------------------------------------------------
# Inline grammar
# ----------------------------------------------------------------------

_INLINE_KEYS = ("drop", "dup", "corrupt", "jitter", "reorder", "down")


def parse_inline(text: str) -> FaultPlan:
    """Parse an inline single-rule plan like ``"drop=0.01,reorder=0.05:40"``."""
    fields: Dict[str, object] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise FaultPlanError(f"bad inline fault term {part!r} (want key=value)")
        key, _, value = part.partition("=")
        key = key.strip()
        value = value.strip()
        try:
            if key == "drop":
                fields["drop"] = float(value)
            elif key == "dup":
                fields["duplicate"] = float(value)
            elif key == "corrupt":
                fields["corrupt"] = float(value)
            elif key == "jitter":
                fields["jitter"] = int(value)
            elif key == "reorder":
                rate, _, window = value.partition(":")
                fields["reorder"] = float(rate)
                fields["reorder_window"] = int(window) if window else 40
            elif key == "down":
                period, _, cycles = value.partition("/")
                fields["down_period"] = int(period)
                fields["down_cycles"] = int(cycles) if cycles else int(period) // 10
            else:
                raise FaultPlanError(
                    f"unknown inline fault key {key!r} (known: {', '.join(_INLINE_KEYS)})"
                )
        except ValueError as exc:
            raise FaultPlanError(f"bad value in fault term {part!r}: {exc}") from exc
    return FaultPlan(name=text, rules=(FaultRule(**fields),), description="inline plan")


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_PLANS: Dict[str, FaultPlan] = {}


def register_plan(plan: FaultPlan) -> FaultPlan:
    """Register a named plan (overwriting any previous registration)."""
    _PLANS[plan.name] = plan
    return plan


def registered_plans() -> Tuple[str, ...]:
    return tuple(sorted(_PLANS))


def resolve_plan(name: str) -> FaultPlan:
    """Resolve ``MachineParams.faults``: registry name or inline grammar."""
    if not name:
        raise FaultPlanError("empty fault plan name")
    plan = _PLANS.get(name)
    if plan is not None:
        return plan
    if "=" in name:
        return parse_inline(name)
    raise FaultPlanError(
        f"unknown fault plan {name!r} (registered: {', '.join(registered_plans())}; "
        "or inline like 'drop=0.01,reorder=0.05:40')"
    )


def scaled_plan(plan: FaultPlan, factor: float) -> FaultPlan:
    """A copy of ``plan`` with every fault *rate* scaled by ``factor``
    (clamped to [0, 1]; windows/jitter magnitudes unchanged).  Used by the
    fault-parameterized sweep preset."""
    if factor < 0:
        raise FaultPlanError("scale factor must be >= 0")

    def clamp(rate: float) -> float:
        return min(1.0, rate * factor)

    rules = tuple(
        replace(
            r,
            drop=clamp(r.drop),
            duplicate=clamp(r.duplicate),
            corrupt=clamp(r.corrupt),
            reorder=clamp(r.reorder),
        )
        for r in plan.rules
    )
    scaled = FaultPlan(
        name=f"{plan.name}*{factor:g}",
        rules=rules,
        description=f"{plan.describe()} (rates x{factor:g})",
    )
    return register_plan(scaled)


# ----------------------------------------------------------------------
# Built-in plans
# ----------------------------------------------------------------------

register_plan(
    FaultPlan(
        name="zero",
        rules=(FaultRule(),),
        description="all rates zero — wrapper overhead / determinism baseline",
    )
)

register_plan(
    FaultPlan(
        name="lossy1",
        rules=(FaultRule(drop=0.01, reorder=0.05, reorder_window=60),),
        description="1% drop + 5% reorder within 60 cycles on every link",
    )
)

register_plan(
    FaultPlan(
        name="lossy5",
        rules=(
            FaultRule(
                drop=0.05,
                duplicate=0.01,
                corrupt=0.005,
                jitter=20,
                reorder=0.1,
                reorder_window=80,
            ),
        ),
        description="heavy loss: 5% drop, 1% dup, 0.5% corrupt, jitter + reorder",
    )
)

register_plan(
    FaultPlan(
        name="jitter",
        rules=(FaultRule(jitter=40),),
        description="delay jitter only (non-lossy): up to 40 extra cycles",
    )
)

register_plan(
    FaultPlan(
        name="flaky-links",
        rules=(
            FaultRule(drop=0.002, down_period=20_000, down_cycles=1_000, down_phase=5_000),
        ),
        description="transient outages: every link down 1k of every 20k cycles",
    )
)

register_plan(
    FaultPlan(
        name="chaos",
        rules=(
            FaultRule(
                drop=0.02,
                duplicate=0.01,
                corrupt=0.01,
                jitter=30,
                reorder=0.1,
                reorder_window=100,
                down_period=50_000,
                down_cycles=2_000,
            ),
        ),
        description="everything at once — the chaos-smoke plan",
    )
)
