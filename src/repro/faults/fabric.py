"""Deterministic fault-injecting wrapper around any network fabric.

:class:`FaultyFabric` wraps an :class:`repro.network.fabric.AbstractFabric`
(ideal/xbar/mesh/torus — anything honoring the fabric surface) and applies
a :class:`repro.faults.plan.FaultPlan` at the link level.  The inner
fabric is unmodified: the wrapper intercepts ``inject`` and shims each
endpoint's delivery/ack callbacks at ``attach`` time.

Determinism: every fault decision for a message is drawn from a fresh
``random.Random`` seeded by an explicit integer mix of
``(fault_seed, source, dest, per-link message index)``.  No use of
``hash()`` (randomized across processes) and no shared stream — the
decision sequence for a link depends only on how many messages that link
has carried, so serial and ``--jobs`` parallel runs are bit-identical.

Semantics (documented simplifications):

* **Drops** happen *after* link-level accept: the wrapper counts the drop
  and returns a hardware ack to the sender so the sliding-window slot is
  freed (credit/control wiring is modelled as reliable).  Recovery is
  purely the end-to-end reliability layer's job.
* **Duplicates** are delivered as a second copy; the receiving NI
  hardware-acks both, and the wrapper's ack shim absorbs the extra ack so
  the sender's window never sees a spurious credit.
* **Corruption** flags ``message.corrupted``; delivery and hardware acks
  proceed normally, and the reliable messaging layer discards the payload
  (forcing a retransmission).
* **Jitter/reorder** add extra delay at the delivery boundary; the inner
  fabric's latency samples record the pre-jitter arrival.
* **Link-down windows** are a deterministic schedule (no RNG): messages
  injected while the link is down are dropped (window slot still freed).

Links with an all-zero profile take a synchronous pass-through path that
adds no events and no delays, so a zero-rate plan is bit-identical to
running without the wrapper.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Callable, Dict, Optional, Tuple

from repro.common.types import NetworkMessage
from repro.faults.plan import FaultPlan, FaultRule
from repro.network.fabric import AbstractFabric
from repro.sim import Counter, Samples

_MIX_MULT = 1_000_003
_MIX_MASK = 0xFFFF_FFFF_FFFF_FFFF


def _stream_key(seed: int, src: int, dst: int, uid: int) -> int:
    """Explicit integer mix — stable across processes and Python builds."""
    key = seed & _MIX_MASK
    for value in (src, dst, uid):
        key = (key * _MIX_MULT + value + 1) & _MIX_MASK
    return key


class FaultyFabric:
    """Wrap ``inner`` so it injects the faults described by ``plan``.

    Presents the full fabric surface (attach/inject/send_ack/stats/...),
    sharing the inner fabric's ``stats`` counter so machine-level network
    statistics are unchanged; fault events are tallied separately in
    ``fault_counts`` and recovery-free extra delays in ``delay_samples``.
    """

    def __init__(self, inner: AbstractFabric, plan: FaultPlan, seed: int = 0):
        self.inner = inner
        self.plan = plan
        self.seed = seed
        self.sim = inner.sim
        self.params = inner.params
        self.fault_counts = Counter()
        self.delay_samples = Samples()
        #: Per directed link: resolved FaultRule or None (pass-through).
        self._profiles: Dict[Tuple[int, int], Optional[FaultRule]] = {}
        #: Per directed link: messages seen (the RNG stream index).
        self._uids: Dict[Tuple[int, int], int] = {}
        #: Extra delivery delay for in-flight messages, keyed by identity
        #: (the message object is kept alive by the scheduled event).
        self._pending: Dict[int, int] = {}
        #: (sender, dest) -> hardware acks to absorb (from duplicates).
        self._extra_acks: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # Forwarded fabric surface
    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        return self.inner.kind

    @property
    def spec(self):
        return self.inner.spec

    @property
    def stats(self) -> Counter:
        return self.inner.stats

    @property
    def latency_samples(self) -> Samples:
        return self.inner.latency_samples

    @property
    def node_ids(self):
        return self.inner.node_ids

    def detach(self, node_id: int) -> None:
        self.inner.detach(node_id)

    def wire_bytes(self, message: NetworkMessage) -> int:
        return self.inner.wire_bytes(message)

    def serialization_cycles(self, wire_bytes: int) -> int:
        return self.inner.serialization_cycles(wire_bytes)

    def delivery_delay(self, message: NetworkMessage) -> int:
        return self.inner.delivery_delay(message)

    def ack_delay(self, from_node: int, to_node: int) -> int:
        return self.inner.ack_delay(from_node, to_node)

    def send_ack(self, from_node: int, to_node: int) -> None:
        self.inner.send_ack(from_node, to_node)

    def describe(self) -> str:
        return f"{self.inner.describe()} + faults[{self.plan.name}]"

    def __repr__(self) -> str:
        return f"<FaultyFabric {self.describe()}>"

    # ------------------------------------------------------------------
    # Endpoint shims
    # ------------------------------------------------------------------
    def attach(
        self,
        node_id: int,
        on_message: Callable[[NetworkMessage], None],
        on_ack: Callable[[int], None],
    ) -> None:
        self.inner.attach(
            node_id,
            self._make_on_message(on_message),
            self._make_on_ack(node_id, on_ack),
        )

    def _make_on_message(self, real: Callable[[NetworkMessage], None]):
        pending = self._pending

        def deliver(message: NetworkMessage) -> None:
            extra = pending.pop(id(message), 0)
            if extra:
                self.sim.schedule_call(extra, self._deliver_delayed, (real, message))
            else:
                real(message)

        return deliver

    def _deliver_delayed(self, real: Callable[[NetworkMessage], None], message: NetworkMessage) -> None:
        message.deliver_time = self.sim.now
        real(message)

    def _make_on_ack(self, node_id: int, real: Callable[[int], None]):
        extra_acks = self._extra_acks

        def on_ack(from_node: int) -> None:
            key = (node_id, from_node)
            owed = extra_acks.get(key, 0)
            if owed:
                extra_acks[key] = owed - 1
                self.fault_counts.add("dup_acks_absorbed")
                return
            real(from_node)

        return on_ack

    # ------------------------------------------------------------------
    # Fault decisions (all drawn at injection time)
    # ------------------------------------------------------------------
    def _profile(self, src: int, dst: int) -> Optional[FaultRule]:
        key = (src, dst)
        try:
            return self._profiles[key]
        except KeyError:
            profile = self.plan.rule_for(src, dst)
            self._profiles[key] = profile
            return profile

    def _link_down(self, profile: FaultRule) -> bool:
        if not profile.down_cycles:
            return False
        return (self.sim.now - profile.down_phase) % profile.down_period < profile.down_cycles

    def inject(self, message: NetworkMessage) -> None:
        profile = self._profile(message.source, message.dest)
        if profile is None:
            self.inner.inject(message)
            return
        link = (message.source, message.dest)
        uid = self._uids.get(link, 0)
        self._uids[link] = uid + 1
        if self._link_down(profile):
            self.fault_counts.add("link_down_drops")
            self.fault_counts.add("drops")
            # Free the sender's hardware window slot: the link-level accept
            # succeeded, the message was lost past it.
            self.inner.send_ack(message.dest, message.source)
            return
        rng = random.Random(_stream_key(self.seed, message.source, message.dest, uid))
        if profile.drop and rng.random() < profile.drop:
            self.fault_counts.add("drops")
            self.inner.send_ack(message.dest, message.source)
            return
        if profile.corrupt and rng.random() < profile.corrupt:
            message.corrupted = True
            self.fault_counts.add("corruptions")
        extra = 0
        if profile.jitter:
            extra += rng.randint(0, profile.jitter)
        if profile.reorder and rng.random() < profile.reorder:
            extra += rng.randint(1, profile.reorder_window)
            self.fault_counts.add("reordered")
        duplicate = bool(profile.duplicate) and rng.random() < profile.duplicate
        if extra:
            self._pending[id(message)] = extra
            self.fault_counts.add("delayed")
            self.delay_samples.record(extra)
        self.inner.inject(message)
        if duplicate:
            copy = replace(message, inject_time=0, deliver_time=0)
            self.fault_counts.add("duplicates")
            # The receiver hardware-acks both copies; absorb the second ack
            # so the sender's sliding window stays balanced.
            self._extra_acks[link] = self._extra_acks.get(link, 0) + 1
            trail = rng.randint(1, max(8, profile.reorder_window, profile.jitter))
            self._pending[id(copy)] = extra + trail
            self.delay_samples.record(extra + trail)
            self.inner.inject(copy)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def fault_stats(self) -> Dict[str, object]:
        out: Dict[str, object] = {"plan": self.plan.name, "seed": self.seed}
        out.update(self.fault_counts.as_dict())
        if self.delay_samples.count:
            out["extra_delay_mean"] = round(self.delay_samples.mean, 3)
            out["extra_delay_max"] = self.delay_samples.maximum
        return out


def wrap_fabric(inner: AbstractFabric, faults: str, seed: int = 0) -> FaultyFabric:
    """Resolve ``faults`` (registry name or inline grammar) and wrap."""
    from repro.faults.plan import resolve_plan

    return FaultyFabric(inner, resolve_plan(faults), seed=seed)
