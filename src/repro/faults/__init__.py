"""Deterministic, seeded fault injection for the CNI reproduction.

* :mod:`repro.faults.plan` — declarative :class:`FaultPlan` grammar,
  inline-spec parser, and the named-plan registry (``lossy1``, ``chaos``,
  …), selected through ``MachineParams.faults``.
* :mod:`repro.faults.fabric` — :class:`FaultyFabric`, a wrapper that
  composes over any registered fabric and injects drops, duplicates,
  corruption, jitter, reordering and transient link outages from
  bit-reproducible seeded streams.
"""

from repro.faults.fabric import FaultyFabric, wrap_fabric
from repro.faults.plan import (
    FaultPlan,
    FaultPlanError,
    FaultRule,
    parse_inline,
    register_plan,
    registered_plans,
    resolve_plan,
    scaled_plan,
)

__all__ = [
    "FaultPlan",
    "FaultPlanError",
    "FaultRule",
    "FaultyFabric",
    "parse_inline",
    "register_plan",
    "registered_plans",
    "resolve_plan",
    "scaled_plan",
    "wrap_fabric",
]
