"""Discrete-event simulation engine.

The engine is a small, dependency-free kernel in the spirit of SimPy.  Time
is an integer number of processor cycles.  Components schedule callbacks on a
binary-heap event queue; higher-level code usually uses generator-based
processes (see :mod:`repro.sim.process`) instead of raw callbacks.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class _ScheduledEvent:
    """A single entry in the event queue.

    Cancellation is implemented by flagging the entry rather than removing it
    from the heap, which keeps :meth:`Simulator.cancel` O(1).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: int, seq: int, callback: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "_ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """Event-driven simulator with integer cycle timestamps.

    The public surface is deliberately small:

    * :meth:`schedule` / :meth:`cancel` for raw callbacks,
    * :meth:`run` to drain the event queue,
    * :attr:`now` for the current simulated time.

    Processes are layered on top in :mod:`repro.sim.process`.
    """

    def __init__(self) -> None:
        self._queue: list[_ScheduledEvent] = []
        self._seq = itertools.count()
        self._now = 0
        self._running = False
        self.event_count = 0

    @property
    def now(self) -> int:
        """Current simulated time in processor cycles."""
        return self._now

    def schedule(self, delay: int, callback: Callable, *args: Any) -> _ScheduledEvent:
        """Schedule ``callback(*args)`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        event = _ScheduledEvent(self._now + int(delay), next(self._seq), callback, args)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: int, callback: Callable, *args: Any) -> _ScheduledEvent:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(f"cannot schedule at {time}, current time is {self._now}")
        event = _ScheduledEvent(int(time), next(self._seq), callback, args)
        heapq.heappush(self._queue, event)
        return event

    def cancel(self, event: _ScheduledEvent) -> None:
        """Cancel a previously scheduled event (no-op if already run)."""
        event.cancelled = True

    def peek(self) -> Optional[int]:
        """Return the time of the next pending event, or ``None`` if idle."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        if not self._queue:
            return None
        return self._queue[0].time

    def step(self) -> bool:
        """Run the next pending event.  Returns False if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self.event_count += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have executed.  Returns the final simulated time."""
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        executed = 0
        try:
            while True:
                next_time = self.peek()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                if max_events is not None and executed >= max_events:
                    break
                self.step()
                executed += 1
        finally:
            self._running = False
        return self._now
