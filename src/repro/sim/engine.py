"""Discrete-event simulation engine.

The engine is a small, dependency-free kernel in the spirit of SimPy.  Time
is an integer number of processor cycles.  Components schedule callbacks on
the event queue; higher-level code usually uses generator-based processes
(see :mod:`repro.sim.process`) instead of raw callbacks.

Internally the kernel keeps two scheduling structures:

* a binary heap of ``(time, seq, event)`` tuples for future events — tuple
  entries keep heap comparisons in C (``seq`` is unique, so the event object
  itself is never compared), and
* a same-cycle FIFO *lane* (a deque) for events scheduled with zero delay.
  Zero-delay events dominate process execution (resource grants, signal
  wake-ups, process starts), and the lane turns each of them into an O(1)
  append/popleft instead of two O(log n) heap operations.

The two structures are merged by ``(time, seq)`` when events are popped, so
the execution order is exactly the order a single global heap would produce.
Event records are slotted objects recycled through a free pool; only events
whose handle escapes through the public :meth:`Simulator.schedule` /
:meth:`Simulator.schedule_at` API are exempt from recycling, which keeps
:meth:`Simulator.cancel` safe on stale handles.
"""

from __future__ import annotations

import time as _time
from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Dict, Optional


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


#: Upper bound on the event free pool (events beyond this are left to GC).
_POOL_MAX = 8192


def _as_cycles(value: Any, what: str = "delay") -> int:
    """Coerce a delay/timestamp to int cycles, rejecting fractional values.

    A float such as ``0.5`` used to be silently truncated to ``0`` by
    ``int()``; that turns a half-cycle delay into "immediately", which is
    never what the caller meant.  Integral floats (``2.0``) are accepted.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SimulationError(f"{what} must be an integer number of cycles, got {value!r}")
    if isinstance(value, float):
        if not value.is_integer():
            raise SimulationError(
                f"{what} must be a whole number of cycles, got {value!r} "
                "(fractional delays are not representable; round explicitly)"
            )
        return int(value)
    return value


class _ScheduledEvent:
    """A single event record (pooled; see module docstring).

    Cancellation is implemented by flagging the record rather than removing
    it from its queue, which keeps :meth:`Simulator.cancel` O(1).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "recyclable")

    def __init__(self) -> None:
        self.time = 0
        self.seq = 0
        self.callback: Optional[Callable] = None
        self.args: tuple = ()
        self.cancelled = False
        self.recyclable = False


class Simulator:
    """Event-driven simulator with integer cycle timestamps.

    The public surface is deliberately small:

    * :meth:`schedule` / :meth:`cancel` for raw callbacks,
    * :meth:`schedule_call` — the allocation-light fast path used by the
      process layer and other kernel clients (no handle, not cancellable),
    * :meth:`run` to drain the event queue, :meth:`run_profile` to drain it
      while measuring kernel throughput,
    * :attr:`now` for the current simulated time.

    Processes are layered on top in :mod:`repro.sim.process`.
    """

    def __init__(self) -> None:
        self._queue: list = []  # heap of (time, seq, event)
        self._lane: deque = deque()  # same-cycle FIFO lane
        self._free: list = []  # event free pool
        self._seq = 0
        self._now = 0
        self._running = False
        self.event_count = 0
        # Kernel statistics (reported by run_profile): events executed from
        # the same-cycle lane vs. the heap, and event-pool reuses.
        self.lane_executed = 0
        self.heap_executed = 0
        self.pool_reuses = 0
        # Spin-wait elision statistics (accumulated by repro.sim.spinwait):
        # kernel events and simulated cycles that provably idempotent
        # busy-poll iterations would have executed but did not, because the
        # waiting process slept on an arrival signal instead.
        self.elided_events = 0
        self.elided_cycles = 0
        # Instrumentation seam (repro.analysis).  When _hooked is True the
        # drain switches to _drain_hooked, which pulls each cycle's events
        # into per-group batches and routes every execution through the
        # overridable event_group/pick_next/on_enqueue/on_execute hooks.
        # The plain path pays exactly one attribute test per drain call.
        self._hooked = False
        self._batch: Dict[Any, deque] = {}
        self._batch_count = 0
        self._batch_time = 0
        self._current_event: Optional[_ScheduledEvent] = None

    @property
    def now(self) -> int:
        """Current simulated time in processor cycles."""
        return self._now

    # ------------------------------------------------------------------
    # Event allocation
    # ------------------------------------------------------------------
    def _new_event(self) -> _ScheduledEvent:
        free = self._free
        if free:
            self.pool_reuses += 1
            event = free.pop()
            event.cancelled = False
            return event
        return _ScheduledEvent()

    def _enqueue(self, delay: int, event: _ScheduledEvent) -> None:
        seq = self._seq
        self._seq = seq + 1
        event.seq = seq
        if delay == 0:
            event.time = self._now
            self._lane.append(event)
        else:
            at = self._now + delay
            event.time = at
            heappush(self._queue, (at, seq, event))

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable, *args: Any) -> _ScheduledEvent:
        """Schedule ``callback(*args)`` to run ``delay`` cycles from now.

        Returns a handle accepted by :meth:`cancel`.  ``delay`` must be a
        non-negative whole number of cycles; fractional delays raise
        :class:`SimulationError` instead of being truncated.
        """
        if type(delay) is not int:
            delay = _as_cycles(delay)
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        event = self._new_event()
        event.callback = callback
        event.args = args
        event.recyclable = False  # the handle escapes; never recycle it
        self._enqueue(delay, event)
        return event

    def schedule_at(self, time: int, callback: Callable, *args: Any) -> _ScheduledEvent:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if type(time) is not int:
            time = _as_cycles(time, what="absolute time")
        if time < self._now:
            raise SimulationError(f"cannot schedule at {time}, current time is {self._now}")
        return self.schedule(time - self._now, callback, *args)

    def schedule_call(self, delay: int, callback: Callable, args: tuple = ()) -> None:
        """Fast-path scheduling for trusted kernel clients.

        ``delay`` must already be a non-negative ``int`` and ``args`` a
        pre-built tuple.  No handle is returned: the event record is pooled
        and recycled the moment it runs, so it must not be cancelled.  The
        process layer, the network fabric and the bus schedule through this
        entry point; user code should prefer :meth:`schedule`.
        """
        # Body is _new_event() + _enqueue() inlined: this runs once per
        # kernel event and the two extra frames are measurable.  Events in
        # the free pool always have recyclable=True and cancelled=False, so
        # neither flag needs rewriting on reuse.
        free = self._free
        if free:
            self.pool_reuses += 1
            event = free.pop()
        else:
            event = _ScheduledEvent()
            event.recyclable = True
        event.callback = callback
        event.args = args
        seq = self._seq
        self._seq = seq + 1
        event.seq = seq
        if delay == 0:
            event.time = self._now
            self._lane.append(event)
        else:
            at = self._now + delay
            event.time = at
            heappush(self._queue, (at, seq, event))

    def cancel(self, event: _ScheduledEvent) -> None:
        """Cancel a previously scheduled event (no-op if already run)."""
        event.cancelled = True

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _skim_cancelled(self) -> None:
        """Drop cancelled events from the heads of both queues."""
        queue = self._queue
        lane = self._lane
        free = self._free
        while queue and queue[0][2].cancelled:
            event = heappop(queue)[2]
            if event.recyclable and len(free) < _POOL_MAX:
                event.callback = None
                event.args = ()
                event.cancelled = False
                free.append(event)
        while lane and lane[0].cancelled:
            event = lane.popleft()
            if event.recyclable and len(free) < _POOL_MAX:
                event.callback = None
                event.args = ()
                event.cancelled = False
                free.append(event)

    def peek(self) -> Optional[int]:
        """Return the time of the next pending event, or ``None`` if idle."""
        if self._batch_count:
            # Events already pulled into the hooked drain's cycle batch are
            # no longer in the lane/heap but are still pending.
            return self._batch_time
        self._skim_cancelled()
        queue = self._queue
        lane = self._lane
        if lane:
            if queue:
                top = queue[0]
                head = lane[0]
                if top[0] < head.time or (top[0] == head.time and top[1] < head.seq):
                    return top[0]
            return lane[0].time
        if queue:
            return queue[0][0]
        return None

    def step(self) -> bool:
        """Run the next pending event.  Returns False if the queue is empty."""
        return self._drain(None, 1) == 1

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have executed.  Returns the final simulated time."""
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        try:
            self._drain(until, max_events)
        finally:
            self._running = False
        return self._now

    def _drain(self, until: Optional[int], max_events: Optional[int]) -> int:
        """Execute pending events in (time, seq) order; returns the count.

        ``event_count`` is accumulated locally and flushed in the ``finally``
        (so it stays correct when a callback raises), saving one attribute
        store per event on the hottest loop in the simulator.
        """
        if self._hooked:
            return self._drain_hooked(until, max_events)
        queue = self._queue
        lane = self._lane
        free = self._free
        time_limit = until if until is not None else float("inf")
        event_limit = max_events if max_events is not None else float("inf")
        executed = 0
        heap_executed = 0
        try:
            while True:
                # --- select the next live event across lane and heap ------
                if lane:
                    head = lane[0]
                    if head.cancelled:
                        lane.popleft()
                        if head.recyclable and len(free) < _POOL_MAX:
                            head.callback = None
                            head.args = ()
                            head.cancelled = False
                            free.append(head)
                        continue
                    if queue:
                        top = queue[0]
                        if top[0] < head.time or (top[0] == head.time and top[1] < head.seq):
                            event = top[2]
                            from_heap = True
                        else:
                            event = head
                            from_heap = False
                    else:
                        event = head
                        from_heap = False
                elif queue:
                    event = queue[0][2]
                    from_heap = True
                else:
                    break
                if from_heap and event.cancelled:
                    heappop(queue)
                    if event.recyclable and len(free) < _POOL_MAX:
                        event.callback = None
                        event.args = ()
                        event.cancelled = False
                        free.append(event)
                    continue
                # --- limits -----------------------------------------------
                if event.time > time_limit:
                    self._now = until
                    break
                if executed >= event_limit:
                    break
                # --- execute ----------------------------------------------
                if from_heap:
                    heappop(queue)
                    heap_executed += 1
                else:
                    lane.popleft()
                self._now = event.time
                executed += 1
                callback = event.callback
                args = event.args
                if event.recyclable:
                    # No per-event pool-cap check or reference nulling here:
                    # the pool can never exceed the peak number of
                    # simultaneously queued events (each recycle is preceded
                    # by a pop), and stale callback/args refs live only
                    # until the record is reused.  The cap is enforced once
                    # per drain, below.
                    free.append(event)
                callback(*args)
        finally:
            self.event_count += executed
            self.heap_executed += heap_executed
            self.lane_executed += executed - heap_executed
            if len(free) > _POOL_MAX:
                del free[_POOL_MAX:]
        return executed

    # ------------------------------------------------------------------
    # Instrumented execution (repro.analysis)
    # ------------------------------------------------------------------
    def enable_hooks(self) -> None:
        """Switch the drain to the hooked path (see the hook methods below).

        Subclasses that override :meth:`event_group` / :meth:`pick_next` /
        :meth:`on_enqueue` / :meth:`on_execute` call this once after
        construction; the plain hot path is untouched until then.
        """
        self._hooked = True

    def event_group(self, event: _ScheduledEvent) -> Any:
        """Hook: the batch group an event belongs to (default: one group).

        The hooked drain keeps one FIFO deque per group for the current
        cycle; :meth:`pick_next` chooses among the group heads.
        """
        return None

    def pick_next(self) -> _ScheduledEvent:
        """Hook: pop the next event of the current cycle's batch.

        The default reproduces the canonical global ``(time, seq)`` order:
        among all group heads, the smallest ``seq`` runs first.  Called only
        when ``_batch_count > 0``; implementations must pop and return one
        event from one of the ``_batch`` deques.
        """
        best_dq = None
        best_seq = None
        for dq in self._batch.values():
            if dq:
                seq = dq[0].seq
                if best_seq is None or seq < best_seq:
                    best_seq = seq
                    best_dq = dq
        return best_dq.popleft()

    def on_enqueue(self, event: _ScheduledEvent, parent: Optional[_ScheduledEvent]) -> None:
        """Hook: ``event`` joined the current cycle's batch.

        ``parent`` is the event whose callback scheduled it (``None`` for
        events that were already pending when the cycle began, or that were
        scheduled from outside the drain).
        """

    def on_execute(self, event: _ScheduledEvent) -> None:
        """Hook: ``event`` is about to run (``self.now`` already advanced)."""

    def _pull_batch(self) -> None:
        """Move every pending event at the batch cycle into the group deques.

        Called when a cycle opens and again after every executed callback,
        so same-cycle events scheduled *during* execution are attributed to
        the event that scheduled them (``self._current_event``) — the
        intra-cycle causality the conflict detector needs.
        """
        t = self._batch_time
        lane = self._lane
        queue = self._queue
        batch = self._batch
        parent = self._current_event
        pulled = 0
        from_heap = 0
        while lane and lane[0].time == t:
            event = lane.popleft()
            if event.cancelled:
                self._recycle_one(event)
                continue
            self.on_enqueue(event, parent)
            group = self.event_group(event)
            dq = batch.get(group)
            if dq is None:
                dq = batch[group] = deque()
            dq.append(event)
            pulled += 1
        while queue and queue[0][0] == t:
            event = heappop(queue)[2]
            if event.cancelled:
                self._recycle_one(event)
                continue
            self.on_enqueue(event, parent)
            group = self.event_group(event)
            dq = batch.get(group)
            if dq is None:
                dq = batch[group] = deque()
            dq.append(event)
            pulled += 1
            from_heap += 1
        self._batch_count += pulled
        # Lane/heap split is accounted at pull time on this path (an event
        # cancelled after being batched is a negligible, analysis-only skew).
        self.heap_executed += from_heap
        self.lane_executed += pulled - from_heap

    def _recycle_one(self, event: _ScheduledEvent) -> None:
        if event.recyclable and len(self._free) < _POOL_MAX:
            event.callback = None
            event.args = ()
            event.cancelled = False
            self._free.append(event)

    def _drain_hooked(self, until: Optional[int], max_events: Optional[int]) -> int:
        """Instrumented twin of :meth:`_drain`.

        Differences from the plain path: events are pulled cycle-at-a-time
        into per-group batches, execution order within a cycle is delegated
        to :meth:`pick_next`, and executed records are **never** recycled —
        hook implementations key side tables by event identity, and a pooled
        record re-issued mid-cycle would alias its predecessor.  Batch
        leftovers persist on the instance so ``step()``/``max_events``
        interruptions resume exactly where they stopped.
        """
        lane = self._lane
        queue = self._queue
        time_limit = until if until is not None else float("inf")
        event_limit = max_events if max_events is not None else float("inf")
        executed = 0
        try:
            while True:
                if not self._batch_count:
                    self._skim_cancelled()
                    if lane:
                        t = lane[0].time
                        if queue and queue[0][0] < t:
                            t = queue[0][0]
                    elif queue:
                        t = queue[0][0]
                    else:
                        break
                    if t > time_limit:
                        self._now = until
                        break
                    self._batch_time = t
                    self._current_event = None
                    self._pull_batch()
                    continue
                if self._batch_time > time_limit:
                    # Leftover batch from an interrupted drain lies beyond
                    # this call's horizon; leave it pending.
                    self._now = until
                    break
                if executed >= event_limit:
                    break
                event = self.pick_next()
                self._batch_count -= 1
                if event.cancelled:
                    continue
                self._now = event.time
                executed += 1
                self._current_event = event
                self.on_execute(event)
                event.callback(*event.args)
                # Pull before clearing: same-cycle events scheduled by this
                # callback are children of the event that just ran.
                self._pull_batch()
                self._current_event = None
        finally:
            self._current_event = None
            self.event_count += executed
        return executed

    # ------------------------------------------------------------------
    # Profiling
    # ------------------------------------------------------------------
    def run_profile(
        self, until: Optional[int] = None, max_events: Optional[int] = None
    ) -> Dict[str, float]:
        """Run like :meth:`run` while measuring kernel throughput.

        Returns a dict with the simulated ``end_time``, the number of
        ``events`` executed, wall-clock ``wall_s``, the resulting
        ``events_per_sec``, scheduling-structure statistics for the
        interval (``lane_events``, ``heap_events``, ``pool_reuses``) and the
        spin-wait elision totals (``elided_events``, ``elided_cycles``).
        """
        events_before = self.event_count
        lane_before = self.lane_executed
        heap_before = self.heap_executed
        pool_before = self.pool_reuses
        elided_ev_before = self.elided_events
        elided_cy_before = self.elided_cycles
        start = _time.perf_counter()  # repro: allow[WALLCLOCK] run_profile measures wall throughput
        end_time = self.run(until=until, max_events=max_events)
        wall_s = _time.perf_counter() - start  # repro: allow[WALLCLOCK] run_profile measures wall throughput
        events = self.event_count - events_before
        return {
            "end_time": float(end_time),
            "events": float(events),
            "wall_s": wall_s,
            "events_per_sec": events / wall_s if wall_s > 0 else 0.0,
            "lane_events": float(self.lane_executed - lane_before),
            "heap_events": float(self.heap_executed - heap_before),
            "pool_reuses": float(self.pool_reuses - pool_before),
            "elided_events": float(self.elided_events - elided_ev_before),
            "elided_cycles": float(self.elided_cycles - elided_cy_before),
        }
