"""Lightweight statistics collection for simulator components."""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterable, List


class Counter:
    """A named group of integer counters."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = defaultdict(int)

    def add(self, name: str, amount: int = 1) -> None:
        self._counts[name] += amount

    @property
    def raw(self) -> Dict[str, int]:
        """The underlying defaultdict, for hot paths that cannot afford a
        method call per increment.  Mutate with ``raw[key] += n`` only."""
        return self._counts

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def reset(self) -> None:
        self._counts.clear()

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def __repr__(self) -> str:
        return f"Counter({dict(self._counts)!r})"


class Samples:
    """Accumulates numeric samples and reports summary statistics."""

    def __init__(self) -> None:
        self._values: List[float] = []

    def record(self, value: float) -> None:
        self._values.append(float(value))

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return sum(self._values)

    @property
    def mean(self) -> float:
        if not self._values:
            return 0.0
        return self.total / len(self._values)

    @property
    def minimum(self) -> float:
        return min(self._values) if self._values else 0.0

    @property
    def maximum(self) -> float:
        return max(self._values) if self._values else 0.0

    @property
    def stddev(self) -> float:
        if len(self._values) < 2:
            return 0.0
        mean = self.mean
        variance = sum((v - mean) ** 2 for v in self._values) / (len(self._values) - 1)
        return math.sqrt(variance)

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile; ``fraction`` in [0, 1]."""
        if not self._values:
            return 0.0
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        ordered = sorted(self._values)
        rank = max(0, min(len(ordered) - 1, int(math.ceil(fraction * len(ordered))) - 1))
        return ordered[rank]

    def values(self) -> List[float]:
        return list(self._values)

    def reset(self) -> None:
        self._values.clear()


class StatsRegistry:
    """A per-simulation registry of named counters and sample sets."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = defaultdict(Counter)
        self.samples: Dict[str, Samples] = defaultdict(Samples)

    def counter(self, group: str) -> Counter:
        return self.counters[group]

    def sample_set(self, group: str) -> Samples:
        return self.samples[group]

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Flatten all statistics into a nested dict (for reports/tests)."""
        out: Dict[str, Dict[str, float]] = {}
        for name, counter in self.counters.items():
            out[name] = dict(counter.as_dict())
        for name, samples in self.samples.items():
            out.setdefault(name, {})
            out[name].update(
                {
                    "count": samples.count,
                    "mean": samples.mean,
                    "min": samples.minimum,
                    "max": samples.maximum,
                }
            )
        return out

    def reset(self) -> None:
        for counter in self.counters.values():
            counter.reset()
        for samples in self.samples.values():
            samples.reset()


def safe_ratio(numerator: float, denominator: float, default: float = 0.0) -> float:
    """Return numerator/denominator guarding against a zero denominator."""
    if denominator == 0:
        return default
    return numerator / denominator
