"""Discrete-event simulation kernel used by the CNI reproduction."""

from repro.sim.engine import SimulationError, Simulator
from repro.sim.process import (
    Acquire,
    Delay,
    Join,
    Process,
    Resource,
    Signal,
    Wait,
    start_process,
)
from repro.sim.spinwait import (
    SPIN_EMPTY,
    SPIN_PROGRESS,
    SPIN_TRANSIENT,
    SpinGuard,
    spin_wait,
)
from repro.sim.stats import Counter, Samples, StatsRegistry, safe_ratio
from repro.sim.watchdog import (
    SimulationHangError,
    Watchdog,
    WorkloadHangError,
    wait_for_graph,
)

__all__ = [
    "Simulator",
    "SimulationError",
    "SimulationHangError",
    "Watchdog",
    "WorkloadHangError",
    "wait_for_graph",
    "SpinGuard",
    "spin_wait",
    "SPIN_EMPTY",
    "SPIN_PROGRESS",
    "SPIN_TRANSIENT",
    "Process",
    "start_process",
    "Delay",
    "Wait",
    "Acquire",
    "Join",
    "Signal",
    "Resource",
    "Counter",
    "Samples",
    "StatsRegistry",
    "safe_ratio",
]
