"""Discrete-event simulation kernel used by the CNI reproduction."""

from repro.sim.engine import SimulationError, Simulator
from repro.sim.process import (
    Acquire,
    Delay,
    Join,
    Process,
    Resource,
    Signal,
    Wait,
    start_process,
)
from repro.sim.stats import Counter, Samples, StatsRegistry, safe_ratio

__all__ = [
    "Simulator",
    "SimulationError",
    "Process",
    "start_process",
    "Delay",
    "Wait",
    "Acquire",
    "Join",
    "Signal",
    "Resource",
    "Counter",
    "Samples",
    "StatsRegistry",
    "safe_ratio",
]
