"""Cycle-exact elision of busy-poll spin loops.

Every blocking wait in the messaging layer and the workload skeletons has
the same shape: poll, and if nothing was there, back off a fixed number of
cycles and poll again.  On the coherent-queue network interfaces the empty
poll is a *cached* read — the paper's virtual-polling argument (Sections
3–5): while the queue is empty the poll hits in the processor cache and
generates **no bus traffic**.  Such an iteration is provably idempotent:
it advances local counters, costs a deterministic number of cycles, and
interacts with nothing else in the machine.  Simulating it event by event
is pure kernel overhead.

:func:`spin_wait` runs the poll loop but *elides* the idempotent steady
state.  It executes each iteration for real while the machine is moving;
once an iteration completes as a **pure cached empty poll** (no bus
transaction, and the port's spin state unchanged) it measures the
iteration period ``P`` and the per-iteration counter deltas once, then
sleeps on the port's arrival signal instead of re-polling.  When the
signal fires at ``t_f`` — a snooped bus transaction touched the
processor's cache, or the device changed the queue state — the waiter
resumes at the exact spin-iteration boundary the spinning process would
have woken at:

    ``resume = t0 + n * P``  with the smallest ``n`` such that
    ``resume > t_f``

(the iteration whose poll coincides with ``t_f`` still observes the *old*
cache state, because its wake-up event was scheduled a whole backoff
earlier than the snoop, so it is elided too).  The ``n`` skipped
iterations are reconstructed arithmetically: their counter deltas are
applied ``n``-fold and the kernel's ``elided_events`` / ``elided_cycles``
tallies advance by what the spinning process would have executed.  The
final resume is scheduled in two hops so that the last scheduling action
happens in the same cycle (``resume - backoff``) the spinning loop would
have scheduled it from, keeping same-cycle event ordering — and therefore
bus-arbitration FIFO order — identical to the spinning simulation.

Uncached polls (NI2w-style devices, and the CDR devices' uncached status
registers) occupy the bus on every poll; they are never pure, and the loop
simply keeps spinning for them — behaviour, cycle counts and bus
occupancies are bit-identical either way.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

#: Body return values understood by :func:`spin_wait`.  ``SPIN_PROGRESS``
#: and ``SPIN_EMPTY`` intentionally equal ``True`` and ``False`` so plain
#: poll bodies can return their boolean directly.
SPIN_PROGRESS = 1  #: the body consumed something; retry without backoff
SPIN_EMPTY = 0     #: nothing there; back off (candidate for elision)
SPIN_TRANSIENT = 2  #: nothing there, but the body is not yet in its steady
#: regime (e.g. the first send retries before the drain kicks in); back off
#: without arming the elider.


class SpinGuard:
    """What a wait site needs to make its spin loop elidable.

    Parameters
    ----------
    sim:
        The simulator (elision totals are accumulated on it).
    signal:
        Fired whenever the sleeping processor's observable state may have
        changed: the node's arrival signal, wired to the processor cache's
        snoop listener and the device-side queue transitions.
    steady:
        Zero-argument predicate: True while re-running the measured
        iteration would provably produce the same pure empty poll (polled
        cache lines still valid, queue state unchanged).
    counters:
        Raw counter dicts mutated by a pure iteration (processor cache,
        device, messaging layer, processor); their per-iteration deltas are
        measured once and replayed arithmetically for elided iterations.
    txn_counts:
        The node interconnect's raw counter dict; a changed ``txn_total``
        across an iteration means the poll touched a bus and is not pure.
    device_stats:
        The NI's raw counter dict, where ``elided_spins`` /
        ``elided_events`` / ``elided_cycles`` are recorded.
    probes:
        Zero-argument callables returning monotonic counts of *asynchronous*
        node activity that leaves no bus transaction behind (fabric
        deliveries, window acks, device-side signal fires).  If any probe
        moves across a measured iteration, the counter deltas are polluted
        by someone else's increments and the iteration is not armed.
    resume_margin:
        How far (in cycles) *into* an iteration the spinning loop observes
        the watched state.  ``0`` — the poll-loop case — means a spinning
        iteration whose boundary coincides with the fire still sees the old
        state (its wake-up was scheduled a whole backoff before the snoop)
        and is elided.  ``1`` — the blocked-send case, whose head-pointer
        check executes one cycle into the iteration — means that iteration
        would already observe the change, so the wait resumes *at* the fire
        boundary instead of one period past it.  A wait site whose
        observation point sits deeper than one cycle into the iteration
        cannot be elided exactly and must not get a guard at all.
    """

    __slots__ = (
        "sim", "signal", "steady", "counters", "txn_counts", "device_stats",
        "probes", "resume_margin",
    )

    def __init__(
        self,
        sim,
        signal,
        steady: Callable[[], bool],
        counters: Sequence[Dict[str, int]],
        txn_counts: Dict[str, int],
        device_stats: Dict[str, int],
        probes: Sequence[Callable[[], int]] = (),
        resume_margin: int = 0,
    ):
        self.sim = sim
        self.signal = signal
        self.steady = steady
        self.counters = tuple(counters)
        self.txn_counts = txn_counts
        self.device_stats = device_stats
        self.probes = tuple(probes)
        self.resume_margin = resume_margin

    def probe_state(self) -> tuple:
        return tuple(probe() for probe in self.probes)

    def note_elided(self, iterations: int, events_per_iter: int, period: int) -> None:
        """Record ``iterations`` spin iterations skipped by sleeping."""
        sim = self.sim
        events = iterations * events_per_iter
        cycles = iterations * period
        # The legacy A/B kernel does not initialise these counters; create
        # them on first use so the hot-swap benchmark keeps working.
        sim.elided_events = getattr(sim, "elided_events", 0) + events
        sim.elided_cycles = getattr(sim, "elided_cycles", 0) + cycles
        stats = self.device_stats
        stats["elided_spins"] += iterations
        stats["elided_events"] += events
        stats["elided_cycles"] += cycles


def spin_wait(sim, predicate, body, backoff: int, guard: SpinGuard = None):
    """Generator: ``while not predicate(): if not body(): wait(backoff)``.

    ``body`` is a factory returning a fresh generator per iteration whose
    return value is one of the ``SPIN_*`` constants (a plain bool works for
    poll bodies).  Without a ``guard`` this is exactly the classic spinning
    loop; with one, steady pure-empty iterations are elided as described in
    the module docstring.  Either way the simulated timeline is
    bit-identical.
    """
    if guard is None:
        while not predicate():
            result = yield from body()
            if result != SPIN_PROGRESS:
                yield backoff
        return

    signal = guard.signal
    steady = guard.steady
    txn_counts = guard.txn_counts
    counters = guard.counters
    while not predicate():
        start = sim.now
        txn_before = txn_counts.get("txn_total", 0)
        probes_before = guard.probe_state()
        before = [dict(counter) for counter in counters]
        # Run one iteration for real, counting the kernel events it takes
        # (the generator is stepped manually so each resume is observable).
        gen = body()
        events = 0
        value = None
        while True:
            try:
                command = gen.send(value)
            except StopIteration as stop:
                result = stop.value
                break
            events += 1
            value = yield command
        if result == SPIN_PROGRESS:
            continue
        if (
            result == SPIN_TRANSIENT
            or txn_counts.get("txn_total", 0) != txn_before
            or guard.probe_state() != probes_before
            or not steady()
        ):
            # The poll touched a bus (uncached or missed — not idempotent),
            # the body is still settling, asynchronous activity (a fabric
            # delivery, an ack, a device-side transition) overlapped the
            # measurement, or the machine state moved under the poll: keep
            # spinning for real.
            yield backoff
            continue

        # --- Armed: the iteration just completed was a pure cached empty
        # poll.  Repeating it with unchanged state reproduces it exactly, so
        # measure it once and sleep instead of spinning.
        deltas = []
        for snapshot, counter in zip(before, counters):
            deltas.append(
                {
                    key: value_ - snapshot.get(key, 0)
                    for key, value_ in counter.items()
                    if value_ != snapshot.get(key, 0)
                }
            )
        arm_time = sim.now
        period = (arm_time - start) + backoff
        events_per_iter = events + 1  # the body's resumes plus the backoff wake
        first_boundary = arm_time + backoff

        # Sleep until the machine state actually moves.  The steady() check
        # and the signal wait run inside one kernel event, so no state
        # change can slip between them; spurious fires (snooped traffic on
        # unrelated lines) just re-enter the sleep.
        while True:
            yield signal
            if not steady():
                break
        fire_time = sim.now

        # The spinning process would observe the change at the first
        # iteration boundary strictly after (fire - resume_margin): with
        # margin 0 a poll *at* the fire cycle was scheduled a whole backoff
        # earlier than the snoop that fired, so it still sees the old cache
        # state and spins on; with margin 1 the observation sits one cycle
        # into the iteration, so the boundary coinciding with the fire must
        # be executed for real.
        effective_fire = fire_time - guard.resume_margin
        if effective_fire < first_boundary:
            elided = 0
            resume_at = first_boundary
        else:
            elided = (effective_fire - first_boundary) // period + 1
            resume_at = first_boundary + elided * period
        if elided:
            for counter, delta in zip(counters, deltas):
                for key, increment in delta.items():
                    counter[key] += increment * elided
            guard.note_elided(elided, events_per_iter, period)

        # Resume in two hops so the final leg is scheduled from the same
        # cycle (resume_at - backoff) the spinning loop would have used,
        # preserving same-cycle event ordering after the wake-up.
        schedule_cycle = resume_at - backoff
        if fire_time <= schedule_cycle:
            if fire_time < schedule_cycle:
                yield schedule_cycle - fire_time
            yield backoff
        else:
            yield resume_at - fire_time
