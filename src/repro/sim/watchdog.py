"""Engine-level hang watchdog: structured detection of stuck workloads.

Instead of one blind ``sim.run(until=max_cycles)`` that spins to the cycle
limit and reports nothing, :class:`Watchdog` drives the kernel in bounded
chunks and diagnoses the two ways a simulation stops making progress:

* **quiescent-but-not-done** — the event queues drained but workload
  processes are still unfinished (a deadlock: everyone parked on a signal
  / resource / join that will never fire).  The watchdog dumps a wait-for
  graph of the parked processes built by introspecting the machine's
  partition map, and raises :class:`SimulationHangError`.
* **busy stall** — events keep executing but a caller-supplied progress
  fingerprint (delivered messages, finished processes, …) has not changed
  for ``stall_cycles`` simulated cycles (an unelided spin loop, a
  retransmission storm that can never succeed).  Also
  :class:`SimulationHangError`, with the stuck fingerprint in the report.

Chunked driving is bit-identical to one long ``run()``: ``run(until=t)``
executes exactly the events with time <= t and never reorders, so the
event stream, statistics and end time match the unchunked run (the
determinism pin in ``tests/test_faults.py`` holds this).

:class:`WorkloadHangError` lives here (moved from ``repro.node.machine``,
which re-exports it); :class:`SimulationHangError` subclasses it so
existing ``except WorkloadHangError`` call sites catch both.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sim.engine import Simulator
from repro.sim.process import Process, Resource, Signal


class WorkloadHangError(RuntimeError):
    """Raised when a workload fails to complete (deadlock or cycle limit)."""


class SimulationHangError(WorkloadHangError):
    """A structured hang diagnosis with a machine-readable ``report``.

    ``report`` keys: ``kind`` (``"quiescent"`` or ``"stall"``), ``cycle``,
    ``unfinished`` (process names), ``wait_for`` (wait-for graph lines,
    quiescent hangs only) and ``fingerprint`` (stalls only).
    """

    def __init__(self, message: str, report: Dict[str, object]):
        super().__init__(message)
        self.report = report


#: How often (simulated cycles) the watchdog regains control to check
#: progress.  Chunk boundaries add no events, so this is cheap.
DEFAULT_CHECK_INTERVAL = 50_000
#: How long (simulated cycles) the progress fingerprint may stay frozen
#: while events execute before the run is declared stalled.
DEFAULT_STALL_CYCLES = 2_000_000


def _wait_holders(obj: object) -> Iterable[object]:
    """``obj`` itself plus its direct attributes that can park processes."""
    if isinstance(obj, (Signal, Resource, Process)):
        yield obj
    d = getattr(obj, "__dict__", None)
    if isinstance(d, dict):
        for value in d.values():
            if isinstance(value, (Signal, Resource, Process)):
                yield value


def wait_for_graph(
    processes: Sequence[Process],
    partitions: Optional[Dict[str, tuple]] = None,
) -> List[str]:
    """Describe what each unfinished process is parked on.

    ``partitions`` is an ownership map (label -> owned objects, e.g.
    ``Machine.partition_map()``); the waitables are discovered from the
    waited-on side (signal waiter lists, resource queues, join lists), so
    building the graph costs nothing on the simulation hot path.
    """
    parked: Dict[int, List[str]] = {}
    by_id: Dict[int, Process] = {}
    seen: set = set()
    for label, objs in (partitions or {}).items():
        for obj in objs:
            for holder in _wait_holders(obj):
                if id(holder) in seen:
                    continue
                seen.add(id(holder))
                if isinstance(holder, Signal):
                    waiters = list(holder._waiters)
                    what = f"signal {holder.name!r}"
                elif isinstance(holder, Resource):
                    waiters = list(holder._wait_queue)
                    what = f"resource {holder.name!r}"
                else:
                    waiters = list(holder._completion_waiters)
                    what = f"join {holder.name!r}"
                for proc in waiters:
                    parked.setdefault(id(proc), []).append(f"{what} [{label}]")
                    by_id[id(proc)] = proc
    lines = []
    for proc in processes:
        if proc.finished:
            continue
        on = parked.pop(id(proc), None)
        if on:
            lines.append(f"{proc.name} -> {', '.join(on)}")
        else:
            lines.append(f"{proc.name} -> parked on an untracked waitable")
    # Non-workload processes (device pollers, service loops) that are also
    # parked: context for reading the graph, listed after the stuck ones.
    for pid, on in parked.items():
        proc = by_id[pid]
        if not proc.finished:
            lines.append(f"{proc.name} -> {', '.join(on)} (background)")
    return lines


class Watchdog:
    """Drive ``sim`` in chunks until done, hung, or the cycle limit.

    Parameters
    ----------
    sim, processes:
        The kernel and the workload processes whose completion defines
        "done".  Trailing non-workload events still run to quiescence,
        exactly like a plain ``sim.run`` (statistics stay bit-identical).
    max_cycles:
        Hard simulated-cycle limit (the legacy backstop); ``None`` runs
        until quiescence or a hang is diagnosed.
    progress:
        Zero-arg callable returning a comparable fingerprint of workload
        progress.  ``None`` disables busy-stall detection.
    partitions:
        Zero-arg callable returning an ownership map for the wait-for
        graph (evaluated only when a quiescent hang is diagnosed).
    """

    def __init__(
        self,
        sim: Simulator,
        processes: Sequence[Process],
        *,
        max_cycles: Optional[int] = None,
        check_interval: int = DEFAULT_CHECK_INTERVAL,
        stall_cycles: int = DEFAULT_STALL_CYCLES,
        progress: Optional[Callable[[], Tuple]] = None,
        partitions: Optional[Callable[[], Dict[str, tuple]]] = None,
    ):
        if check_interval < 1:
            raise ValueError("check_interval must be >= 1")
        self.sim = sim
        self.processes = list(processes)
        self.max_cycles = max_cycles
        self.check_interval = check_interval
        self.stall_cycles = stall_cycles
        self.progress = progress
        self.partitions = partitions

    # ------------------------------------------------------------------
    def run(self, profile: bool = False):
        """Run to completion; returns the end time (or the merged profile
        dict when ``profile=True``).  Raises :class:`SimulationHangError`
        on a diagnosed hang; hitting ``max_cycles`` with events pending
        returns normally (the caller owns the classic cycle-limit check).
        """
        sim = self.sim
        merged: Optional[Dict[str, float]] = None
        last_fp: Optional[Tuple] = None
        stalled_for = 0
        while True:
            chunk_start = sim.now
            target = chunk_start + self.check_interval
            if self.max_cycles is not None:
                target = min(target, self.max_cycles)
            events_before = sim.event_count
            if profile:
                merged = _merge_profiles(merged, sim.run_profile(until=target))
            else:
                sim.run(until=target)
            executed = sim.event_count - events_before
            if sim.peek() is None:
                break  # drained — same stop condition as one long run()
            if self.max_cycles is not None and sim.now >= self.max_cycles:
                break  # cycle limit with events pending — legacy backstop
            if executed and self.progress is not None:
                fp = self.progress()
                fp = (fp, sum(1 for p in self.processes if p.finished))
                if fp == last_fp:
                    stalled_for += sim.now - chunk_start
                    if stalled_for >= self.stall_cycles:
                        self._raise_stalled(fp)
                else:
                    stalled_for = 0
                    last_fp = fp
        unfinished = [p for p in self.processes if not p.finished]
        if unfinished and sim.peek() is None:
            self._raise_quiescent(unfinished)
        return merged if profile else sim.now

    # ------------------------------------------------------------------
    def _raise_quiescent(self, unfinished: Sequence[Process]) -> None:
        partitions = self.partitions() if self.partitions is not None else None
        graph = wait_for_graph(self.processes, partitions)
        names = [p.name for p in unfinished]
        report = {
            "kind": "quiescent",
            "cycle": self.sim.now,
            "unfinished": names,
            "wait_for": graph,
        }
        detail = "; ".join(graph[:6])
        raise SimulationHangError(
            f"simulation quiescent at cycle {self.sim.now} with "
            f"{len(names)} unfinished processes — wait-for graph: {detail}",
            report,
        )

    def _raise_stalled(self, fingerprint: Tuple) -> None:
        names = [p.name for p in self.processes if not p.finished]
        report = {
            "kind": "stall",
            "cycle": self.sim.now,
            "unfinished": names,
            "fingerprint": fingerprint,
            "stall_cycles": self.stall_cycles,
        }
        raise SimulationHangError(
            f"no workload progress for {self.stall_cycles} cycles at cycle "
            f"{self.sim.now} while events keep executing ({len(names)} "
            "unfinished processes; likely an unelided spin or retry storm)",
            report,
        )


def _merge_profiles(
    merged: Optional[Dict[str, float]], chunk: Dict[str, float]
) -> Dict[str, float]:
    """Fold one chunk's ``run_profile`` dict into the running totals."""
    if merged is None:
        return dict(chunk)
    for key, value in chunk.items():
        if key == "end_time":
            merged[key] = value
        elif key == "events_per_sec":
            continue  # recomputed below from the summed totals
        else:
            merged[key] = merged.get(key, 0.0) + value
    wall = merged.get("wall_s", 0.0)
    merged["events_per_sec"] = merged.get("events", 0.0) / wall if wall > 0 else 0.0
    return merged
