"""Generator-based simulation processes.

A :class:`Process` wraps a Python generator.  The generator ``yield``s
commands that describe what to wait for; the kernel resumes the generator
when the condition is satisfied:

* ``yield Delay(n)`` (or ``yield n``) — wait ``n`` cycles,
* ``yield Acquire(resource)`` — wait for FIFO ownership of a resource,
* ``yield Wait(signal)`` — wait for a one-shot/broadcast signal; the value
  sent back into the generator is the signal payload,
* ``yield Join(process)`` — wait for another process to finish; the value
  sent back is that process's return value.

Sub-generators compose with plain ``yield from``.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.engine import SimulationError, Simulator


class Delay:
    """Wait a fixed number of cycles."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: int):
        if cycles < 0:
            raise SimulationError(f"negative delay: {cycles}")
        self.cycles = int(cycles)

    def __repr__(self) -> str:
        return f"Delay({self.cycles})"


class Wait:
    """Wait for a :class:`Signal` to fire."""

    __slots__ = ("signal",)

    def __init__(self, signal: "Signal"):
        self.signal = signal


class Acquire:
    """Wait for ownership of a :class:`Resource`."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        self.resource = resource


class Join:
    """Wait for another process to complete."""

    __slots__ = ("process",)

    def __init__(self, process: "Process"):
        self.process = process


class Signal:
    """A broadcast signal that wakes every waiting process when fired.

    A signal may fire any number of times; each firing wakes the processes
    that were waiting at that moment and passes them the payload.
    """

    def __init__(self, sim: Simulator, name: str = "signal"):
        self._sim = sim
        self.name = name
        self._waiters: list[Process] = []
        self.fire_count = 0
        self.last_payload: Any = None

    def fire(self, payload: Any = None) -> None:
        """Wake all current waiters, delivering ``payload`` to each."""
        self.fire_count += 1
        self.last_payload = payload
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self._sim.schedule(0, process._resume, payload)

    def _add_waiter(self, process: "Process") -> None:
        self._waiters.append(process)

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)


class Resource:
    """A FIFO resource with integer capacity (default 1, i.e. a mutex).

    Used to model buses: a bus transaction acquires the bus, holds it for the
    occupancy period, then releases it.
    """

    def __init__(self, sim: Simulator, name: str = "resource", capacity: int = 1):
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self._sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._wait_queue: list[Process] = []
        # Statistics
        self.total_acquisitions = 0
        self.busy_cycles = 0
        self._last_acquire_time: Optional[int] = None

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._wait_queue)

    def _request(self, process: "Process") -> None:
        if self._in_use < self.capacity:
            self._grant(process)
        else:
            self._wait_queue.append(process)

    def _grant(self, process: "Process") -> None:
        self._in_use += 1
        self.total_acquisitions += 1
        if self._in_use == 1:
            self._last_acquire_time = self._sim.now
        self._sim.schedule(0, process._resume, self)

    def release(self) -> None:
        """Release one unit of the resource (called directly, not yielded)."""
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        self._in_use -= 1
        if self._in_use == 0 and self._last_acquire_time is not None:
            self.busy_cycles += self._sim.now - self._last_acquire_time
            self._last_acquire_time = None
        if self._wait_queue and self._in_use < self.capacity:
            self._grant(self._wait_queue.pop(0))

    def try_acquire_now(self) -> bool:
        """Immediately acquire the resource if free (used for NACK modelling).

        Returns True and takes ownership if the resource is idle and nothing
        is queued; otherwise returns False without waiting.
        """
        if self._in_use < self.capacity and not self._wait_queue:
            self._in_use += 1
            self.total_acquisitions += 1
            if self._in_use == 1:
                self._last_acquire_time = self._sim.now
            return True
        return False


class Process:
    """A running simulation process wrapping a generator."""

    _ids = 0

    def __init__(self, sim: Simulator, generator: Generator, name: str = ""):
        Process._ids += 1
        self.pid = Process._ids
        self.name = name or f"process-{self.pid}"
        self._sim = sim
        self._gen = generator
        self.finished = False
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self._completion_waiters: list[Process] = []
        self.started_at = sim.now
        self.finished_at: Optional[int] = None
        # Kick off on the next event boundary so construction never runs user
        # code synchronously.
        sim.schedule(0, self._resume, None)

    def __repr__(self) -> str:
        state = "finished" if self.finished else "running"
        return f"<Process {self.name} ({state})>"

    def _resume(self, value: Any) -> None:
        if self.finished:
            return
        try:
            command = self._gen.send(value)
        except StopIteration as stop:
            self._finish(getattr(stop, "value", None))
            return
        except BaseException as exc:  # surface errors loudly
            self.exception = exc
            self._finish(None)
            raise
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        if isinstance(command, Delay):
            self._sim.schedule(command.cycles, self._resume, None)
        elif isinstance(command, (int, float)):
            self._sim.schedule(int(command), self._resume, None)
        elif isinstance(command, Wait):
            command.signal._add_waiter(self)
        elif isinstance(command, Acquire):
            command.resource._request(self)
        elif isinstance(command, Join):
            target = command.process
            if target.finished:
                self._sim.schedule(0, self._resume, target.result)
            else:
                target._completion_waiters.append(self)
        elif isinstance(command, Signal):
            command._add_waiter(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded an unsupported command: {command!r}"
            )

    def _finish(self, result: Any) -> None:
        self.finished = True
        self.result = result
        self.finished_at = self._sim.now
        waiters, self._completion_waiters = self._completion_waiters, []
        for waiter in waiters:
            self._sim.schedule(0, waiter._resume, result)


def start_process(sim: Simulator, generator: Generator, name: str = "") -> Process:
    """Convenience wrapper to launch a generator as a process."""
    return Process(sim, generator, name=name)
