"""Generator-based simulation processes.

A :class:`Process` wraps a Python generator.  The generator ``yield``s
commands that describe what to wait for; the kernel resumes the generator
when the condition is satisfied:

* ``yield n`` (a plain non-negative ``int``) or ``yield Delay(n)`` — wait
  ``n`` cycles.  The bare-int form is the fast path: it allocates nothing
  and resumes through the kernel's same-cycle lane or heap directly,
* ``yield resource`` (a :class:`Resource`) or ``yield Acquire(resource)`` —
  wait for FIFO ownership of a resource; the value sent back is the
  resource,
* ``yield signal`` (a :class:`Signal`) or ``yield Wait(signal)`` — wait for
  a one-shot/broadcast signal; the value sent back is the signal payload,
* ``yield Join(process)`` — wait for another process to finish; the value
  sent back is that process's return value.

Sub-generators compose with plain ``yield from``.  Every resumption is one
scheduled kernel event, so ``Simulator.event_count`` is a stable measure of
process activity regardless of which yield form clients use.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, Optional

from heapq import heappush as _heappush

from repro.sim.engine import SimulationError, Simulator, _as_cycles, _ScheduledEvent

#: Shared argument tuple for the overwhelmingly common "resume with None"
#: case (plain delays), so the hot path allocates no per-event tuple.
_NONE_ARGS = (None,)


class Delay:
    """Wait a fixed number of cycles."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: int):
        if type(cycles) is not int:
            cycles = _as_cycles(cycles)
        if cycles < 0:
            raise SimulationError(f"negative delay: {cycles}")
        self.cycles = cycles

    def __repr__(self) -> str:
        return f"Delay({self.cycles})"


class Wait:
    """Wait for a :class:`Signal` to fire."""

    __slots__ = ("signal",)

    def __init__(self, signal: "Signal"):
        self.signal = signal


class Acquire:
    """Wait for ownership of a :class:`Resource`."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        self.resource = resource


class Join:
    """Wait for another process to complete."""

    __slots__ = ("process",)

    def __init__(self, process: "Process"):
        self.process = process


class Signal:
    """A broadcast signal that wakes every waiting process when fired.

    A signal may fire any number of times; each firing wakes the processes
    that were waiting at that moment and passes them the payload.
    """

    def __init__(self, sim: Simulator, name: str = "signal"):
        self._sim = sim
        self.name = name
        self._waiters: list = []
        self.fire_count = 0
        self.last_payload: Any = None

    def fire(self, payload: Any = None) -> None:
        """Wake all current waiters, delivering ``payload`` to each."""
        self.fire_count += 1
        self.last_payload = payload
        waiters = self._waiters
        if not waiters:
            return
        self._waiters = []
        schedule_call = self._sim.schedule_call
        args = _NONE_ARGS if payload is None else (payload,)
        for process in waiters:
            schedule_call(0, process._resume, args)

    def _add_waiter(self, process: "Process") -> None:
        self._waiters.append(process)

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)


class Resource:
    """A FIFO resource with integer capacity (default 1, i.e. a mutex).

    Used to model buses: a bus transaction acquires the bus, holds it for the
    occupancy period, then releases it.  The wait queue is a deque, so both
    enqueueing a waiter and granting the next one are O(1).
    """

    def __init__(self, sim: Simulator, name: str = "resource", capacity: int = 1):
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self._sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._wait_queue: deque = deque()
        self._grant_args = (self,)  # reused for every grant event
        # Statistics
        self.total_acquisitions = 0
        self.busy_cycles = 0
        self._last_acquire_time: Optional[int] = None

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._wait_queue)

    def _request(self, process: "Process") -> None:
        if self._in_use < self.capacity:
            self._grant(process)
        else:
            self._wait_queue.append(process)

    def _grant(self, process: "Process") -> None:
        self._in_use += 1
        self.total_acquisitions += 1
        if self._in_use == 1:
            self._last_acquire_time = self._sim.now
        self._sim.schedule_call(0, process._resume, self._grant_args)

    def release(self) -> None:
        """Release one unit of the resource (called directly, not yielded)."""
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        self._in_use -= 1
        if self._in_use == 0 and self._last_acquire_time is not None:
            self.busy_cycles += self._sim.now - self._last_acquire_time
            self._last_acquire_time = None
        if self._wait_queue and self._in_use < self.capacity:
            self._grant(self._wait_queue.popleft())

    def try_acquire_now(self) -> bool:
        """Immediately acquire the resource if free (used for NACK modelling).

        Returns True and takes ownership if the resource is idle and nothing
        is queued; otherwise returns False without waiting.
        """
        if self._in_use < self.capacity and not self._wait_queue:
            self._in_use += 1
            self.total_acquisitions += 1
            if self._in_use == 1:
                self._last_acquire_time = self._sim.now
            return True
        return False


class Process:
    """A running simulation process wrapping a generator."""

    _ids = 0

    def __init__(self, sim: Simulator, generator: Generator, name: str = ""):
        Process._ids += 1
        self.pid = Process._ids
        self.name = name or f"process-{self.pid}"
        self._sim = sim
        self._schedule_call = sim.schedule_call
        self._gen = generator
        self._send = generator.send
        # Prebind the bound method once: every wake-up site (delays, signal
        # fires, resource grants) would otherwise materialise a fresh bound
        # method per event.
        self._resume = self._resume
        self.finished = False
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self._completion_waiters: list = []
        self.started_at = sim.now
        self.finished_at: Optional[int] = None
        # Kick off on the next event boundary so construction never runs user
        # code synchronously.
        sim.schedule_call(0, self._resume, _NONE_ARGS)

    def __repr__(self) -> str:
        state = "finished" if self.finished else "running"
        return f"<Process {self.name} ({state})>"

    def _resume(self, value: Any) -> None:
        if self.finished:
            return
        try:
            command = self._send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as exc:  # surface errors loudly
            self.exception = exc
            self._finish(None)
            raise
        # Inline dispatch for the hot commands, most frequent first; exact
        # type checks keep this a couple of dictionary lookups per event.
        # Subclasses and anything unusual fall through to _dispatch.
        cls = command.__class__
        if cls is int or cls is Delay:
            if cls is int:
                if command < 0:
                    raise SimulationError(
                        f"process {self.name!r} yielded a negative delay: {command}"
                    )
                delay = command
            else:
                delay = command.cycles
            # Inlined Simulator.schedule_call: this is the hottest statement
            # in the whole simulator, so it reaches into the kernel's pool
            # and queues directly rather than paying another call frame.
            sim = self._sim
            free = sim._free
            if free:
                sim.pool_reuses += 1
                event = free.pop()
            else:
                event = _ScheduledEvent()
                event.recyclable = True
            event.callback = self._resume
            event.args = _NONE_ARGS
            seq = sim._seq
            sim._seq = seq + 1
            event.seq = seq
            if delay == 0:
                event.time = sim._now
                sim._lane.append(event)
            else:
                at = sim._now + delay
                event.time = at
                _heappush(sim._queue, (at, seq, event))
        elif cls is Resource:
            command._request(self)
        elif cls is Signal:
            command._waiters.append(self)
        elif cls is Acquire:
            command.resource._request(self)
        elif cls is Wait:
            command.signal._waiters.append(self)
        else:
            self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        """Slow-path dispatch: floats, Join, subclasses, and errors."""
        if isinstance(command, Join):
            target = command.process
            if target.finished:
                self._sim.schedule_call(0, self._resume, (target.result,))
            else:
                target._completion_waiters.append(self)
        elif isinstance(command, (int, float)):
            cycles = _as_cycles(command)
            if cycles < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded a negative delay: {command}"
                )
            self._sim.schedule_call(cycles, self._resume, _NONE_ARGS)
        elif isinstance(command, Delay):
            self._sim.schedule_call(command.cycles, self._resume, _NONE_ARGS)
        elif isinstance(command, Wait):
            command.signal._add_waiter(self)
        elif isinstance(command, Acquire):
            command.resource._request(self)
        elif isinstance(command, Signal):
            command._add_waiter(self)
        elif isinstance(command, Resource):
            command._request(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded an unsupported command: {command!r}"
            )

    def _finish(self, result: Any) -> None:
        self.finished = True
        self.result = result
        self.finished_at = self._sim.now
        waiters = self._completion_waiters
        if not waiters:
            return
        self._completion_waiters = []
        args = (result,)
        for waiter in waiters:
            self._sim.schedule_call(0, waiter._resume, args)


def start_process(sim: Simulator, generator: Generator, name: str = "") -> Process:
    """Convenience wrapper to launch a generator as a process."""
    return Process(sim, generator, name=name)
