"""Series generators for every figure in the paper's evaluation section.

Each function returns plain nested dictionaries (device -> x -> y) so that
benchmarks, tests and the command-line report can consume them uniformly.
The series are deliberately small enough to run on a laptop; pass
``quick=True`` for an even smaller smoke-test sweep.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.experiments.macro import (
    ALTERNATE_BUS_CONFIGS,
    IO_BUS_DEVICES,
    MEMORY_BUS_DEVICES,
    bus_occupancy_reduction,
    speedup_sweep,
)
from repro.experiments.microbench import (
    FIG6_MESSAGE_SIZES,
    FIG7_MESSAGE_SIZES,
    bandwidth,
    round_trip_latency,
)

#: Workloads of Figure 8, in the paper's order.
FIGURE8_WORKLOADS = ("spsolve", "gauss", "em3d", "moldyn", "appbt")


# ----------------------------------------------------------------------
# Figure 6 — round-trip latency vs message size
# ----------------------------------------------------------------------
def figure6_latency(
    sizes: Sequence[int] = FIG6_MESSAGE_SIZES,
    iterations: int = 30,
    quick: bool = False,
) -> Dict[str, Dict[str, Dict[int, float]]]:
    """Round-trip latency (µs) for Figures 6a, 6b and 6c."""
    if quick:
        sizes = tuple(sizes)[:3]
        iterations = 8
    panels: Dict[str, Dict[str, Dict[int, float]]] = {"memory": {}, "io": {}, "alternate": {}}
    for device in MEMORY_BUS_DEVICES:
        panels["memory"][device] = {
            size: round_trip_latency(device, "memory", size, iterations=iterations).round_trip_us
            for size in sizes
        }
    for device in IO_BUS_DEVICES:
        panels["io"][device] = {
            size: round_trip_latency(device, "io", size, iterations=iterations).round_trip_us
            for size in sizes
        }
    for device, bus in (("NI2w", "cache"), ("CNI16Qm", "memory"), ("CNI512Q", "io")):
        panels["alternate"][f"{device}@{bus}"] = {
            size: round_trip_latency(device, bus, size, iterations=iterations).round_trip_us
            for size in sizes
        }
    return panels


# ----------------------------------------------------------------------
# Figure 7 — bandwidth vs message size
# ----------------------------------------------------------------------
def figure7_bandwidth(
    sizes: Sequence[int] = FIG7_MESSAGE_SIZES,
    messages: int = 100,
    quick: bool = False,
) -> Dict[str, Dict[str, Dict[int, float]]]:
    """Relative bandwidth (fraction of the 2-processor cache-to-cache
    maximum) for Figures 7a, 7b and 7c, including CNI16Qm with snarfing."""
    if quick:
        sizes = tuple(sizes)[:3]
        messages = 30
    panels: Dict[str, Dict[str, Dict[int, float]]] = {"memory": {}, "io": {}, "alternate": {}}
    for device in MEMORY_BUS_DEVICES:
        panels["memory"][device] = {
            size: bandwidth(device, "memory", size, messages=messages).relative_bandwidth
            for size in sizes
        }
    panels["memory"]["CNI16Qm+snarf"] = {
        size: bandwidth("CNI16Qm", "memory", size, messages=messages, snarfing=True).relative_bandwidth
        for size in sizes
    }
    for device in IO_BUS_DEVICES:
        panels["io"][device] = {
            size: bandwidth(device, "io", size, messages=messages).relative_bandwidth
            for size in sizes
        }
    for device, bus in (("NI2w", "cache"), ("CNI16Qm", "memory"), ("CNI512Q", "io")):
        panels["alternate"][f"{device}@{bus}"] = {
            size: bandwidth(device, bus, size, messages=messages).relative_bandwidth
            for size in sizes
        }
    return panels


# ----------------------------------------------------------------------
# Figure 8 — macrobenchmark speedups
# ----------------------------------------------------------------------
def figure8_macro(
    workloads: Sequence[str] = FIGURE8_WORKLOADS,
    num_nodes: int = 16,
    scale: float = 1.0,
    quick: bool = False,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Speedup over NI2w/memory for Figures 8a (memory bus), 8b (I/O bus)
    and 8c (alternate buses)."""
    if quick:
        num_nodes = min(num_nodes, 8)
        scale = min(scale, 0.25)
        workloads = tuple(workloads)[:2]
    panels: Dict[str, Dict[str, Dict[str, float]]] = {"memory": {}, "io": {}, "alternate": {}}
    for workload in workloads:
        memory_sweep = speedup_sweep(
            workload,
            [(device, "memory") for device in MEMORY_BUS_DEVICES],
            num_nodes=num_nodes,
            scale=scale,
        )
        io_sweep = speedup_sweep(
            workload,
            [(device, "io") for device in IO_BUS_DEVICES],
            num_nodes=num_nodes,
            scale=scale,
        )
        alt_sweep = speedup_sweep(
            workload,
            list(ALTERNATE_BUS_CONFIGS),
            num_nodes=num_nodes,
            scale=scale,
        )
        panels["memory"][workload] = {
            key: value["speedup"] for key, value in memory_sweep.items()
        }
        panels["io"][workload] = {key: value["speedup"] for key, value in io_sweep.items()}
        panels["alternate"][workload] = {
            key: value["speedup"] for key, value in alt_sweep.items()
        }
    return panels


# ----------------------------------------------------------------------
# Section 5.2 — memory-bus occupancy reduction
# ----------------------------------------------------------------------
def occupancy_reduction(
    workloads: Sequence[str] = FIGURE8_WORKLOADS,
    num_nodes: int = 16,
    scale: float = 1.0,
    quick: bool = False,
) -> Dict[str, Dict[str, float]]:
    """Fractional memory-bus occupancy reduction vs NI2w per device."""
    if quick:
        num_nodes = min(num_nodes, 8)
        scale = min(scale, 0.25)
        workloads = tuple(workloads)[:2]
    return {
        workload: bus_occupancy_reduction(workload, num_nodes=num_nodes, scale=scale)
        for workload in workloads
    }
