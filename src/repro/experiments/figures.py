"""Series generators for every figure in the paper's evaluation section.

Each function returns plain nested dictionaries (device -> x -> y) so that
benchmarks, tests and the command-line report can consume them uniformly.
The series are deliberately small enough to run on a laptop; pass
``quick=True`` for an even smaller smoke-test sweep.

All figures are generated through :mod:`repro.api`: the sweep is a list of
:class:`~repro.api.ExperimentSpec` points and a shared
:class:`~repro.api.SweepRunner` executes it — serially by default, with
``jobs=N`` worker processes, and with an on-disk result cache when a
``cache_dir`` is given — then the result set is pivoted into the panel
layout the reports expect.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.api.presets import (
    bandwidth_sweep,
    latency_sweep,
    macro_sweep,
    occupancy_reductions,
    speedups,
)
from repro.api.runner import SweepRunner
from repro.experiments.macro import (
    ALTERNATE_BUS_CONFIGS,
    IO_BUS_DEVICES,
    MEMORY_BUS_DEVICES,
)
from repro.experiments.microbench import FIG6_MESSAGE_SIZES, FIG7_MESSAGE_SIZES

#: Workloads of Figure 8, in the paper's order.
FIGURE8_WORKLOADS = ("spsolve", "gauss", "em3d", "moldyn", "appbt")

#: The three panels of Figures 6/7/8, as (panel, (device, bus) configs).
_PANEL_CONFIGS = {
    "memory": tuple((device, "memory") for device in MEMORY_BUS_DEVICES),
    "io": tuple((device, "io") for device in IO_BUS_DEVICES),
    "alternate": tuple(ALTERNATE_BUS_CONFIGS),
}


def _series_key(panel: str, device: str, bus: str) -> str:
    """Panel series label: bare device name except on the mixed-bus panel."""
    return f"{device}@{bus}" if panel == "alternate" else device


def _runner(runner: Optional[SweepRunner], jobs: int, cache_dir: Optional[str]) -> SweepRunner:
    return runner if runner is not None else SweepRunner(jobs=jobs, cache_dir=cache_dir)


# ----------------------------------------------------------------------
# Figure 6 — round-trip latency vs message size
# ----------------------------------------------------------------------
def figure6_latency(
    sizes: Sequence[int] = FIG6_MESSAGE_SIZES,
    iterations: int = 30,
    quick: bool = False,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, Dict[str, Dict[int, float]]]:
    """Round-trip latency (µs) for Figures 6a, 6b and 6c."""
    if quick:
        sizes = tuple(sizes)[:3]
        iterations = 8
    run = _runner(runner, jobs, cache_dir)
    panels: Dict[str, Dict[str, Dict[int, float]]] = {}
    for panel, configs in _PANEL_CONFIGS.items():
        results = run.run(latency_sweep(configs, sizes, iterations=iterations, warmup=8))
        pivoted = results.pivot(series="config", x="message_bytes", value="round_trip_us")
        panels[panel] = {
            _series_key(panel, device, bus): pivoted[f"{device}@{bus}"]
            for device, bus in configs
        }
    return panels


# ----------------------------------------------------------------------
# Figure 7 — bandwidth vs message size
# ----------------------------------------------------------------------
def figure7_bandwidth(
    sizes: Sequence[int] = FIG7_MESSAGE_SIZES,
    messages: int = 100,
    quick: bool = False,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, Dict[str, Dict[int, float]]]:
    """Relative bandwidth (fraction of the 2-processor cache-to-cache
    maximum) for Figures 7a, 7b and 7c, including CNI16Qm with snarfing."""
    if quick:
        sizes = tuple(sizes)[:3]
        messages = 30
    run = _runner(runner, jobs, cache_dir)
    panels: Dict[str, Dict[str, Dict[int, float]]] = {}
    for panel, configs in _PANEL_CONFIGS.items():
        results = run.run(bandwidth_sweep(configs, sizes, messages=messages, warmup=16))
        pivoted = results.pivot(series="config", x="message_bytes", value="relative_bandwidth")
        panels[panel] = {
            _series_key(panel, device, bus): pivoted[f"{device}@{bus}"]
            for device, bus in configs
        }
    # Figure 7a's extra series: CNI16Qm with data snarfing enabled.
    snarf = run.run(
        bandwidth_sweep([("CNI16Qm", "memory")], sizes, messages=messages, warmup=16, snarfing=True)
    )
    panels["memory"]["CNI16Qm+snarf"] = snarf.pivot(
        series="config", x="message_bytes", value="relative_bandwidth"
    )["CNI16Qm@memory+snarf"]
    return panels


# ----------------------------------------------------------------------
# Figure 8 — macrobenchmark speedups
# ----------------------------------------------------------------------
def figure8_macro(
    workloads: Sequence[str] = FIGURE8_WORKLOADS,
    num_nodes: int = 16,
    scale: float = 1.0,
    quick: bool = False,
    workload_kwargs: Optional[Dict[str, Dict]] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Speedup over NI2w/memory for Figures 8a (memory bus), 8b (I/O bus)
    and 8c (alternate buses)."""
    if quick:
        num_nodes = min(num_nodes, 8)
        scale = min(scale, 0.25)
        workloads = tuple(workloads)[:2]
    run = _runner(runner, jobs, cache_dir)
    all_configs = []
    for configs in _PANEL_CONFIGS.values():
        all_configs.extend(configs)
    # One flat sweep; the runner deduplicates the shared baseline and any
    # config that appears on several panels.
    results = run.run(
        macro_sweep(
            workloads,
            all_configs,
            num_nodes=num_nodes,
            scale=scale,
            workload_kwargs=workload_kwargs,
        )
    )
    panels: Dict[str, Dict[str, Dict[str, float]]] = {panel: {} for panel in _PANEL_CONFIGS}
    for workload in workloads:
        per_config = speedups(results, workload)
        for panel, configs in _PANEL_CONFIGS.items():
            # Baseline first, as in the paper's panels.
            row = {"NI2w@memory": per_config["NI2w@memory"]}
            for device, bus in configs:
                row[f"{device}@{bus}"] = per_config[f"{device}@{bus}"]
            panels[panel][workload] = row
    return panels


# ----------------------------------------------------------------------
# Section 5.2 — memory-bus occupancy reduction
# ----------------------------------------------------------------------
def occupancy_reduction(
    workloads: Sequence[str] = FIGURE8_WORKLOADS,
    num_nodes: int = 16,
    scale: float = 1.0,
    quick: bool = False,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, Dict[str, float]]:
    """Fractional memory-bus occupancy reduction vs NI2w per device."""
    if quick:
        num_nodes = min(num_nodes, 8)
        scale = min(scale, 0.25)
        workloads = tuple(workloads)[:2]
    run = _runner(runner, jobs, cache_dir)
    results = run.run(
        macro_sweep(
            workloads,
            _PANEL_CONFIGS["memory"],
            num_nodes=num_nodes,
            scale=scale,
        )
    )
    return {
        workload: occupancy_reductions(results, workload) for workload in workloads
    }
