"""Experiment harness: microbenchmarks, macro runs, tables and figures.

New code should prefer the declarative layer in :mod:`repro.api`
(``ExperimentSpec`` → ``SweepRunner`` → ``ResultSet``); the per-experiment
entry points re-exported here remain the underlying engines and keep
working as before.
"""

from repro.api import ExperimentSpec, ResultSet, RunResult, SweepRunner, SweepSpec
from repro.experiments.macro import (
    ALTERNATE_BUS_CONFIGS,
    BASELINE,
    IO_BUS_DEVICES,
    MEMORY_BUS_DEVICES,
    MacroRunResult,
    bus_occupancy_reduction,
    run_macrobenchmark,
    speedup_sweep,
)
from repro.experiments.microbench import (
    FIG6_MESSAGE_SIZES,
    FIG7_MESSAGE_SIZES,
    BandwidthResult,
    LatencyResult,
    MicrobenchmarkError,
    bandwidth,
    round_trip_latency,
)

__all__ = [
    "ExperimentSpec",
    "SweepSpec",
    "SweepRunner",
    "RunResult",
    "ResultSet",
    "round_trip_latency",
    "bandwidth",
    "LatencyResult",
    "BandwidthResult",
    "MicrobenchmarkError",
    "FIG6_MESSAGE_SIZES",
    "FIG7_MESSAGE_SIZES",
    "run_macrobenchmark",
    "speedup_sweep",
    "bus_occupancy_reduction",
    "MacroRunResult",
    "MEMORY_BUS_DEVICES",
    "IO_BUS_DEVICES",
    "ALTERNATE_BUS_CONFIGS",
    "BASELINE",
]
