"""Microbenchmarks: process-to-process round-trip latency and bandwidth.

These reproduce the two microbenchmarks of Section 5.1: messages travel
from a user buffer in the sending processor's cache, through the NI and the
network, to a user buffer in the receiving processor's cache (so the
numbers include the messaging-layer overhead, as in the paper).  Results
are steady-state averages over many iterations after a warm-up period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.common.types import BusKind
from repro.node.machine import Machine


class MicrobenchmarkError(RuntimeError):
    """Raised when a microbenchmark cannot complete."""


#: Message sizes (user payload bytes) of Figure 6.
FIG6_MESSAGE_SIZES = (8, 16, 32, 64, 128, 256)
#: Message sizes (user payload bytes) of Figure 7.
FIG7_MESSAGE_SIZES = (8, 16, 64, 256, 512, 1024, 2048, 4096)

#: Poll backoff used by the microbenchmark loops (cycles).
_POLL_BACKOFF = 10


@dataclass
class LatencyResult:
    """Round-trip latency for one device/bus/message-size point."""

    ni_name: str
    bus: str
    message_bytes: int
    iterations: int
    round_trip_cycles: float
    snarfing: bool = False

    @property
    def round_trip_us(self) -> float:
        return self.round_trip_cycles / 200.0

    @property
    def one_way_us(self) -> float:
        return self.round_trip_us / 2.0


@dataclass
class BandwidthResult:
    """Achievable bandwidth for one device/bus/message-size point."""

    ni_name: str
    bus: str
    message_bytes: int
    messages: int
    total_cycles: int
    max_bandwidth_mbps: float
    snarfing: bool = False

    @property
    def bandwidth_mbps(self) -> float:
        if self.total_cycles <= 0:
            return 0.0
        bytes_per_cycle = (self.message_bytes * self.messages) / self.total_cycles
        return bytes_per_cycle * 200.0  # bytes/us == MB/s at 200 MHz

    @property
    def relative_bandwidth(self) -> float:
        if self.max_bandwidth_mbps <= 0:
            return 0.0
        return self.bandwidth_mbps / self.max_bandwidth_mbps


def _build_pair(
    ni_name: str,
    bus: Union[str, BusKind],
    snarfing: bool,
    num_nodes: int = 2,
    params=None,
    ni_kwargs: Optional[Dict] = None,
) -> Machine:
    """A machine with at least a sender (node 0) and receiver (node 1)."""
    return Machine.build(
        ni_name, bus, num_nodes=num_nodes, snarfing=snarfing,
        params=params, ni_kwargs=ni_kwargs,
    )


def round_trip_latency(
    ni_name: str,
    bus: Union[str, BusKind] = "memory",
    message_bytes: int = 64,
    iterations: int = 40,
    warmup: int = 8,
    snarfing: bool = False,
    max_cycles: int = 400_000_000,
    num_nodes: int = 2,
    params=None,
    ni_kwargs: Optional[Dict] = None,
) -> LatencyResult:
    """Steady-state process-to-process round-trip latency (Figure 6)."""
    if iterations < 1:
        raise MicrobenchmarkError("need at least one measured iteration")
    machine = _build_pair(ni_name, bus, snarfing, num_nodes, params, ni_kwargs)
    ml0, ml1 = machine.messaging[0], machine.messaging[1]
    total_rounds = warmup + iterations

    pongs = {"count": 0}
    pings = {"count": 0}
    samples: List[int] = []

    ml1.register_handler(
        "ping",
        lambda ml, src, nbytes, body: _count_and_reply(ml, src, nbytes, pings),
    )
    ml0.register_handler("pong", lambda ml, src, nbytes, body: pongs.__setitem__("count", pongs["count"] + 1))

    def sender():
        sim = machine.sim
        for round_index in range(total_rounds):
            start = sim.now
            yield from ml0.send_active_message(1, "ping", message_bytes)
            yield from ml0.poll_wait(
                lambda round_index=round_index: pongs["count"] > round_index,
                backoff=_POLL_BACKOFF,
            )
            if round_index >= warmup:
                samples.append(sim.now - start)

    def responder():
        yield from ml1.poll_wait(
            lambda: pings["count"] >= total_rounds, backoff=_POLL_BACKOFF
        )

    machine.run_programs({0: sender(), 1: responder()}, max_cycles=max_cycles)
    if len(samples) != iterations:
        raise MicrobenchmarkError(
            f"expected {iterations} samples, collected {len(samples)}"
        )
    mean_cycles = sum(samples) / len(samples)
    return LatencyResult(
        ni_name=ni_name,
        bus=str(bus if isinstance(bus, str) else bus.value),
        message_bytes=message_bytes,
        iterations=iterations,
        round_trip_cycles=mean_cycles,
        snarfing=snarfing,
    )


def _count_and_reply(ml, source: int, nbytes: int, pings: dict):
    pings["count"] += 1
    yield from ml.send_active_message(source, "pong", nbytes)


def bandwidth(
    ni_name: str,
    bus: Union[str, BusKind] = "memory",
    message_bytes: int = 256,
    messages: int = 120,
    warmup: int = 16,
    snarfing: bool = False,
    max_cycles: int = 800_000_000,
    num_nodes: int = 2,
    params=None,
    ni_kwargs: Optional[Dict] = None,
) -> BandwidthResult:
    """Steady-state process-to-process bandwidth (Figure 7).

    Node 0 streams ``messages`` user messages of ``message_bytes`` each to
    node 1 after a warm-up stream; the measured interval runs from the first
    measured send to the receipt of the last message at node 1.
    """
    if messages < 1:
        raise MicrobenchmarkError("need at least one measured message")
    machine = _build_pair(ni_name, bus, snarfing, num_nodes, params, ni_kwargs)
    ml0, ml1 = machine.messaging[0], machine.messaging[1]
    total = warmup + messages

    received = {"count": 0, "start": None, "end": None}

    def on_data(ml, src, nbytes, body):
        received["count"] += 1
        if received["count"] == warmup + 1:
            received["start_recv"] = machine.sim.now
        if received["count"] == total:
            received["end"] = machine.sim.now
        return None

    ml1.register_handler("data", on_data)

    marks = {}

    def sender():
        for index in range(total):
            if index == warmup:
                marks["start"] = machine.sim.now
            yield from ml0.send_active_message(1, "data", message_bytes)
        marks["send_done"] = machine.sim.now

    def receiver():
        yield from ml1.poll_wait(
            lambda: received["count"] >= total, backoff=_POLL_BACKOFF
        )

    machine.run_programs({0: sender(), 1: receiver()}, max_cycles=max_cycles)
    if received["end"] is None or "start" not in marks:
        raise MicrobenchmarkError("bandwidth run did not complete")
    elapsed = received["end"] - marks["start"]
    return BandwidthResult(
        ni_name=ni_name,
        bus=str(bus if isinstance(bus, str) else bus.value),
        message_bytes=message_bytes,
        messages=messages,
        total_cycles=max(1, elapsed),
        max_bandwidth_mbps=machine.params.max_local_cq_bandwidth_mbps(),
        snarfing=snarfing,
    )
