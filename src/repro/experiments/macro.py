"""Macrobenchmark experiment runner (Figure 8 and the bus-occupancy claims)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Union

from repro.apps import create_workload
from repro.apps.workload import WorkloadResult
from repro.common.types import BusKind
from repro.node.machine import Machine


#: Devices simulated on each bus in the paper (Section 5).
MEMORY_BUS_DEVICES = ("NI2w", "CNI4", "CNI16Q", "CNI512Q", "CNI16Qm")
IO_BUS_DEVICES = ("NI2w", "CNI4", "CNI16Q", "CNI512Q")
#: Figure 8c: NI2w on the cache bus, CNI16Qm on the memory bus, CNI512Q on
#: the I/O bus.
ALTERNATE_BUS_CONFIGS = (
    ("NI2w", "cache"),
    ("CNI16Qm", "memory"),
    ("CNI512Q", "io"),
)

#: The baseline configuration every speedup is normalized to.
BASELINE = ("NI2w", "memory")


@dataclass
class MacroRunResult:
    """One workload run on one (device, bus) configuration."""

    workload: str
    ni_name: str
    bus: str
    cycles: int
    memory_bus_occupancy: int
    io_bus_occupancy: int
    network_messages: int
    #: Machine-wide fault-injection/recovery totals, present only when the
    #: run had an active fault plan (``params.faults``); ``None`` otherwise
    #: so fault-free results are byte-identical to pre-fault-layer ones.
    fault_stats: Optional[Dict] = None

    def speedup_over(self, baseline: "MacroRunResult") -> float:
        if self.cycles <= 0:
            return 0.0
        return baseline.cycles / self.cycles


def run_macrobenchmark(
    workload_name: str,
    ni_name: str,
    bus: Union[str, BusKind] = "memory",
    num_nodes: int = 16,
    scale: float = 1.0,
    snarfing: bool = False,
    max_cycles: Optional[int] = 2_000_000_000,
    workload_kwargs: Optional[Dict] = None,
    params=None,
    ni_kwargs: Optional[Dict] = None,
) -> MacroRunResult:
    """Run one macrobenchmark skeleton on one machine configuration."""
    machine = Machine.build(
        ni_name, bus, num_nodes=num_nodes, snarfing=snarfing,
        params=params, ni_kwargs=ni_kwargs,
    )
    workload = create_workload(workload_name, scale=scale, **(workload_kwargs or {}))
    result: WorkloadResult = workload.run(machine, max_cycles=max_cycles)
    fault_stats = machine.fault_stats() if machine.params.faults else None
    return MacroRunResult(
        workload=workload_name,
        ni_name=ni_name,
        bus=str(bus if isinstance(bus, str) else bus.value),
        cycles=result.cycles,
        memory_bus_occupancy=result.memory_bus_occupancy,
        io_bus_occupancy=result.io_bus_occupancy,
        network_messages=result.network_messages,
        fault_stats=fault_stats,
    )


def speedup_sweep(
    workload_name: str,
    configurations: Sequence,
    num_nodes: int = 16,
    scale: float = 1.0,
    max_cycles: Optional[int] = 2_000_000_000,
    workload_kwargs: Optional[Dict] = None,
) -> Dict[str, Dict]:
    """Run a workload on the baseline plus each configuration.

    ``configurations`` is a sequence of ``(ni_name, bus)`` pairs.  Returns a
    mapping ``"<ni>@<bus>" -> {"speedup": ..., "result": MacroRunResult}``,
    always including the NI2w/memory baseline with speedup 1.0.
    """
    baseline = run_macrobenchmark(
        workload_name,
        *BASELINE,
        num_nodes=num_nodes,
        scale=scale,
        max_cycles=max_cycles,
        workload_kwargs=workload_kwargs,
    )
    out: Dict[str, Dict] = {
        f"{BASELINE[0]}@{BASELINE[1]}": {"speedup": 1.0, "result": baseline}
    }
    for ni_name, bus in configurations:
        if (ni_name, bus) == BASELINE:
            continue
        run = run_macrobenchmark(
            workload_name,
            ni_name,
            bus,
            num_nodes=num_nodes,
            scale=scale,
            max_cycles=max_cycles,
            workload_kwargs=workload_kwargs,
        )
        out[f"{ni_name}@{bus}"] = {"speedup": run.speedup_over(baseline), "result": run}
    return out


def bus_occupancy_reduction(
    workload_name: str,
    devices: Sequence[str] = MEMORY_BUS_DEVICES,
    num_nodes: int = 16,
    scale: float = 1.0,
    max_cycles: Optional[int] = 2_000_000_000,
) -> Dict[str, float]:
    """Memory-bus occupancy of each device relative to NI2w (Section 5.2).

    Returns ``{device: fractional reduction}`` (e.g. 0.66 means the device
    needs 66 % less memory-bus occupancy than NI2w for the same workload).
    """
    baseline = run_macrobenchmark(
        workload_name, "NI2w", "memory", num_nodes=num_nodes, scale=scale, max_cycles=max_cycles
    )
    reductions: Dict[str, float] = {"NI2w": 0.0}
    for device in devices:
        if device == "NI2w":
            continue
        run = run_macrobenchmark(
            workload_name, device, "memory", num_nodes=num_nodes, scale=scale, max_cycles=max_cycles
        )
        if baseline.memory_bus_occupancy <= 0:
            reductions[device] = 0.0
        else:
            reductions[device] = 1.0 - run.memory_bus_occupancy / baseline.memory_bus_occupancy
    return reductions
