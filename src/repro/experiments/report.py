"""Plain-text formatting of experiment results (tables and figure series)."""

from __future__ import annotations

from typing import List, Mapping, Sequence


def format_table(rows: Sequence[Mapping[str, object]], title: str = "") -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return f"{title}\n(empty)\n" if title else "(empty)\n"
    columns = list(rows[0].keys())
    widths = {col: len(str(col)) for col in columns}
    for row in rows:
        for col in columns:
            widths[col] = max(widths[col], len(str(row.get(col, ""))))
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(col).ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[col] for col in columns))
    for row in rows:
        lines.append(" | ".join(str(row.get(col, "")).ljust(widths[col]) for col in columns))
    return "\n".join(lines) + "\n"


def format_series_panel(
    panel: Mapping[str, Mapping[object, float]],
    title: str = "",
    x_label: str = "x",
    value_format: str = "{:.2f}",
) -> str:
    """Render a figure panel ({series: {x: y}}) as an aligned text table."""
    if not panel:
        return f"{title}\n(empty)\n" if title else "(empty)\n"
    xs: List[object] = []
    for series in panel.values():
        for x in series:
            if x not in xs:
                xs.append(x)
    rows = []
    for name, series in panel.items():
        row = {x_label: name}
        for x in xs:
            value = series.get(x)
            row[str(x)] = value_format.format(value) if value is not None else "-"
        rows.append(row)
    return format_table(rows, title=title)


def format_figure(
    figure: Mapping[str, Mapping[str, Mapping[object, float]]],
    title: str,
    x_label: str = "series",
    value_format: str = "{:.2f}",
) -> str:
    """Render a whole figure ({panel: {series: {x: y}}})."""
    chunks = [title, "=" * len(title)]
    for panel_name, panel in figure.items():
        chunks.append(
            format_series_panel(
                panel, title=f"[{panel_name}]", x_label=x_label, value_format=value_format
            )
        )
    return "\n".join(chunks) + "\n"


def format_speedups(figure: Mapping[str, Mapping[str, Mapping[str, float]]], title: str) -> str:
    """Render Figure-8-style speedup panels (panel -> workload -> config -> x)."""
    chunks = [title, "=" * len(title)]
    for panel_name, panel in figure.items():
        rows = []
        configs: List[str] = []
        for workload, values in panel.items():
            for config in values:
                if config not in configs:
                    configs.append(config)
        for workload, values in panel.items():
            row = {"workload": workload}
            for config in configs:
                value = values.get(config)
                row[config] = f"{value:.2f}" if value is not None else "-"
            rows.append(row)
        chunks.append(format_table(rows, title=f"[{panel_name} bus]"))
    return "\n".join(chunks) + "\n"
