"""Command-line entry point to regenerate the paper's tables and figures.

Usage::

    python -m repro.experiments.run tables
    python -m repro.experiments.run fig6 [--quick]
    python -m repro.experiments.run fig7 [--quick]
    python -m repro.experiments.run fig8 [--quick] [--scale 0.5] [--nodes 16]
    python -m repro.experiments.run occupancy [--quick]
    python -m repro.experiments.run all [--quick]
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments import figures, report, tables


def _print(text: str) -> None:
    sys.stdout.write(text)
    sys.stdout.flush()


def run_tables() -> None:
    _print(report.format_table(tables.table1_device_summary(), "Table 1: Network interface devices"))
    _print("\n")
    _print(report.format_table(tables.table2_bus_occupancy(), "Table 2: Bus occupancy (processor cycles)"))
    _print("\n")
    _print(report.format_table(tables.table3_macrobenchmarks(), "Table 3: Macrobenchmarks"))
    _print("\n")
    _print(report.format_table(tables.table4_related_work(), "Table 4: CNI vs other network interfaces"))
    _print("\n")


def run_fig6(quick: bool) -> None:
    series = figures.figure6_latency(quick=quick)
    _print(
        report.format_figure(
            series,
            "Figure 6: round-trip latency (microseconds) vs message size (bytes)",
            x_label="device",
        )
    )


def run_fig7(quick: bool) -> None:
    series = figures.figure7_bandwidth(quick=quick)
    _print(
        report.format_figure(
            series,
            "Figure 7: relative bandwidth (fraction of 2-processor max) vs message size (bytes)",
            x_label="device",
        )
    )


def run_fig8(quick: bool, scale: float, nodes: int) -> None:
    series = figures.figure8_macro(quick=quick, scale=scale, num_nodes=nodes)
    _print(report.format_speedups(series, "Figure 8: macrobenchmark speedup over NI2w on the memory bus"))


def run_occupancy(quick: bool, scale: float, nodes: int) -> None:
    series = figures.occupancy_reduction(quick=quick, scale=scale, num_nodes=nodes)
    rows = []
    for workload, values in series.items():
        row = {"workload": workload}
        row.update({device: f"{value:.1%}" for device, value in values.items()})
        rows.append(row)
    _print(report.format_table(rows, "Memory-bus occupancy reduction vs NI2w (Section 5.2)"))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument(
        "experiment",
        choices=["tables", "fig6", "fig7", "fig8", "occupancy", "all"],
        help="which experiment to regenerate",
    )
    parser.add_argument("--quick", action="store_true", help="smaller, faster sweep")
    parser.add_argument("--scale", type=float, default=1.0, help="macrobenchmark problem scale")
    parser.add_argument("--nodes", type=int, default=16, help="number of nodes for macrobenchmarks")
    args = parser.parse_args(argv)

    start = time.time()
    if args.experiment in ("tables", "all"):
        run_tables()
    if args.experiment in ("fig6", "all"):
        run_fig6(args.quick)
    if args.experiment in ("fig7", "all"):
        run_fig7(args.quick)
    if args.experiment in ("fig8", "all"):
        run_fig8(args.quick, args.scale, args.nodes)
    if args.experiment in ("occupancy", "all"):
        run_occupancy(args.quick, args.scale, args.nodes)
    _print(f"\n(done in {time.time() - start:.1f}s)\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
