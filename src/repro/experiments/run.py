"""Command-line entry point to regenerate the paper's tables and figures.

Usage::

    python -m repro.experiments.run tables
    python -m repro.experiments.run fig6 [--quick] [--jobs 4]
    python -m repro.experiments.run fig7 [--quick] [--jobs 4]
    python -m repro.experiments.run fig8 [--quick] [--scale 0.5] [--nodes 16]
    python -m repro.experiments.run occupancy [--quick]
    python -m repro.experiments.run scalability [--quick] [--jobs 4]
    python -m repro.experiments.run netsense [--quick] [--jobs 4]
    python -m repro.experiments.run protocols [--quick] [--jobs 4]
    python -m repro.experiments.run faults [--quick] [--jobs 4]
    python -m repro.experiments.run traffic [--quick] [--jobs 4]
    python -m repro.experiments.run replay [--trace t.json.gz] [--quick]
    python -m repro.experiments.run all [--quick] [--json results.json]
    python -m repro.experiments.run analyze {lint,statkeys,conflicts,determinism} [...]
    python -m repro.experiments.run serve [--port 8042] [--jobs 4] [...]
    python -m repro.experiments.run cache {stats,ls,gc,pin,unpin} [...]

``all`` regenerates the paper artifacts (tables + figures).  The
beyond-the-paper sweeps are separate commands: ``scalability`` re-runs the
fig8 macro trio from 4 to 64 nodes on the ideal and mesh fabrics,
``netsense`` sweeps latency x topology x device family, ``protocols``
re-runs the macro trio under every shipped coherence rule table, and
``faults`` runs macro workloads under deterministic fault-injection plans
with the reliable messaging layer recovering lost traffic, ``traffic``
sweeps the registered synthetic traffic generators (uniform, hotspot,
transpose, bursty) and fine-grain patterns (allreduce, halo, psrpc, kv)
over device x bus cells, and ``replay`` records one macro run's message
stream (or takes ``--trace``) and replays it across device points as a
cheap sweep accelerator (all powered by the :mod:`repro.api` presets; the
nightly CI pipeline drives them with ``--json`` to archive the structured
results).

``--point-timeout S``, ``--max-retries N`` and ``--fail-fast`` harden long
sweeps: points run in disposable child processes, hung or crashed points
are killed/retried, and at worst one point is recorded failed instead of
wedging the sweep.

Every experiment goes through :mod:`repro.api`: ``--jobs N`` fans the sweep
out over N worker processes, ``--cache-dir`` (default ``.repro-cache``)
memoises every simulated point on disk so re-running a figure is
near-instant, ``--no-cache`` disables that, and ``--json PATH`` writes the
full structured :class:`~repro.api.ResultSet` (plus table rows, when tables
were regenerated) to ``PATH``.

The on-disk memo is a :class:`~repro.service.store.ResultStore` — the same
sharded content-addressed store ``serve`` (the HTTP experiment service,
see :mod:`repro.service`) reads and writes, so figures regenerated here are
served warm over the wire and vice versa; ``cache`` administers it
(``stats``/``ls``/``gc``/``pin``/``unpin``).  A legacy flat cache directory
is adopted in place.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from repro.api import (
    SweepRunner,
    fault_sweep,
    network_sensitivity_sweep,
    paper_tables,
    protocol_sweep,
    scalability_sweep,
    speedups,
)
from repro.api.cache import DEFAULT_CACHE_DIR
from repro.experiments import figures, report


def _print(text: str) -> None:
    sys.stdout.write(text)
    sys.stdout.flush()


_TABLE_TITLES = {
    "table1": "Table 1: Network interface devices",
    "table2": "Table 2: Bus occupancy (processor cycles)",
    "table3": "Table 3: Macrobenchmarks",
    "table4": "Table 4: CNI vs other network interfaces",
}


def run_tables() -> dict:
    rows = paper_tables()
    for key in sorted(_TABLE_TITLES):
        _print(report.format_table(rows[key], _TABLE_TITLES[key]))
        _print("\n")
    return rows


def run_fig6(quick: bool, runner: SweepRunner) -> None:
    series = figures.figure6_latency(quick=quick, runner=runner)
    _print(
        report.format_figure(
            series,
            "Figure 6: round-trip latency (microseconds) vs message size (bytes)",
            x_label="device",
        )
    )


def run_fig7(quick: bool, runner: SweepRunner) -> None:
    series = figures.figure7_bandwidth(quick=quick, runner=runner)
    _print(
        report.format_figure(
            series,
            "Figure 7: relative bandwidth (fraction of 2-processor max) vs message size (bytes)",
            x_label="device",
        )
    )


def run_fig8(quick: bool, scale: float, nodes: int, runner: SweepRunner) -> None:
    series = figures.figure8_macro(quick=quick, scale=scale, num_nodes=nodes, runner=runner)
    _print(report.format_speedups(series, "Figure 8: macrobenchmark speedup over NI2w on the memory bus"))


def run_occupancy(quick: bool, scale: float, nodes: int, runner: SweepRunner) -> None:
    series = figures.occupancy_reduction(quick=quick, scale=scale, num_nodes=nodes, runner=runner)
    rows = []
    for workload, values in series.items():
        row = {"workload": workload}
        row.update({device: f"{value:.1%}" for device, value in values.items()})
        rows.append(row)
    _print(report.format_table(rows, "Memory-bus occupancy reduction vs NI2w (Section 5.2)"))


def run_scalability(quick: bool, runner: SweepRunner) -> None:
    """Node-count scalability: the fig8 macro trio per (fabric, scale)."""
    if quick:
        sweep = scalability_sweep(
            workloads=("gauss", "em3d"), node_counts=(4, 8, 16), scale=0.25
        )
    else:
        sweep = scalability_sweep()
    results = runner.run(sweep)
    rows = []
    for fabric in sorted({r.spec.params.get("fabric", "ideal") for r in results}):
        subset = results.filter(lambda r, f=fabric: r.spec.params.get("fabric") == f)
        for num_nodes in sorted({r.spec.num_nodes for r in subset}):
            cell = subset.filter(num_nodes=num_nodes)
            for workload in sorted({r.spec.workload for r in cell}):
                row = {"fabric": fabric, "nodes": num_nodes, "workload": workload}
                gains = speedups(cell, workload)
                for config, gain in sorted(gains.items()):
                    row[config] = f"{gain:.2f}x"
                rows.append(row)
    _print(report.format_table(rows, "Scalability: speedup over NI2w/memory per (fabric, node count)"))


def run_netsense(quick: bool, runner: SweepRunner) -> None:
    """Network sensitivity: latency x topology x device family."""
    if quick:
        sweep = network_sensitivity_sweep(
            latencies=(25, 100), fabrics=("ideal", "mesh"), num_nodes=8, scale=0.25
        )
    else:
        sweep = network_sensitivity_sweep()
    results = runner.run(sweep)
    rows = []
    for result in results:
        params = result.spec.params
        rows.append(
            {
                "fabric": params.get("fabric", "ideal"),
                "latency": params.get("network_latency_cycles", 100),
                "workload": result.spec.workload,
                "config": result.spec.config,
                "cycles": f"{result.metrics['cycles']:,.0f}",
            }
        )
    _print(report.format_table(rows, "Network sensitivity: completion cycles by latency x topology x device"))


def run_faults(quick: bool, runner: SweepRunner) -> None:
    """Fault-injection axis: macro runs per (plan, seed) with recovery stats."""
    if quick:
        sweep = fault_sweep(
            workloads=("gauss",), num_nodes=8, scale=0.25, seeds=(0,)
        )
    else:
        sweep = fault_sweep(
            workloads=("gauss", "em3d"), plans=("zero", "lossy1", "lossy5"), seeds=(0, 1)
        )
    results = runner.run(sweep)
    rows = []
    for result in results:
        params = result.spec.params
        row = {
            "plan": params.get("faults", ""),
            "seed": params.get("fault_seed", 0),
            "workload": result.spec.workload,
            "config": result.spec.config,
        }
        if result.error is not None:
            row["cycles"] = "FAILED"
            row["error"] = result.error
        else:
            row["cycles"] = f"{result.metrics['cycles']:,.0f}"
            row["drops"] = f"{result.metrics.get('fault_drops', 0):,.0f}"
            row["retransmits"] = f"{result.metrics.get('fault_retransmits', 0):,.0f}"
            row["recoveries"] = f"{result.metrics.get('fault_recoveries', 0):,.0f}"
        rows.append(row)
    _print(report.format_table(rows, "Fault injection: macro completion and recovery per (plan, seed)"))


def run_protocols(quick: bool, runner: SweepRunner) -> None:
    """Coherence-protocol axis: the macro trio per registered rule table."""
    if quick:
        sweep = protocol_sweep(workloads=("gauss",), num_nodes=8, scale=0.25)
    else:
        sweep = protocol_sweep()
    results = runner.run(sweep)
    rows = []
    for protocol in sorted({r.spec.params.get("protocol", "moesi") for r in results}):
        subset = results.filter(
            lambda r, p=protocol: r.spec.params.get("protocol") == p
        )
        for workload in sorted({r.spec.workload for r in subset}):
            for result in subset.filter(workload=workload):
                rows.append(
                    {
                        "protocol": protocol,
                        "workload": workload,
                        "config": result.spec.config,
                        "cycles": f"{result.metrics['cycles']:,.0f}",
                        "membus occ": f"{result.metrics['memory_bus_occupancy']:,.0f}",
                    }
                )
    _print(report.format_table(rows, "Coherence protocols: macro completion cycles per rule table"))


def run_traffic(quick: bool, runner: SweepRunner) -> None:
    """Synthetic-traffic axis: registered patterns x (device, bus)."""
    from repro.api import traffic_sweep

    if quick:
        sweep = traffic_sweep(
            patterns=("uniform", "hotspot", "allreduce"),
            num_nodes=8,
            scale=0.25,
        )
    else:
        sweep = traffic_sweep()
    results = runner.run(sweep)
    rows = []
    for result in results:
        row = {
            "pattern": result.spec.workload,
            "config": result.spec.config,
        }
        if result.error is not None:
            row["cycles"] = "FAILED"
            row["error"] = result.error
        else:
            metrics = result.metrics
            row["cycles"] = f"{metrics['cycles']:,.0f}"
            row["messages"] = f"{metrics['network_messages']:,.0f}"
            row["msgs/kcyc"] = f"{metrics.get('messages_per_kcycle', 0.0):.2f}"
            row["MB/s"] = f"{metrics.get('delivered_mbps', 0.0):.1f}"
        rows.append(row)
    _print(report.format_table(rows, "Synthetic traffic: delivered load per pattern x configuration"))


def run_replay(
    quick: bool,
    trace: Optional[str],
    scale: float,
    nodes: int,
    runner: SweepRunner,
) -> None:
    """Trace record/replay: capture one run, re-issue it across devices."""
    import tempfile

    from repro.api import ExperimentSpec, SweepSpec
    from repro.trace import read_header, record_trace

    if quick:
        scale, nodes = min(scale, 0.25), min(nodes, 8)
    if trace is None:
        spec = ExperimentSpec(
            kind="macro",
            device="CNI16Qm",
            bus="memory",
            workload="gauss",
            scale=scale,
            num_nodes=nodes,
        )
        trace = os.path.join(tempfile.gettempdir(), f"repro-replay-{os.getpid()}.json.gz")
        summary = record_trace(spec, trace)
        _print(
            f"(recorded {summary.messages} messages / {summary.payload_bytes} "
            f"payload bytes from {spec.describe()} to {trace})\n"
        )
    header = read_header(trace)
    points = [
        ExperimentSpec(
            kind="replay",
            device=device,
            bus=bus,
            num_nodes=header["num_nodes"],
            workload="replay",
            workload_kwargs={"trace": trace},
        )
        for device, bus in (("NI2w", "memory"), ("NI2w", "io"), ("CNI4Q", "memory"), ("CNI16Qm", "memory"))
    ]
    results = runner.run(SweepSpec.explicit(points, name="replay"))
    rows = []
    for result in results:
        row = {"config": result.spec.config}
        if result.error is not None:
            row["cycles"] = "FAILED"
            row["error"] = result.error
        else:
            metrics = result.metrics
            row["cycles"] = f"{metrics['cycles']:,.0f}"
            row["messages"] = f"{metrics['network_messages']:,.0f}"
            row["trace msgs"] = f"{metrics['trace_messages']:,.0f}"
            row["fidelity"] = (
                "exact"
                if metrics["network_messages"] == metrics["trace_messages"]
                and metrics["payload_bytes"] == metrics["trace_payload_bytes"]
                else "DIVERGED"
            )
        rows.append(row)
    _print(report.format_table(rows, f"Trace replay across devices ({header['messages']} recorded messages)"))


def _progress(completed: int, total: int, result) -> None:
    sys.stderr.write(f"\r  [{completed}/{total}] {result.spec.describe():<60}")
    if completed == total:
        sys.stderr.write("\n")
    sys.stderr.flush()


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "analyze":
        # Partition-safety analyzer: lint / conflicts / determinism.
        from repro.analysis.__main__ import main as analysis_main

        return analysis_main(argv[1:])
    if argv and argv[0] == "serve":
        # HTTP experiment service over the shared result store.
        from repro.service.__main__ import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "cache":
        # Store admin: stats / ls / gc / pin / unpin.
        from repro.service.admin import main as admin_main

        return admin_main(argv[1:])
    parser = argparse.ArgumentParser(description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument(
        "experiment",
        choices=["tables", "fig6", "fig7", "fig8", "occupancy", "scalability", "netsense", "protocols", "faults", "traffic", "replay", "all"],
        help="which experiment to regenerate",
    )
    parser.add_argument("--quick", action="store_true", help="smaller, faster sweep")
    parser.add_argument("--scale", type=float, default=1.0, help="macrobenchmark problem scale")
    parser.add_argument("--nodes", type=int, default=16, help="number of nodes for macrobenchmarks")
    parser.add_argument("--jobs", type=int, default=1, help="worker processes for sweep execution")
    parser.add_argument("--json", metavar="PATH", help="write structured results to PATH")
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"on-disk result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument("--no-cache", action="store_true", help="disable the on-disk result cache")
    parser.add_argument("--progress", action="store_true", help="report per-point progress on stderr")
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="replay: an existing trace file to replay (default: record one first)",
    )
    parser.add_argument(
        "--point-timeout", type=float, default=None, metavar="S",
        help="wall-clock budget per point in seconds; overruns are killed and "
        "recorded as failed instead of hanging the sweep",
    )
    parser.add_argument(
        "--max-retries", type=int, default=0,
        help="re-run a crashed or timed-out point this many times before recording failure",
    )
    parser.add_argument(
        "--fail-fast", action="store_true",
        help="abort the sweep on the first failed point (exit nonzero)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.max_retries < 0:
        parser.error("--max-retries must be >= 0")

    if args.no_cache:
        cache = None
    else:
        # The CLI shares the sharded content-addressed store with the HTTP
        # service (legacy flat cache directories are adopted in place).
        from repro.service.store import ResultStore

        cache = ResultStore(args.cache_dir)
    runner = SweepRunner(
        jobs=args.jobs,
        cache_dir=cache,
        progress=_progress if args.progress else None,
        point_timeout_s=args.point_timeout,
        max_retries=args.max_retries,
        fail_fast=args.fail_fast,
    )

    start = time.time()
    table_rows = None
    if args.experiment in ("tables", "all"):
        table_rows = run_tables()
    if args.experiment in ("fig6", "all"):
        run_fig6(args.quick, runner)
    if args.experiment in ("fig7", "all"):
        run_fig7(args.quick, runner)
    if args.experiment in ("fig8", "all"):
        run_fig8(args.quick, args.scale, args.nodes, runner)
    if args.experiment in ("occupancy", "all"):
        run_occupancy(args.quick, args.scale, args.nodes, runner)
    if args.experiment == "scalability":
        run_scalability(args.quick, runner)
    if args.experiment == "netsense":
        run_netsense(args.quick, runner)
    if args.experiment == "protocols":
        run_protocols(args.quick, runner)
    if args.experiment == "faults":
        run_faults(args.quick, runner)
    if args.experiment == "traffic":
        run_traffic(args.quick, runner)
    if args.experiment == "replay":
        run_replay(args.quick, args.trace, args.scale, args.nodes, runner)
    elapsed = time.time() - start

    if args.json:
        payload = runner.history.to_dict()
        payload["experiment"] = args.experiment
        payload["elapsed_s"] = elapsed
        payload["cache"] = runner.cache_stats()
        if table_rows is not None:
            payload["tables"] = table_rows
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, indent=2)
        _print(f"(wrote {len(runner.history)} results to {args.json})\n")

    _print(f"\n(done in {elapsed:.1f}s)\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
