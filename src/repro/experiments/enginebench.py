"""Kernel-throughput experiment: events/sec on real simulator workloads.

The paper's figures measure *simulated* time; this module measures the
simulator itself.  One engine-bench point runs a macrobenchmark workload on
a machine configuration with :meth:`Machine.run_programs(profile=True)` and
reports how fast the kernel chewed through its event queue — events/sec,
the lane/heap split and event-pool reuse — so kernel regressions show up in
the same sweep infrastructure that tracks the paper results.

Unlike every other experiment kind, the metrics here are wall-clock
measurements: they are machine-dependent and not reproducible bit-for-bit,
so engine points should not be served from the on-disk result cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.apps import create_workload
from repro.common.types import BusKind
from repro.node.machine import Machine


@dataclass
class EngineBenchResult:
    """Kernel throughput for one (workload, device, bus) configuration."""

    workload: str
    ni_name: str
    bus: str
    cycles: int
    events: int
    wall_s: float
    events_per_sec: float
    lane_events: int
    heap_events: int
    pool_reuses: int
    elided_events: int = 0
    elided_cycles: int = 0

    @property
    def lane_fraction(self) -> float:
        return self.lane_events / self.events if self.events else 0.0

    @property
    def elided_fraction(self) -> float:
        """Fraction of would-be kernel events elided by spin-wait elision."""
        total = self.events + self.elided_events
        return self.elided_events / total if total else 0.0


def kernel_throughput(
    workload_name: str,
    ni_name: str = "CNI16Qm",
    bus: Union[str, BusKind] = "memory",
    num_nodes: int = 8,
    scale: float = 0.25,
    snarfing: bool = False,
    max_cycles: Optional[int] = 2_000_000_000,
    workload_kwargs: Optional[Dict] = None,
    params=None,
    ni_kwargs: Optional[Dict] = None,
) -> EngineBenchResult:
    """Run one macro workload and measure kernel events/sec while it runs."""
    machine = Machine.build(
        ni_name, bus, num_nodes=num_nodes, snarfing=snarfing,
        params=params, ni_kwargs=ni_kwargs,
    )
    workload = create_workload(workload_name, scale=scale, **(workload_kwargs or {}))
    cycles = machine.run_programs(
        workload.programs(machine), max_cycles=max_cycles, profile=True
    )
    profile = machine.last_profile
    return EngineBenchResult(
        workload=workload_name,
        ni_name=ni_name,
        bus=str(bus if isinstance(bus, str) else bus.value),
        cycles=cycles,
        events=int(profile["events"]),
        wall_s=profile["wall_s"],
        events_per_sec=profile["events_per_sec"],
        lane_events=int(profile["lane_events"]),
        heap_events=int(profile["heap_events"]),
        pool_reuses=int(profile["pool_reuses"]),
        elided_events=int(profile.get("elided_events", 0)),
        elided_cycles=int(profile.get("elided_cycles", 0)),
    )
