"""Regeneration of the paper's tables (1–4) from the implementation.

Tables 1–3 are derived from the actual configuration objects and workload
metadata in this package (so they stay truthful to what the simulator
runs); Table 4 is the paper's qualitative comparison, reproduced verbatim
as structured data.
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps import MACROBENCHMARKS
from repro.common.params import DEFAULT_PARAMS, MachineParams
from repro.common.types import BusKind
from repro.ni.taxonomy import EVALUATED_DEVICES, available_devices


def table1_device_summary() -> List[Dict[str, str]]:
    """Table 1: summary of the five evaluated network interface devices.

    Derived from the device registry's parsed metadata, so the table stays
    truthful to what :func:`repro.ni.taxonomy.create_ni` actually builds.
    """
    metadata = {info.name: info for info in available_devices()}
    rows = []
    for name in EVALUATED_DEVICES:
        spec = metadata[name].spec
        unit = "cache blocks" if spec.unit == "blocks" else "words"
        rows.append(
            {
                "device": name,
                "exposed_queue_size": f"{spec.exposed_size} {unit}",
                "queue_pointers": "explicit" if spec.queue else "-",
                "home": "main memory" if spec.home == "memory" else "device",
                "coherent": "yes" if spec.coherent else "no",
            }
        )
    return rows


def table2_bus_occupancy(params: MachineParams = DEFAULT_PARAMS) -> List[Dict[str, object]]:
    """Table 2: bus occupancy for NI and memory accesses, processor cycles."""
    def cell(mapping, bus):
        return mapping.get(bus, "")

    rows = [
        {
            "operation": "Uncached 8-byte load from NI",
            "cache_bus": cell(params.uncached_load_cycles, BusKind.CACHE),
            "memory_bus": cell(params.uncached_load_cycles, BusKind.MEMORY),
            "io_bus": cell(params.uncached_load_cycles, BusKind.IO),
        },
        {
            "operation": "Uncached 8-byte store to NI",
            "cache_bus": cell(params.uncached_store_cycles, BusKind.CACHE),
            "memory_bus": cell(params.uncached_store_cycles, BusKind.MEMORY),
            "io_bus": cell(params.uncached_store_cycles, BusKind.IO),
        },
        {
            "operation": "Cache-to-cache transfer from CNI to processor (64 bytes)",
            "cache_bus": "",
            "memory_bus": cell(params.cache_to_cache_from_cni_cycles, BusKind.MEMORY),
            "io_bus": cell(params.cache_to_cache_from_cni_cycles, BusKind.IO),
        },
        {
            "operation": "Cache-to-cache transfer from processor to CNI (64 bytes)",
            "cache_bus": "",
            "memory_bus": cell(params.cache_to_cache_to_cni_cycles, BusKind.MEMORY),
            "io_bus": cell(params.cache_to_cache_to_cni_cycles, BusKind.IO),
        },
        {
            "operation": "Memory-to-cache transfer (64 bytes)",
            "cache_bus": "",
            "memory_bus": cell(params.memory_to_cache_cycles, BusKind.MEMORY),
            "io_bus": "",
        },
    ]
    return rows


def table3_macrobenchmarks() -> List[Dict[str, str]]:
    """Table 3: macrobenchmark summary (name, key communication, input)."""
    rows = []
    for name, cls in MACROBENCHMARKS.items():
        workload = cls()
        rows.append(
            {
                "benchmark": name,
                "key_communication": workload.key_communication,
                "paper_input": workload.paper_input,
                "skeleton_input": workload.describe_input(),
            }
        )
    return rows


def table4_related_work() -> List[Dict[str, str]]:
    """Table 4: comparison of CNI with other network interfaces."""
    return [
        {"interface": "CNI", "coherence": "Yes", "caching": "Yes", "uniform_interface": "Memory Interface"},
        {"interface": "TMC CM-5", "coherence": "No", "caching": "No", "uniform_interface": "No"},
        {"interface": "Typhoon", "coherence": "Possible", "caching": "Possible", "uniform_interface": "Possible"},
        {"interface": "FLASH", "coherence": "Possible", "caching": "Possible", "uniform_interface": "Possible"},
        {"interface": "Meiko CS2", "coherence": "Possible", "caching": "No", "uniform_interface": "Possible"},
        {"interface": "Alewife", "coherence": "No", "caching": "No", "uniform_interface": "No"},
        {"interface": "FUGU", "coherence": "No", "caching": "No", "uniform_interface": "No"},
        {"interface": "StarT-NG", "coherence": "No", "caching": "Maybe", "uniform_interface": "No"},
        {"interface": "AP1000", "coherence": "No", "caching": "Sender", "uniform_interface": "No"},
        {"interface": "T-Zero", "coherence": "Partial", "caching": "Partial", "uniform_interface": "No"},
        {"interface": "SHRIMP", "coherence": "Yes", "caching": "Write Through", "uniform_interface": "No"},
        {"interface": "DI Multicomputer", "coherence": "No", "caching": "No", "uniform_interface": "Network Interface"},
    ]
