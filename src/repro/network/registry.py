"""Fabric registry: topology names resolved to fabric implementations.

The counterpart of the NI device registry (:mod:`repro.ni.registry`) for
the interconnect axis: a fabric *kind* (the grammar's leading word —
``ideal``, ``xbar``, ``mesh``, ``torus``) maps to an
:class:`~repro.network.fabric.AbstractFabric` subclass, and
:func:`create_fabric` builds the fabric a machine's parameters name.
Plugins register new kinds with :func:`register_fabric` (plain call or
decorator), after which their names parse everywhere a built-in name does
— ``MachineParams(fabric="myfabric")``, experiment specs, sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Type

from repro.common.params import MachineParams
from repro.network.fabric import AbstractFabric, IdealFabric
from repro.network.fabricspec import FabricError, FabricSpec, parse_fabric_name
from repro.network.topology import CrossbarFabric, MeshFabric, TorusFabric
from repro.sim import Simulator

#: Version of the fabric timing semantics.  Bump whenever the way a
#: fabric name maps to delivery timing changes (serialization formula,
#: hop model, routing, contention rules): cached experiment results keyed
#: under an older version are then invalidated by :mod:`repro.api.cache`,
#: exactly as :data:`repro.ni.registry.DEVICE_SCHEMA_VERSION` does for
#: device-construction semantics.
FABRIC_SCHEMA_VERSION = 1

#: The pinned built-in fabrics; ``unregister_fabric`` restores these if a
#: plugin shadowed one of the kinds.
_BUILTIN_CLASSES: Dict[str, Type[AbstractFabric]] = {  # repro: allow[MUTSTATE] import-time fabric plugin registry
    "ideal": IdealFabric,
    "xbar": CrossbarFabric,
    "mesh": MeshFabric,
    "torus": TorusFabric,
}

_FABRIC_CLASSES: Dict[str, Type[AbstractFabric]] = dict(_BUILTIN_CLASSES)  # repro: allow[MUTSTATE] import-time fabric plugin registry


def parse_fabric(name: str) -> FabricSpec:
    """Parse a fabric name against every *registered* kind.

    Like :func:`~repro.network.fabricspec.parse_fabric_name` but the
    accepted kinds include plugins, so ``MachineParams.validate`` and spec
    validation recognise registered custom fabrics.
    """
    return parse_fabric_name(name, known_kinds=tuple(_FABRIC_CLASSES))


def fabric_class(kind: str) -> Type[AbstractFabric]:
    """Return the fabric class registered for a kind."""
    cls = _FABRIC_CLASSES.get(kind)
    if cls is None:
        raise FabricError(
            f"unknown fabric kind {kind!r}; choose from {sorted(_FABRIC_CLASSES)}"
        )
    return cls


def register_fabric(kind: str, cls: Optional[Type[AbstractFabric]] = None):
    """Register a fabric implementation under a grammar kind.

    Either a plain call, ``register_fabric("fat", FatTreeFabric)``, or the
    decorator form — the public plugin hook::

        @register_fabric("fattree")
        class FatTreeFabric(AbstractFabric):
            ...

    Kinds must fit the grammar's kind field (lowercase letters).  A plugin
    may also shadow a built-in kind; :func:`unregister_fabric` restores the
    original.  Returns the class, enabling decorator use.
    """
    if cls is None:
        def _decorator(klass: Type[AbstractFabric]) -> Type[AbstractFabric]:
            return register_fabric(kind, klass)

        return _decorator
    if not (kind.isalpha() and kind == kind.lower()):
        raise FabricError(
            f"fabric kind {kind!r} does not fit the grammar kind field "
            f"(lowercase letters only)"
        )
    if not (isinstance(cls, type) and issubclass(cls, AbstractFabric)):
        raise FabricError(f"{cls!r} is not an AbstractFabric subclass")
    _FABRIC_CLASSES[kind] = cls
    return cls


def unregister_fabric(kind: str) -> None:
    """Remove a registered fabric kind (no-op for unknown kinds).

    The built-in kinds cannot be removed: unregistering one restores the
    original pinned implementation, so a plugin that shadowed a built-in
    fabric is always reversible.
    """
    original = _BUILTIN_CLASSES.get(kind)
    if original is not None:
        _FABRIC_CLASSES[kind] = original
    else:
        _FABRIC_CLASSES.pop(kind, None)


@dataclass(frozen=True)
class FabricInfo:
    """Metadata for one registered fabric kind."""

    kind: str
    cls_name: str
    builtin: bool
    summary: str

    def describe(self) -> str:
        origin = "built-in" if self.builtin else "plugin"
        return f"{self.kind}: {self.summary} ({origin}, {self.cls_name})"


def available_fabrics() -> Tuple[FabricInfo, ...]:
    """Metadata for every registered fabric kind, sorted by kind."""
    infos = []
    for kind in sorted(_FABRIC_CLASSES):
        cls = _FABRIC_CLASSES[kind]
        doc = (cls.__doc__ or "").strip().split("\n", 1)[0].rstrip(".")
        infos.append(
            FabricInfo(
                kind=kind,
                cls_name=cls.__name__,
                builtin=_BUILTIN_CLASSES.get(kind) is cls,
                summary=doc or "no description",
            )
        )
    return tuple(infos)


def create_fabric(sim: Simulator, params: MachineParams) -> AbstractFabric:
    """Build the fabric ``params.fabric`` names, attached to nothing yet.

    Raises :class:`~repro.network.fabricspec.FabricError` for names that
    do not parse, name an unregistered kind, or whose grid dimensions
    cannot host ``params.num_nodes`` nodes.
    """
    spec = parse_fabric(params.fabric).validate_nodes(params.num_nodes)
    return fabric_class(spec.kind)(sim, params, spec=spec)
