"""Declarative interconnect-fabric specifications: the topology grammar.

The paper idealizes the network (Section 4.1: every message takes a fixed
100 cycles, topology ignored).  To ask the scalability and sensitivity
questions that idealization forecloses, a machine now *names* its fabric
declaratively — ``MachineParams.fabric`` holds a topology string parsed by
this module, in the style of the ``NI_iX`` device taxonomy grammar
(:mod:`repro.ni.taxonomy`):

* ``ideal`` — the paper's fixed-latency, topology-free fabric (default);
* ``xbar`` — a full crossbar with per-port serialization and bandwidth;
* ``mesh`` / ``torus`` — a 2D grid with dimension-order routing, per-hop
  latency and link-contention queuing.  Bare names derive a near-square
  shape from the node count; ``mesh4x4`` / ``torus8x8`` pin it explicitly.

Like taxonomy names, fabric names are part of experiment-spec hashes, so
the grammar is canonical: one topology, one spelling.  Parse errors name
the offending grammar field (``kind`` or ``dims``) the way
:class:`~repro.ni.taxonomy.TaxonomyError` messages do.

This module is deliberately dependency-free (no simulator imports) so that
:mod:`repro.common.params` can validate fabric names without import
cycles; the concrete fabric classes live in :mod:`repro.network.fabric`
and :mod:`repro.network.topology`, keyed by ``kind`` through
:mod:`repro.network.registry`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple


class FabricError(ValueError):
    """Raised for malformed or unsupported fabric names.

    Error messages name the offending field of the fabric grammar
    (``kind`` or ``dims``) so callers can see which axis of the topology
    space a name violates.
    """


#: Kinds with a built-in fabric implementation.  Plugins registered through
#: :func:`repro.network.registry.register_fabric` extend the accepted set.
BUILTIN_KINDS: Tuple[str, ...] = ("ideal", "xbar", "mesh", "torus")

#: Kinds that accept (or derive) 2D grid dimensions.
GRID_KINDS: Tuple[str, ...] = ("mesh", "torus")

#: Common aliases rejected with a hint, keeping the grammar canonical (one
#: topology, one spelling — fabric names feed experiment-spec hashes).
_KIND_HINTS = {"crossbar": "xbar", "xb": "xbar", "grid": "mesh", "ring": "torus"}  # repro: allow[MUTSTATE] constant alias-hint table

_NAME_PATTERN = re.compile(r"^(?P<kind>[a-z]+)(?P<dims>\d+x\d+)?$")


@dataclass(frozen=True)
class FabricSpec:
    """Parsed form of a fabric name.

    ``width``/``height`` are ``None`` for non-grid fabrics and for bare
    grid names (``"mesh"``), whose shape is derived from the machine's
    node count by :meth:`resolve_dims`.
    """

    name: str
    kind: str
    width: Optional[int] = None
    height: Optional[int] = None

    @property
    def is_grid(self) -> bool:
        return self.kind in GRID_KINDS

    @property
    def explicit_dims(self) -> bool:
        return self.width is not None

    def resolve_dims(self, num_nodes: int) -> Tuple[int, int]:
        """The (width, height) grid this spec gives a ``num_nodes`` machine.

        Explicit dimensions must multiply out to the node count; bare grid
        names take the most nearly square factorization (``16 -> 4x4``,
        ``8 -> 2x4``, a prime ``p -> 1xp``).
        """
        if not self.is_grid:
            raise FabricError(f"{self.name!r}: kind {self.kind!r} has no grid dimensions")
        if self.explicit_dims:
            if self.width * self.height != num_nodes:
                raise FabricError(
                    f"{self.name!r}: dims field {self.width}x{self.height} holds "
                    f"{self.width * self.height} nodes, but the machine has "
                    f"{num_nodes} (write {self.kind!r} for an automatic shape)"
                )
            return self.width, self.height
        width = 1
        for candidate in range(2, int(num_nodes**0.5) + 1):
            if num_nodes % candidate == 0:
                width = candidate
        return width, num_nodes // width

    def validate_nodes(self, num_nodes: int) -> "FabricSpec":
        """Check this fabric can host ``num_nodes`` nodes (grid dims match)."""
        if self.is_grid:
            self.resolve_dims(num_nodes)
        return self

    def describe(self) -> str:
        if self.is_grid:
            shape = f"{self.width}x{self.height}" if self.explicit_dims else "auto-shaped"
            return f"{self.name}: 2D {self.kind}, {shape}, dimension-order routing"
        if self.kind == "ideal":
            return f"{self.name}: fixed-latency fabric, topology ignored (paper Section 4.1)"
        if self.kind == "xbar":
            return f"{self.name}: full crossbar with per-port serialization"
        return f"{self.name}: custom fabric kind {self.kind!r}"


def parse_fabric_name(
    name: str, known_kinds: Sequence[str] = BUILTIN_KINDS
) -> FabricSpec:
    """Parse a fabric name like ``"mesh4x4"`` into a :class:`FabricSpec`.

    Raises :class:`FabricError` for malformed names, with the message
    naming the offending grammar field.  Enforced grammar rules:

    * ``kind`` must be a known fabric kind (built-in or registered);
    * ``dims``, when present, requires a grid kind — ``ideal`` and
      ``xbar`` ignore topology by construction;
    * ``dims`` components must be positive and written without leading
      zeros (``mesh4x4``, never ``mesh04x4`` — names feed spec hashes).
    """
    stripped = name.strip()
    match = _NAME_PATTERN.match(stripped)
    if not match:
        lowered = stripped.lower()
        if lowered != stripped and _NAME_PATTERN.match(lowered):
            try:
                parse_fabric_name(lowered, known_kinds)
            except FabricError:
                pass  # the case-fixed name is itself illegal; no hint
            else:
                raise FabricError(
                    f"cannot parse fabric name {name!r}: kind field is "
                    f"lowercase — did you mean {lowered!r}?"
                )
        raise FabricError(
            f"cannot parse fabric name {name!r}: expected a fabric kind "
            f"({', '.join(known_kinds)}) with optional WxH grid dims, "
            f"e.g. 'ideal', 'xbar', 'mesh4x4', 'torus8x8'"
        )
    kind = match.group("kind")
    dims = match.group("dims")
    if kind not in known_kinds:
        hint = _KIND_HINTS.get(kind)
        if hint in known_kinds:
            raise FabricError(
                f"{name!r}: kind field {kind!r} is not canonical — did you "
                f"mean {hint!r}?"
            )
        raise FabricError(
            f"{name!r}: unknown fabric kind {kind!r}; choose from "
            f"{sorted(known_kinds)}"
        )
    if dims is None:
        return FabricSpec(name=stripped, kind=kind)
    if kind not in GRID_KINDS:
        raise FabricError(
            f"{name!r}: dims field {dims!r} requires a grid kind "
            f"({', '.join(GRID_KINDS)}) — {kind!r} ignores topology"
        )
    width_text, height_text = dims.split("x")
    width, height = int(width_text), int(height_text)
    for label, value, text in (("width", width, width_text), ("height", height, height_text)):
        if value <= 0:
            raise FabricError(f"{name!r}: dims field {label} must be positive")
        if text != str(value):
            raise FabricError(
                f"{name!r}: dims field must not have leading zeros "
                f"(write {width}x{height})"
            )
    return FabricSpec(name=stripped, kind=kind, width=width, height=height)
