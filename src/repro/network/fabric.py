"""Network fabric models: the abstract interface and the paper's ideal fabric.

Following the paper (Section 4.1), the *default* fabric ignores topology:
every message takes a fixed 100 processor cycles from injection at the
source NI to arrival at the destination NI.  That model is
:class:`IdealFabric` here; :class:`AbstractFabric` extracts the endpoint
registration, delivery bookkeeping and statistics every fabric shares, so
topology-aware models (:mod:`repro.network.topology`) plug in underneath
the unchanged NI devices.  End-point flow control is unchanged across
fabrics: a hardware sliding window of four outstanding network messages
per destination (:class:`SlidingWindow`), with acknowledgements returned
by the receiving NI when it accepts a message into its receive queue.

Fabrics are selected declaratively through ``MachineParams.fabric`` (see
:mod:`repro.network.fabricspec` for the topology grammar and
:mod:`repro.network.registry` for the kind registry).
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Optional

from repro.common.params import MachineParams
from repro.common.types import NetworkMessage
from repro.network.fabricspec import FabricSpec
from repro.sim import Counter, Samples, Signal, Simulator


class NetworkError(RuntimeError):
    """Raised on fabric misuse (unknown endpoints, bad messages)."""


class AbstractFabric(abc.ABC):
    """Point-to-point ordered message fabric: endpoints, delivery, stats.

    Subclasses implement the *timing* — :meth:`delivery_delay` for one
    network message and :meth:`ack_delay` for one hardware acknowledgement
    — and may keep whatever contention state the model needs (both hooks
    are called at injection time, in simulation-time order, so arithmetic
    link/port reservation is causally sound).  Delays must be whole
    processor cycles; the kernel rejects fractional event times.

    Every fabric preserves point-to-point ordering: for a fixed
    (source, destination) pair, delivery order equals injection order.
    The built-in models guarantee this structurally (fixed latency, or
    deterministic routes with FIFO per-link reservation).
    """

    #: Grammar kind implemented by this class (see fabricspec); set by
    #: subclasses and used by the registry and reporting.
    kind = "abstract"

    def __init__(self, sim: Simulator, params: MachineParams, spec: Optional[FabricSpec] = None):
        self.sim = sim
        self.params = params
        self.spec = spec
        self._endpoints: Dict[int, Callable[[NetworkMessage], None]] = {}
        self._ack_handlers: Dict[int, Callable[[int], None]] = {}
        self.stats = Counter()
        self.latency_samples = Samples()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def attach(
        self,
        node_id: int,
        on_message: Callable[[NetworkMessage], None],
        on_ack: Callable[[int], None],
    ) -> None:
        """Attach an NI endpoint.

        ``on_message(msg)`` is invoked when a network message arrives at this
        node; ``on_ack(source_node)`` when an acknowledgement from a prior
        send to ``source_node`` comes back.
        """
        if node_id in self._endpoints:
            raise NetworkError(f"node {node_id} already attached to fabric")
        self._endpoints[node_id] = on_message
        self._ack_handlers[node_id] = on_ack

    def detach(self, node_id: int) -> None:
        self._endpoints.pop(node_id, None)
        self._ack_handlers.pop(node_id, None)

    @property
    def node_ids(self):
        return tuple(sorted(self._endpoints))

    # ------------------------------------------------------------------
    # Timing model (the subclass contract)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def delivery_delay(self, message: NetworkMessage) -> int:
        """Cycles from injection now until ``message`` is fully delivered.

        Called once per message at injection time; a stateful model
        reserves its links/ports here.
        """

    @abc.abstractmethod
    def ack_delay(self, from_node: int, to_node: int) -> int:
        """Cycles for a hardware ack from ``from_node`` back to ``to_node``."""

    # ------------------------------------------------------------------
    # Message transport
    # ------------------------------------------------------------------
    def inject(self, message: NetworkMessage) -> None:
        """Inject a message; it arrives at the destination after the model's delay."""
        if message.dest not in self._endpoints:
            raise NetworkError(f"message to unattached node {message.dest}")
        if message.source not in self._endpoints:
            raise NetworkError(f"message from unattached node {message.source}")
        message.inject_time = self.sim.now
        self.stats.add("messages_injected")
        self.stats.add("payload_bytes", message.payload_bytes)
        self.sim.schedule_call(self.delivery_delay(message), self._deliver, (message,))

    def _deliver(self, message: NetworkMessage) -> None:
        message.deliver_time = self.sim.now
        self.stats.add("messages_delivered")
        self.latency_samples.record(message.deliver_time - message.inject_time)
        self._endpoints[message.dest](message)

    def send_ack(self, from_node: int, to_node: int) -> None:
        """Send a hardware-level acknowledgement from ``from_node`` back to
        ``to_node`` (the original sender)."""
        if to_node not in self._ack_handlers:
            raise NetworkError(f"ack to unattached node {to_node}")
        self.stats.add("acks_sent")
        self.sim.schedule_call(
            self.ack_delay(from_node, to_node), self._deliver_ack, (from_node, to_node)
        )

    def _deliver_ack(self, from_node: int, to_node: int) -> None:
        self.stats.add("acks_delivered")
        self._ack_handlers[to_node](from_node)

    # ------------------------------------------------------------------
    # Shared timing helpers
    # ------------------------------------------------------------------
    def wire_bytes(self, message: NetworkMessage) -> int:
        """Bytes of ``message`` actually moved by the fabric (header + payload)."""
        return self.params.network_header_bytes + message.payload_bytes

    def serialization_cycles(self, wire_bytes: int) -> int:
        """Cycles to stream ``wire_bytes`` through one link/port."""
        bw = self.params.fabric_link_bytes_per_cycle
        return max(1, -(-wire_bytes // bw))

    def describe(self) -> str:
        if self.spec is not None:
            return self.spec.describe()
        return f"{self.kind} fabric"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"


class IdealFabric(AbstractFabric):
    """The paper's fabric: fixed latency, topology ignored (Section 4.1).

    Every message — and every acknowledgement — takes exactly
    ``params.network_latency_cycles`` regardless of source, destination or
    load.  This is the default fabric and the one all paper goldens pin;
    its event schedule is bit-identical to the pre-refactor
    ``NetworkFabric``.
    """

    kind = "ideal"

    def delivery_delay(self, message: NetworkMessage) -> int:
        return self.params.network_latency_cycles

    def ack_delay(self, from_node: int, to_node: int) -> int:
        return self.params.network_latency_cycles


#: Historical name of the fixed-latency fabric, kept as an alias so direct
#: constructions (tests, notebooks, the legacy-kernel benchmark patch
#: points) keep working unchanged.
NetworkFabric = IdealFabric


class SlidingWindow:
    """Per-destination hardware sliding window at one sending NI.

    The paper allows up to four network messages in flight per destination
    before the sender must block waiting for acknowledgements.
    """

    def __init__(self, sim: Simulator, params: MachineParams, node_id: int):
        self.sim = sim
        self.params = params
        self.node_id = node_id
        self.window = params.sliding_window
        self._outstanding: Dict[int, int] = {}
        #: Fired whenever an ack frees a window slot (payload: destination).
        self.slot_freed = Signal(sim, name=f"ni{node_id}.window-freed")
        self.stats = Counter()

    def outstanding(self, dest: int) -> int:
        return self._outstanding.get(dest, 0)

    def can_send(self, dest: int) -> bool:
        return self.outstanding(dest) < self.window

    def reserve(self, dest: int) -> None:
        if not self.can_send(dest):
            raise NetworkError(
                f"node {self.node_id}: window to {dest} already full "
                f"({self.outstanding(dest)}/{self.window})"
            )
        self._outstanding[dest] = self.outstanding(dest) + 1
        self.stats.add("reservations")

    def on_ack(self, dest: int) -> None:
        count = self.outstanding(dest)
        if count <= 0:
            raise NetworkError(f"node {self.node_id}: spurious ack from {dest}")
        self._outstanding[dest] = count - 1
        self.stats.add("acks")
        self.slot_freed.fire(dest)

    def total_outstanding(self) -> int:
        return sum(self._outstanding.values())
