"""Network fabric model.

Following the paper (Section 4.1), network topology is ignored: every
message takes a fixed 100 processor cycles from injection at the source NI
to arrival at the destination NI.  End-point flow control is a hardware
sliding window of four outstanding network messages per destination;
acknowledgements are returned by the receiving NI when it accepts a message
into its receive queue and also take the fixed network latency.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.common.params import MachineParams
from repro.common.types import NetworkMessage
from repro.sim import Counter, Samples, Signal, Simulator


class NetworkError(RuntimeError):
    """Raised on fabric misuse (unknown endpoints, bad messages)."""


class NetworkFabric:
    """Fixed-latency, point-to-point ordered message fabric."""

    def __init__(self, sim: Simulator, params: MachineParams):
        self.sim = sim
        self.params = params
        self._endpoints: Dict[int, Callable[[NetworkMessage], None]] = {}
        self._ack_handlers: Dict[int, Callable[[int], None]] = {}
        self.stats = Counter()
        self.latency_samples = Samples()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def attach(
        self,
        node_id: int,
        on_message: Callable[[NetworkMessage], None],
        on_ack: Callable[[int], None],
    ) -> None:
        """Attach an NI endpoint.

        ``on_message(msg)`` is invoked when a network message arrives at this
        node; ``on_ack(source_node)`` when an acknowledgement from a prior
        send to ``source_node`` comes back.
        """
        if node_id in self._endpoints:
            raise NetworkError(f"node {node_id} already attached to fabric")
        self._endpoints[node_id] = on_message
        self._ack_handlers[node_id] = on_ack

    def detach(self, node_id: int) -> None:
        self._endpoints.pop(node_id, None)
        self._ack_handlers.pop(node_id, None)

    @property
    def node_ids(self):
        return tuple(sorted(self._endpoints))

    # ------------------------------------------------------------------
    # Message transport
    # ------------------------------------------------------------------
    def inject(self, message: NetworkMessage) -> None:
        """Inject a message; it arrives at the destination after the fixed latency."""
        if message.dest not in self._endpoints:
            raise NetworkError(f"message to unattached node {message.dest}")
        if message.source not in self._endpoints:
            raise NetworkError(f"message from unattached node {message.source}")
        message.inject_time = self.sim.now
        self.stats.add("messages_injected")
        self.stats.add("payload_bytes", message.payload_bytes)
        self.sim.schedule_call(self.params.network_latency_cycles, self._deliver, (message,))

    def _deliver(self, message: NetworkMessage) -> None:
        message.deliver_time = self.sim.now
        self.stats.add("messages_delivered")
        self.latency_samples.record(message.deliver_time - message.inject_time)
        self._endpoints[message.dest](message)

    def send_ack(self, from_node: int, to_node: int) -> None:
        """Send a hardware-level acknowledgement from ``from_node`` back to
        ``to_node`` (the original sender)."""
        if to_node not in self._ack_handlers:
            raise NetworkError(f"ack to unattached node {to_node}")
        self.stats.add("acks_sent")
        self.sim.schedule_call(
            self.params.network_latency_cycles, self._deliver_ack, (from_node, to_node)
        )

    def _deliver_ack(self, from_node: int, to_node: int) -> None:
        self.stats.add("acks_delivered")
        self._ack_handlers[to_node](from_node)


class SlidingWindow:
    """Per-destination hardware sliding window at one sending NI.

    The paper allows up to four network messages in flight per destination
    before the sender must block waiting for acknowledgements.
    """

    def __init__(self, sim: Simulator, params: MachineParams, node_id: int):
        self.sim = sim
        self.params = params
        self.node_id = node_id
        self.window = params.sliding_window
        self._outstanding: Dict[int, int] = {}
        #: Fired whenever an ack frees a window slot (payload: destination).
        self.slot_freed = Signal(sim, name=f"ni{node_id}.window-freed")
        self.stats = Counter()

    def outstanding(self, dest: int) -> int:
        return self._outstanding.get(dest, 0)

    def can_send(self, dest: int) -> bool:
        return self.outstanding(dest) < self.window

    def reserve(self, dest: int) -> None:
        if not self.can_send(dest):
            raise NetworkError(
                f"node {self.node_id}: window to {dest} already full "
                f"({self.outstanding(dest)}/{self.window})"
            )
        self._outstanding[dest] = self.outstanding(dest) + 1
        self.stats.add("reservations")

    def on_ack(self, dest: int) -> None:
        count = self.outstanding(dest)
        if count <= 0:
            raise NetworkError(f"node {self.node_id}: spurious ack from {dest}")
        self._outstanding[dest] = count - 1
        self.stats.add("acks")
        self.slot_freed.fire(dest)

    def total_outstanding(self) -> int:
        return sum(self._outstanding.values())
