"""Topology-aware fabric models: crossbar and 2D mesh/torus.

These models open the axis the paper deliberately idealizes (Section 4.1):
instead of a fixed 100-cycle latency for every message, a message now pays
for the *path* it takes and for the traffic it shares that path with.
All contention is resolved arithmetically at injection time — fabrics see
injections in simulation-time order, so reserving a link's next-free time
with ``max(now, busy)`` is causally sound and costs no extra kernel
events (the spin-wait elision machinery is unaffected: deliveries remain
ordinary scheduled events, whatever their latency).

Common modelling choices, shared via :class:`.fabric.AbstractFabric`:

* Messages are cut-through streamed: a message of ``w`` wire bytes
  occupies each link/port it crosses for
  ``ser = ceil(w / fabric_link_bytes_per_cycle)`` cycles, and its tail
  arrives ``ser`` cycles after its head.
* Acknowledgements are header-sized messages taking the same path in the
  reverse direction (links are full-duplex: the two directions of a
  channel are independent resources).
* Per-pair ordering is preserved: routes are deterministic
  (dimension-order on the grids) and link reservation is FIFO, so a later
  injection to the same destination can never overtake an earlier one.

Statistics: on top of the base fabric counters, these models count
``hops`` (links crossed) and ``contention_cycles`` (cycles spent queued
for busy links/ports), so experiments can report *why* a topology is slow.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.params import MachineParams
from repro.common.types import NetworkMessage
from repro.network.fabric import AbstractFabric
from repro.network.fabricspec import FabricSpec
from repro.sim import Simulator


class CrossbarFabric(AbstractFabric):
    """A full crossbar: contention only at the endpoint ports.

    Every source has a dedicated injection port and every destination a
    dedicated ejection port; any pair can communicate without interfering
    with other pairs, but a node streaming many messages serializes on its
    own ports.  The crossbar itself is flown through in
    ``params.network_latency_cycles`` (the same wire-latency knob the
    ideal fabric uses), so an uncontended crossbar message costs exactly
    ``latency + serialization``.
    """

    kind = "xbar"

    def __init__(self, sim: Simulator, params: MachineParams, spec: Optional[FabricSpec] = None):
        super().__init__(sim, params, spec)
        self._out_free: Dict[int, int] = {}
        self._in_free: Dict[int, int] = {}

    def _port_transit(self, source: int, dest: int, wire_bytes: int) -> int:
        """Reserve both ports; return the delay until the tail is delivered."""
        now = self.sim.now
        ser = self.serialization_cycles(wire_bytes)
        depart = max(now, self._out_free.get(source, 0))
        self._out_free[source] = depart + ser
        head_arrival = depart + self.params.network_latency_cycles
        accept = max(head_arrival, self._in_free.get(dest, 0))
        self._in_free[dest] = accept + ser
        contention = (depart - now) + (accept - head_arrival)
        if contention:
            self.stats.add("contention_cycles", contention)
        return accept + ser - now

    def delivery_delay(self, message: NetworkMessage) -> int:
        return self._port_transit(message.source, message.dest, self.wire_bytes(message))

    def ack_delay(self, from_node: int, to_node: int) -> int:
        return self._port_transit(from_node, to_node, self.params.network_header_bytes)


class MeshFabric(AbstractFabric):
    """A 2D mesh with dimension-order (X-then-Y) routing.

    Nodes are laid out row-major on a ``width x height`` grid (node ``i``
    sits at ``(i % width, i // width)``).  A message crosses one link per
    hop, paying ``params.fabric_hop_cycles`` of router-plus-wire latency
    per hop, and reserves each directed link for its serialization time —
    two messages crossing the same link in the same direction queue; the
    opposite direction is an independent resource.  The grid shape comes
    from the parsed :class:`~repro.network.fabricspec.FabricSpec`
    (``mesh4x4``), or a near-square factorization of ``num_nodes`` for a
    bare ``mesh``.
    """

    kind = "mesh"
    #: Grid edges do not wrap; :class:`TorusFabric` flips this.
    wraps = False

    def __init__(self, sim: Simulator, params: MachineParams, spec: Optional[FabricSpec] = None):
        super().__init__(sim, params, spec)
        shape_spec = spec if spec is not None and spec.is_grid else FabricSpec(self.kind, self.kind)
        self.width, self.height = shape_spec.resolve_dims(params.num_nodes)
        self.hop_cycles = params.fabric_hop_cycles
        #: Next-free cycle per directed link ``(from_node, to_node)``.
        self._link_free: Dict[Tuple[int, int], int] = {}
        #: Route memo: paths are deterministic and pairs repeat constantly.
        self._routes: Dict[Tuple[int, int], Tuple[Tuple[int, int], ...]] = {}

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def coords(self, node: int) -> Tuple[int, int]:
        return node % self.width, node // self.width

    def _axis_step(self, position: int, target: int, size: int) -> int:
        """The +-1 step from ``position`` toward ``target`` along one axis."""
        if target == position:
            return 0
        return 1 if target > position else -1

    def route(self, source: int, dest: int) -> Tuple[Tuple[int, int], ...]:
        """The directed links a message crosses, in order (dimension-order)."""
        key = (source, dest)
        path = self._routes.get(key)
        if path is None:
            links: List[Tuple[int, int]] = []
            x, y = self.coords(source)
            dest_x, dest_y = self.coords(dest)
            node = source
            while x != dest_x:
                x = (x + self._axis_step(x, dest_x, self.width)) % self.width
                nxt = y * self.width + x
                links.append((node, nxt))
                node = nxt
            while y != dest_y:
                y = (y + self._axis_step(y, dest_y, self.height)) % self.height
                nxt = y * self.width + x
                links.append((node, nxt))
                node = nxt
            path = self._routes[key] = tuple(links)
        return path

    def hops(self, source: int, dest: int) -> int:
        return len(self.route(source, dest))

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def _grid_transit(self, source: int, dest: int, wire_bytes: int) -> int:
        """Walk the route reserving links; return delay until tail delivery."""
        now = self.sim.now
        ser = self.serialization_cycles(wire_bytes)
        hop = self.hop_cycles
        head = now
        path = self.route(source, dest)
        contention = 0
        link_free = self._link_free
        for link in path:
            depart = max(head, link_free.get(link, 0))
            link_free[link] = depart + ser
            contention += depart - head
            head = depart + hop
        if not path:  # self-send: loop back through the local router once
            head = now + hop
        self.stats.add("hops", len(path))
        if contention:
            self.stats.add("contention_cycles", contention)
        return head + ser - now

    def delivery_delay(self, message: NetworkMessage) -> int:
        return self._grid_transit(message.source, message.dest, self.wire_bytes(message))

    def ack_delay(self, from_node: int, to_node: int) -> int:
        return self._grid_transit(from_node, to_node, self.params.network_header_bytes)

    def describe(self) -> str:
        return (
            f"{self.kind}{self.width}x{self.height}: dimension-order routing, "
            f"{self.hop_cycles} cycles/hop, "
            f"{self.params.fabric_link_bytes_per_cycle} B/cycle links"
        )


class TorusFabric(MeshFabric):
    """A 2D torus: a mesh whose rows and columns wrap around.

    Dimension-order routing picks the shorter way around each ring (ties
    break toward increasing coordinates), halving worst-case hop counts
    and removing the mesh's edge/center asymmetry.
    """

    kind = "torus"
    wraps = True

    def _axis_step(self, position: int, target: int, size: int) -> int:
        if target == position:
            return 0
        forward = (target - position) % size
        backward = (position - target) % size
        return 1 if forward <= backward else -1
