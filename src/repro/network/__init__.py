"""Network substrate: fixed-latency fabric and sliding-window flow control."""

from repro.network.fabric import NetworkError, NetworkFabric, SlidingWindow

__all__ = ["NetworkFabric", "SlidingWindow", "NetworkError"]
