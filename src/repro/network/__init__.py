"""Network substrate: pluggable fabrics and sliding-window flow control.

The paper's fixed-latency model is :class:`IdealFabric` (the default,
also reachable under its historical name :class:`NetworkFabric`);
topology-aware crossbar/mesh/torus models plug in through the fabric
registry, selected by ``MachineParams.fabric`` (grammar in
:mod:`repro.network.fabricspec`).
"""

from repro.network.fabric import (
    AbstractFabric,
    IdealFabric,
    NetworkError,
    NetworkFabric,
    SlidingWindow,
)
from repro.network.fabricspec import FabricError, FabricSpec, parse_fabric_name
from repro.network.registry import (
    FabricInfo,
    available_fabrics,
    create_fabric,
    fabric_class,
    parse_fabric,
    register_fabric,
    unregister_fabric,
)
from repro.network.topology import CrossbarFabric, MeshFabric, TorusFabric

__all__ = [
    "AbstractFabric",
    "IdealFabric",
    "NetworkFabric",
    "CrossbarFabric",
    "MeshFabric",
    "TorusFabric",
    "NetworkError",
    "FabricError",
    "FabricSpec",
    "FabricInfo",
    "SlidingWindow",
    "parse_fabric_name",
    "parse_fabric",
    "fabric_class",
    "register_fabric",
    "unregister_fabric",
    "available_fabrics",
    "create_fabric",
]
