"""Synthetic traffic generators as first-class workloads.

The paper's five macro skeletons are 1996 applications; ROADMAP item 3
asks whether its coherent-NI conclusions generalize to *wider* traffic.
This package answers with two families of seeded, deterministic pattern
workloads, registered under the ``traffic`` and ``fine-grain`` tags and
runnable through ``ExperimentSpec(kind="traffic", workload=<pattern>)``:

* **synthetic contention patterns** (:mod:`repro.traffic.synthetic`) —
  ``uniform`` random, ``hotspot``, ``transpose`` permutation and
  ``bursty`` on/off, the classic interconnect stress set that hammers
  mesh/torus link contention in ways the paper skeletons cannot;
* **modern fine-grain patterns** (:mod:`repro.traffic.finegrain`) —
  ``allreduce`` recursive doubling, ``halo`` exchange, ``psrpc``
  parameter-server RPC and ``kv`` key-value request/response.

Every pattern derives from :class:`repro.traffic.base.TrafficWorkload`,
which turns a per-node *plan* of paced sends and expected arrivals into
deterministic node programs (same seed, same messages — serially, under
``--jobs`` and through the experiment service).
"""

from repro.traffic.base import Phase, Send, TrafficWorkload
from repro.traffic.finegrain import (
    AllreduceTraffic,
    HaloExchangeTraffic,
    KeyValueTraffic,
    ParameterServerTraffic,
)
from repro.traffic.measure import run_traffic_point
from repro.traffic.synthetic import (
    BurstyTraffic,
    HotspotTraffic,
    TransposeTraffic,
    UniformRandomTraffic,
)

__all__ = [
    "Phase",
    "Send",
    "TrafficWorkload",
    "UniformRandomTraffic",
    "HotspotTraffic",
    "TransposeTraffic",
    "BurstyTraffic",
    "AllreduceTraffic",
    "HaloExchangeTraffic",
    "ParameterServerTraffic",
    "KeyValueTraffic",
    "run_traffic_point",
]
