"""Phase-based base class for synthetic traffic workloads.

A traffic pattern is described declaratively: :meth:`TrafficWorkload.plan`
returns, per node, a list of :class:`Phase`\\ s — each a tuple of paced
:class:`Send`\\ s followed by a count of data-message arrivals the node
waits for before moving on.  The base class turns that plan into node
programs over the messaging layer: one counting handler for plain data
messages, one auto-reply handler for request/response traffic, blocking
waits through the spin-elision machinery, and a closing barrier so every
node keeps serving requests until the whole machine is done.

Keeping the pattern *data* and the execution *shared* is what makes every
pattern deterministic by construction: all randomness is drawn from the
workload's seeded RNG while building the plan, so the same seed produces
the same message stream serially, under ``--jobs`` (each point runs whole
inside one worker) and through the experiment service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence, Tuple

from repro.apps.workload import Workload, poll_until
from repro.node.machine import Machine

#: Handler name for plain data messages (counted by the receiver).
DATA_HANDLER = "traffic_data"
#: Handler name for request messages (answered with a data message of the
#: requested size, like the macro skeletons' request/response pairs).
REQUEST_HANDLER = "traffic_request"

#: Reply size used when a request does not name one.
DEFAULT_REPLY_BYTES = 8


@dataclass(frozen=True)
class Send:
    """One paced send in a node's plan.

    ``gap`` cycles of compute are charged before the send issues (pacing /
    modelled computation).  ``dest=None`` makes a pure compute slot.  When
    ``request`` is set the message goes to the auto-reply handler and the
    destination answers with a ``reply_bytes`` data message.
    """

    dest: Optional[int]
    user_bytes: int = 0
    gap: int = 0
    request: bool = False
    reply_bytes: int = DEFAULT_REPLY_BYTES


@dataclass(frozen=True)
class Phase:
    """A batch of sends followed by a wait for ``expect`` data arrivals."""

    sends: Tuple[Send, ...]
    expect: int = 0


class TrafficWorkload(Workload):
    """Base class for synthetic traffic patterns (see module docstring)."""

    #: Pattern name as registered (subclasses set it).
    name = "traffic"
    key_communication = "Synthetic traffic"
    paper_input = "synthetic pattern"

    # ------------------------------------------------------------------
    def plan(self, num_nodes: int) -> List[List[Phase]]:
        """One phase list per node.  Subclasses implement the pattern."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _validated_plan(self, num_nodes: int) -> List[List[Phase]]:
        plans = self.plan(num_nodes)
        if len(plans) != num_nodes:
            raise ValueError(
                f"{self.name}: plan covers {len(plans)} nodes, machine has {num_nodes}"
            )
        for node, phases in enumerate(plans):
            for phase in phases:
                for send in phase.sends:
                    if send.dest is None:
                        continue
                    if not 0 <= send.dest < num_nodes or send.dest == node:
                        raise ValueError(
                            f"{self.name}: node {node} sends to invalid dest {send.dest}"
                        )
                    if send.user_bytes <= 0:
                        raise ValueError(
                            f"{self.name}: node {node} sends {send.user_bytes} bytes"
                        )
        return plans

    def programs(self, machine: Machine) -> Sequence[Generator]:
        num_nodes = len(machine.nodes)
        plans = self._validated_plan(num_nodes)
        received = [0] * num_nodes

        def make_data_handler(proc_id: int):
            def handler(ml, source, nbytes, body):
                received[proc_id] += 1
                return None

            return handler

        def request_handler(ml, source, nbytes, body):
            reply_bytes = int(body[0]) if body else DEFAULT_REPLY_BYTES
            return ml.send_active_message(source, DATA_HANDLER, reply_bytes)

        programs = []
        for proc_id, ml in enumerate(machine.messaging):
            ml.register_handler(DATA_HANDLER, make_data_handler(proc_id))
            ml.register_handler(REQUEST_HANDLER, request_handler)

            def program(proc_id=proc_id, ml=ml, phases=plans[proc_id]):
                target = 0
                for phase in phases:
                    for send in phase.sends:
                        if send.gap > 0:
                            yield from ml.processor.compute(send.gap)
                        if send.dest is None:
                            continue
                        if send.request:
                            yield from ml.send_active_message(
                                send.dest,
                                REQUEST_HANDLER,
                                send.user_bytes,
                                (send.reply_bytes,),
                            )
                        else:
                            yield from ml.send_active_message(
                                send.dest, DATA_HANDLER, send.user_bytes
                            )
                    target += phase.expect
                    if phase.expect:
                        yield from poll_until(
                            ml, lambda t=target, p=proc_id: received[p] >= t
                        )
                # Nodes with nothing left to do keep polling inside the
                # barrier, so they still serve late requests from peers.
                yield from ml.barrier()

            programs.append(program())
        return programs

    # ------------------------------------------------------------------
    # Helpers shared by the patterns
    # ------------------------------------------------------------------
    @staticmethod
    def near_square_grid(num_nodes: int) -> Tuple[int, int]:
        """The most square ``rows x cols`` factorisation of ``num_nodes``."""
        rows = int(num_nodes**0.5)
        while rows > 1 and num_nodes % rows:
            rows -= 1
        return rows, num_nodes // rows

    def describe_input(self) -> str:
        return f"{self.paper_input} (scale={self.scale}, seed={self.seed})"
