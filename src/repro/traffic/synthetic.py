"""Classic synthetic interconnect stress patterns.

The four canonical generators of the interconnection-network literature,
expressed as :class:`~repro.traffic.base.TrafficWorkload` plans: uniform
random, hotspot, transpose permutation and bursty on/off.  They stress
mesh/torus link contention, endpoint queue depth and sliding-window
backpressure in ways the paper's application skeletons cannot, which is
exactly what makes them useful for checking whether the CNI conclusions
generalize beyond the 1996 workload set.
"""

from __future__ import annotations

from typing import List

from repro.apps.registry import register_workload
from repro.traffic.base import Phase, Send, TrafficWorkload


def _uniform_dest(rng, node: int, num_nodes: int) -> int:
    """A uniformly random destination excluding ``node`` itself."""
    dest = rng.randrange(num_nodes - 1)
    return dest + 1 if dest >= node else dest


@register_workload(tags=("traffic",))
class UniformRandomTraffic(TrafficWorkload):
    """Uniform-random traffic: every node sends paced messages to
    uniformly random peers — the baseline load-balance stressor."""

    name = "uniform"
    key_communication = "Uniform random"

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 12345,
        messages_per_node: int = 48,
        message_bytes: int = 64,
        gap_cycles: int = 60,
    ):
        super().__init__(scale=scale, seed=seed)
        self.messages_per_node = self.scaled(messages_per_node, scale)
        self.message_bytes = int(message_bytes)
        self.gap_cycles = int(gap_cycles)

    def plan(self, num_nodes: int) -> List[List[Phase]]:
        rng = self.rng()
        sends: List[List[Send]] = [[] for _ in range(num_nodes)]
        expect = [0] * num_nodes
        for node in range(num_nodes):
            for _ in range(self.messages_per_node):
                dest = _uniform_dest(rng, node, num_nodes)
                sends[node].append(
                    Send(dest=dest, user_bytes=self.message_bytes, gap=self.gap_cycles)
                )
                expect[dest] += 1
        return [[Phase(tuple(sends[n]), expect[n])] for n in range(num_nodes)]


@register_workload(tags=("traffic",))
class HotspotTraffic(TrafficWorkload):
    """Hotspot traffic: a fraction of all messages converge on one hot
    node, saturating its receive path (queue overflow, window stalls)."""

    name = "hotspot"
    key_communication = "Hotspot convergence"

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 12345,
        messages_per_node: int = 48,
        message_bytes: int = 64,
        gap_cycles: int = 60,
        hot_fraction: float = 0.4,
        hot_node: int = 0,
    ):
        super().__init__(scale=scale, seed=seed)
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")
        self.messages_per_node = self.scaled(messages_per_node, scale)
        self.message_bytes = int(message_bytes)
        self.gap_cycles = int(gap_cycles)
        self.hot_fraction = float(hot_fraction)
        self.hot_node = int(hot_node)

    def plan(self, num_nodes: int) -> List[List[Phase]]:
        rng = self.rng()
        hot = self.hot_node % num_nodes
        sends: List[List[Send]] = [[] for _ in range(num_nodes)]
        expect = [0] * num_nodes
        for node in range(num_nodes):
            for _ in range(self.messages_per_node):
                if node != hot and rng.random() < self.hot_fraction:
                    dest = hot
                else:
                    dest = _uniform_dest(rng, node, num_nodes)
                sends[node].append(
                    Send(dest=dest, user_bytes=self.message_bytes, gap=self.gap_cycles)
                )
                expect[dest] += 1
        return [[Phase(tuple(sends[n]), expect[n])] for n in range(num_nodes)]


@register_workload(tags=("traffic",))
class TransposeTraffic(TrafficWorkload):
    """Transpose-permutation traffic: node (r, c) of the near-square grid
    streams to its transpose partner (c, r) — the worst case for
    dimension-ordered mesh routing, where every flow crosses the
    diagonal."""

    name = "transpose"
    key_communication = "Matrix transpose"

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 12345,
        messages_per_node: int = 24,
        message_bytes: int = 256,
        gap_cycles: int = 20,
    ):
        super().__init__(scale=scale, seed=seed)
        self.messages_per_node = self.scaled(messages_per_node, scale)
        self.message_bytes = int(message_bytes)
        self.gap_cycles = int(gap_cycles)

    def plan(self, num_nodes: int) -> List[List[Phase]]:
        rows, cols = self.near_square_grid(num_nodes)
        # Index i linearised over rows x cols maps to the same (r, c) cell
        # of the transposed cols x rows linearisation: a true permutation
        # of 0..n-1 for any factorisation, the classic transpose when the
        # grid is square.  Diagonal nodes (partner == self) idle.
        expect = [0] * num_nodes
        partners = []
        for node in range(num_nodes):
            r, c = divmod(node, cols)
            partner = c * rows + r
            partners.append(partner)
            if partner != node:
                expect[partner] += self.messages_per_node
        plans: List[List[Phase]] = []
        for node in range(num_nodes):
            sends = []
            if partners[node] != node:
                sends = [
                    Send(
                        dest=partners[node],
                        user_bytes=self.message_bytes,
                        gap=self.gap_cycles,
                    )
                ] * self.messages_per_node
            plans.append([Phase(tuple(sends), expect[node])])
        return plans


@register_workload(tags=("traffic",))
class BurstyTraffic(TrafficWorkload):
    """Bursty on/off traffic: long silences punctuated by back-to-back
    bursts to random peers — stresses queue sizing and the sliding
    window far harder than the same load spread smoothly."""

    name = "bursty"
    key_communication = "On/off bursts"

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 12345,
        bursts: int = 6,
        burst_length: int = 12,
        message_bytes: int = 64,
        off_cycles: int = 4000,
    ):
        super().__init__(scale=scale, seed=seed)
        self.bursts = self.scaled(bursts, scale)
        self.burst_length = int(burst_length)
        self.message_bytes = int(message_bytes)
        self.off_cycles = int(off_cycles)

    def plan(self, num_nodes: int) -> List[List[Phase]]:
        rng = self.rng()
        sends: List[List[Send]] = [[] for _ in range(num_nodes)]
        expect = [0] * num_nodes
        for node in range(num_nodes):
            for burst in range(self.bursts):
                # Desynchronised off-periods: each burst waits a jittered
                # silence, then fires its messages back-to-back.
                gap = rng.randrange(self.off_cycles // 2, self.off_cycles + 1)
                for index in range(self.burst_length):
                    dest = _uniform_dest(rng, node, num_nodes)
                    sends[node].append(
                        Send(
                            dest=dest,
                            user_bytes=self.message_bytes,
                            gap=gap if index == 0 else 0,
                        )
                    )
                    expect[dest] += 1
        return [[Phase(tuple(sends[n]), expect[n])] for n in range(num_nodes)]
