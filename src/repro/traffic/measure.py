"""Measure hook for ``kind="traffic"`` experiment points.

Runs a registered traffic pattern on the machine a spec describes and
reports network-centric metrics: beyond the macro run's cycles and bus
occupancies, the fabric's delivered payload, the achieved message rate
and (on grid fabrics) hop and contention totals — the numbers a
contention study actually plots.
"""

from __future__ import annotations

from typing import Dict

#: Cycle budget used when a spec does not pin ``max_cycles`` (matches the
#: macro runner's default).
DEFAULT_MAX_CYCLES = 2_000_000_000

#: Simulated processor clock in cycles per microsecond (200 MHz, the
#: paper's machine; same constant the workload layer uses for display).
CYCLES_PER_US = 200.0


def run_traffic_point(spec) -> Dict[str, float]:
    """Execute one traffic point; pure function of the validated spec."""
    from repro.apps import create_workload
    from repro.node.machine import Machine

    import repro.traffic  # noqa: F401 — ensure patterns are registered

    machine = Machine.from_spec(spec)
    kwargs = dict(spec.workload_kwargs)
    kwargs.setdefault("seed", spec.resolved_seed())
    workload = create_workload(spec.workload, scale=spec.scale, **kwargs)
    max_cycles = spec.max_cycles if spec.max_cycles is not None else DEFAULT_MAX_CYCLES
    result = workload.run(machine, max_cycles=max_cycles)

    net = machine.network_stats()
    cycles = float(result.cycles)
    metrics: Dict[str, float] = {
        "cycles": cycles,
        "memory_bus_occupancy": float(result.memory_bus_occupancy),
        "io_bus_occupancy": float(result.io_bus_occupancy),
        "user_messages": float(result.user_messages),
        "network_messages": float(result.network_messages),
        "messages_delivered": float(net.get("messages_delivered", 0)),
        "payload_bytes": float(net.get("payload_bytes", 0)),
    }
    if cycles > 0:
        metrics["messages_per_kcycle"] = 1000.0 * metrics["network_messages"] / cycles
        # bytes/cycle x 200 cycles/us = bytes/us = MB/s.
        metrics["delivered_mbps"] = metrics["payload_bytes"] * CYCLES_PER_US / cycles
    for key in ("hops", "contention_cycles"):
        # Grid fabrics only: fault-free ideal/xbar results stay key-stable.
        if key in net:
            metrics[f"fabric_{key}"] = float(net[key])
    return metrics
