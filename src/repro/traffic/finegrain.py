"""Modern fine-grain communication patterns.

Four patterns from today's datacenter and ML stacks, expressed as
:class:`~repro.traffic.base.TrafficWorkload` plans: recursive-doubling
allreduce, 2-D halo exchange, parameter-server RPC and key-value
request/response.  They test whether the paper's 1996 CNI conclusions
generalize to fine-grain, latency-bound exchanges — the question the
ISCA interconnect retrospectives pose (see PAPERS.md).
"""

from __future__ import annotations

from typing import List

from repro.apps.registry import register_workload
from repro.traffic.base import Phase, Send, TrafficWorkload


@register_workload(tags=("fine-grain",))
class AllreduceTraffic(TrafficWorkload):
    """Recursive-doubling allreduce: log2(N) rounds of pairwise vector
    exchange with a strict round barrier — the collective at the heart
    of data-parallel training."""

    name = "allreduce"
    key_communication = "Recursive doubling"

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 12345,
        iterations: int = 4,
        vector_bytes: int = 1024,
        compute_cycles: int = 2000,
    ):
        super().__init__(scale=scale, seed=seed)
        self.iterations = self.scaled(iterations, scale)
        self.vector_bytes = int(vector_bytes)
        self.compute_cycles = int(compute_cycles)

    def plan(self, num_nodes: int) -> List[List[Phase]]:
        rounds = max(1, (num_nodes - 1).bit_length())
        plans: List[List[Phase]] = []
        for node in range(num_nodes):
            phases: List[Phase] = []
            for _iteration in range(self.iterations):
                first = True
                for rnd in range(rounds):
                    partner = node ^ (1 << rnd)
                    gap = self.compute_cycles if first else 0
                    first = False
                    if partner < num_nodes:
                        # Exchange: send my partial vector, wait for the
                        # partner's before the next round may start.
                        phases.append(
                            Phase(
                                (
                                    Send(
                                        dest=partner,
                                        user_bytes=self.vector_bytes,
                                        gap=gap,
                                    ),
                                ),
                                expect=1,
                            )
                        )
                    elif gap:
                        # Non-power-of-two sizes: idle round, still compute.
                        phases.append(Phase((Send(dest=None, gap=gap),), expect=0))
            plans.append(phases)
        return plans


@register_workload(tags=("fine-grain",))
class HaloExchangeTraffic(TrafficWorkload):
    """2-D halo exchange: each node computes, then trades boundary strips
    with its four periodic grid neighbours every iteration — the
    stencil-code staple."""

    name = "halo"
    key_communication = "Near-neighbour halo"

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 12345,
        iterations: int = 4,
        halo_bytes: int = 512,
        compute_cycles: int = 8000,
    ):
        super().__init__(scale=scale, seed=seed)
        self.iterations = self.scaled(iterations, scale)
        self.halo_bytes = int(halo_bytes)
        self.compute_cycles = int(compute_cycles)

    def plan(self, num_nodes: int) -> List[List[Phase]]:
        rows, cols = self.near_square_grid(num_nodes)
        neighbours: List[List[int]] = []
        for node in range(num_nodes):
            r, c = divmod(node, cols)
            around = {
                ((r + dr) % rows) * cols + (c + dc) % cols
                for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1))
            }
            around.discard(node)
            # Periodic wrap makes the neighbour relation symmetric, so
            # len(around) is also exactly how many strips arrive per
            # iteration.
            neighbours.append(sorted(around))
        plans: List[List[Phase]] = []
        for node in range(num_nodes):
            phases = []
            for _iteration in range(self.iterations):
                sends = tuple(
                    Send(
                        dest=nb,
                        user_bytes=self.halo_bytes,
                        gap=self.compute_cycles if index == 0 else 0,
                    )
                    for index, nb in enumerate(neighbours[node])
                )
                if not sends:
                    sends = (Send(dest=None, gap=self.compute_cycles),)
                phases.append(Phase(sends, expect=len(neighbours[node])))
            plans.append(phases)
        return plans


@register_workload(tags=("fine-grain",))
class ParameterServerTraffic(TrafficWorkload):
    """Parameter-server RPC: workers push gradients to server nodes and
    block on the pulled parameters each step — an incast with a built-in
    round-trip dependency."""

    name = "psrpc"
    key_communication = "PS push/pull RPC"

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 12345,
        steps: int = 6,
        servers: int = 1,
        push_bytes: int = 512,
        pull_bytes: int = 1024,
        compute_cycles: int = 4000,
    ):
        super().__init__(scale=scale, seed=seed)
        if servers < 1:
            raise ValueError("psrpc needs at least one server node")
        self.steps = self.scaled(steps, scale)
        self.servers = int(servers)
        self.push_bytes = int(push_bytes)
        self.pull_bytes = int(pull_bytes)
        self.compute_cycles = int(compute_cycles)

    def plan(self, num_nodes: int) -> List[List[Phase]]:
        servers = min(self.servers, num_nodes - 1)
        plans: List[List[Phase]] = []
        for node in range(num_nodes):
            if node < servers:
                # Servers only serve: the auto-reply handler answers pulls
                # while the node sits in the closing barrier.
                plans.append([])
                continue
            phases = []
            for step in range(self.steps):
                server = (node + step) % servers
                phases.append(
                    Phase(
                        (
                            Send(
                                dest=server,
                                user_bytes=self.push_bytes,
                                gap=self.compute_cycles,
                                request=True,
                                reply_bytes=self.pull_bytes,
                            ),
                        ),
                        expect=1,
                    )
                )
            plans.append(phases)
        return plans


@register_workload(tags=("fine-grain",))
class KeyValueTraffic(TrafficWorkload):
    """Key-value request/response: every node is client and server at
    once, issuing small skewed-popularity GETs and answering peers'
    requests with value-sized replies."""

    name = "kv"
    key_communication = "KV GET/reply"

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 12345,
        requests_per_node: int = 32,
        key_bytes: int = 16,
        value_bytes: int = 128,
        hot_fraction: float = 0.2,
        gap_cycles: int = 120,
    ):
        super().__init__(scale=scale, seed=seed)
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")
        self.requests_per_node = self.scaled(requests_per_node, scale)
        self.key_bytes = int(key_bytes)
        self.value_bytes = int(value_bytes)
        self.hot_fraction = float(hot_fraction)
        self.gap_cycles = int(gap_cycles)

    def plan(self, num_nodes: int) -> List[List[Phase]]:
        rng = self.rng()
        plans: List[List[Phase]] = []
        for node in range(num_nodes):
            sends = []
            for _ in range(self.requests_per_node):
                if rng.random() < self.hot_fraction:
                    owner = 0  # hot key's home
                else:
                    owner = rng.randrange(num_nodes)
                if owner == node:
                    owner = (owner + 1) % num_nodes
                sends.append(
                    Send(
                        dest=owner,
                        user_bytes=self.key_bytes,
                        gap=self.gap_cycles,
                        request=True,
                        reply_bytes=self.value_bytes,
                    )
                )
            # Wait for all replies; requests from peers are served by the
            # handler while polling (and inside the closing barrier).
            plans.append([Phase(tuple(sends), expect=len(sends))])
        return plans
