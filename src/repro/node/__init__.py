"""Node and machine assembly: processors, caches, buses, NIs, fabric."""

from repro.node.machine import Machine, WorkloadHangError
from repro.node.node import DRAM_ALLOC_OFFSET_BLOCKS, Node, NodeConfig, NodeConfigError
from repro.node.processor import Processor

__all__ = [
    "Machine",
    "WorkloadHangError",
    "Node",
    "NodeConfig",
    "NodeConfigError",
    "DRAM_ALLOC_OFFSET_BLOCKS",
    "Processor",
]
