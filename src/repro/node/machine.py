"""The simulated parallel machine: N nodes plus the network fabric."""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Sequence, Union

from repro.common.params import DEFAULT_PARAMS, MachineParams
from repro.common.types import BusKind
from repro.msglayer.messaging import MessagingLayer
from repro.network.registry import create_fabric
from repro.node.node import Node, NodeConfig
from repro.sim import Simulator, Watchdog

# Re-exported from the kernel's watchdog module (historical home); the
# structured subclass SimulationHangError is caught by existing
# ``except WorkloadHangError`` call sites.
from repro.sim.watchdog import SimulationHangError, WorkloadHangError  # noqa: F401


class Machine:
    """A 16-node (by default) parallel machine built from :class:`Node`s."""

    def __init__(
        self,
        params: Optional[MachineParams] = None,
        node_config: Optional[NodeConfig] = None,
        node_configs: Optional[Sequence[NodeConfig]] = None,
        num_nodes: Optional[int] = None,
        simulator: Optional[Simulator] = None,
    ):
        base_params = params or DEFAULT_PARAMS
        if num_nodes is not None:
            base_params = base_params.with_overrides(num_nodes=num_nodes)
        self.params = base_params.validate()
        # An injected kernel (e.g. the instrumented/shuffled simulators of
        # repro.analysis) must be pristine: reusing one that already ran
        # would splice two machines' event streams together.
        if simulator is not None and (simulator.now != 0 or simulator.event_count != 0):
            raise ValueError("injected simulator has already executed events")
        self.sim = simulator if simulator is not None else Simulator()
        self.fabric = create_fabric(self.sim, self.params)
        if self.params.faults:
            # Deterministic fault injection: wrap whatever fabric the
            # registry built (the wrapper shares the inner fabric's stats,
            # so network_stats() is unchanged by a zero-rate plan).
            from repro.faults import wrap_fabric

            self.fabric = wrap_fabric(
                self.fabric, self.params.faults, seed=self.params.fault_seed
            )

        if node_configs is not None:
            if len(node_configs) != self.params.num_nodes:
                raise ValueError(
                    f"expected {self.params.num_nodes} node configs, got {len(node_configs)}"
                )
            configs = list(node_configs)
        else:
            configs = [node_config or NodeConfig() for _ in range(self.params.num_nodes)]

        self.nodes: List[Node] = [
            Node(self.sim, node_id, self.params, self.fabric, config)
            for node_id, config in enumerate(configs)
        ]
        self.messaging: List[MessagingLayer] = [
            MessagingLayer(
                self.sim,
                node.node_id,
                node.processor,
                node.ni,
                self.params,
                node.dram_allocator,
            )
            for node in self.nodes
        ]
        for layer in self.messaging:
            layer.num_nodes = len(self.nodes)
        self._started = False
        #: Kernel-throughput dict of the last ``run_programs(profile=True)``.
        self.last_profile: Optional[Dict[str, float]] = None

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        ni_name: str = "CNI16Qm",
        bus: Union[BusKind, str] = BusKind.MEMORY,
        num_nodes: int = 16,
        snarfing: bool = False,
        params: Optional[MachineParams] = None,
        ni_kwargs: Optional[Dict] = None,
        simulator: Optional[Simulator] = None,
    ) -> "Machine":
        """Build a homogeneous machine with the given NI on the given bus."""
        bus_kind = bus if isinstance(bus, BusKind) else BusKind(bus)
        # Validate eagerly so unknown devices, illegal bus placements and
        # unsupported ni_kwargs fail before any node is assembled.
        config = NodeConfig(
            ni_name=ni_name,
            ni_bus=bus_kind,
            snarfing=snarfing,
            ni_kwargs=dict(ni_kwargs or {}),
        ).validate()
        return cls(
            params=params, node_config=config, num_nodes=num_nodes, simulator=simulator
        )

    @classmethod
    def from_spec(cls, spec, simulator: Optional[Simulator] = None) -> "Machine":
        """Build the machine an :class:`repro.api.ExperimentSpec` describes.

        This is the counterpart of :meth:`describe`: a declarative spec in,
        a machine out.  Only the machine-shaped fields are consulted
        (``device``, ``bus``, ``num_nodes``, ``snarfing``, ``ni_kwargs``
        and the ``params`` overrides); measurement fields such as
        ``message_bytes`` or ``workload`` are the runner's concern.
        """
        # spec.machine_params() merges the spec's node count into the
        # overrides before validation, so shape-dependent parameters (an
        # explicit grid fabric like "torus2x2") validate against the
        # machine being built, not the default 16-node shape.
        machine_params = spec.machine_params()
        return cls.build(
            spec.device,
            spec.bus,
            num_nodes=spec.num_nodes,
            snarfing=spec.snarfing,
            params=machine_params,
            ni_kwargs=dict(getattr(spec, "ni_kwargs", {}) or {}),
            simulator=simulator,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for node in self.nodes:
            node.start()

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        self.start()
        return self.sim.run(until=until, max_events=max_events)

    def run_programs(
        self,
        programs: Union[Sequence[Generator], Dict[int, Generator]],
        max_cycles: Optional[int] = None,
        profile: bool = False,
    ) -> int:
        """Run one workload program per node and return the completion time.

        ``programs`` is either a sequence with one generator per node or a
        mapping from node id to generator (nodes without a program idle).
        Raises :class:`WorkloadHangError` if the programs do not all finish.

        With ``profile=True`` the run goes through
        :meth:`~repro.sim.Simulator.run_profile` and the kernel-throughput
        dict is stored on :attr:`last_profile`.
        """
        self.start()
        if isinstance(programs, dict):
            items = programs.items()
        else:
            if len(programs) != len(self.nodes):
                raise ValueError(
                    f"expected {len(self.nodes)} programs, got {len(programs)}"
                )
            items = enumerate(programs)
        if self.params.reliable_messaging:
            # Append the reliability flush to each program: drain unacked
            # fragments and linger re-acking peers' retransmissions, so a
            # lossy run terminates cleanly (two-generals cut off by the
            # capped give-up + the watchdog).
            items = [
                (node_id, self._with_reliable_flush(node_id, program))
                for node_id, program in items
            ]
        processes = [
            self.nodes[node_id].processor.run_program(program, name=f"workload-cpu{node_id}")
            for node_id, program in items
        ]
        watchdog = Watchdog(
            self.sim,
            processes,
            max_cycles=max_cycles,
            progress=self._progress_fingerprint,
            partitions=self.partition_map,
        )
        if profile:
            self.last_profile = watchdog.run(profile=True)
            end_time = int(self.last_profile["end_time"])
            # Fold the protocol activity of the run into the profile so
            # kernel-throughput consumers see coherence work alongside it.
            for key, value in self.coherence_stats().items():
                if key != "protocol":
                    self.last_profile[key] = value
        else:
            end_time = watchdog.run()
        unfinished = [p.name for p in processes if not p.finished]
        if unfinished:
            raise WorkloadHangError(
                f"workload did not complete by cycle {end_time}: "
                f"{len(unfinished)} stuck processes ({', '.join(unfinished[:4])}...)"
            )
        return max(p.finished_at for p in processes) if processes else end_time

    def _with_reliable_flush(self, node_id: int, program: Generator) -> Generator:
        yield from program
        yield from self.messaging[node_id].reliable_flush()

    def _progress_fingerprint(self) -> tuple:
        """Workload-progress fingerprint for the engine watchdog.

        Deliberately excludes raw event/poll counters (a spinning poller
        executes events forever without progressing) in favor of delivered
        traffic and completed user-level messages.
        """
        net = self.fabric.stats
        user = 0
        for layer in self.messaging:
            raw = layer.stats.raw
            user += (
                raw.get("user_messages_sent", 0)
                + raw.get("user_messages_received", 0)
                + raw.get("barriers", 0)
            )
        return (net.get("messages_delivered"), net.get("acks_delivered"), user)

    # ------------------------------------------------------------------
    # Partition ownership (PDES / repro.analysis)
    # ------------------------------------------------------------------
    def partition_map(self) -> Dict[str, tuple]:
        """Ownership map: partition label -> the objects that partition owns.

        This is the machine's own statement of how it decomposes into the
        per-node logical processes of ROADMAP item 1 (conservative PDES):
        everything a node's processor, caches, buses, NI and messaging
        layer touch lives in partition ``node{i}``; the network fabric —
        the only mediation layer between nodes — is its own partition.
        The partition-safety analyzer (:mod:`repro.analysis`) resolves
        every scheduled callback's owner against this map, so any object
        reachable from a simulation process must appear here.
        """
        fabric_objs = (self.fabric,)
        inner = getattr(self.fabric, "inner", None)
        if inner is not None:
            fabric_objs = (self.fabric, inner)
        parts: Dict[str, tuple] = {"fabric": fabric_objs}
        for node, layer in zip(self.nodes, self.messaging):
            interconnect = node.interconnect
            owned = [
                node,
                node.processor,
                node.proc_cache,
                node.memory,
                node.ni,
                node.ni.window,
                node.ni.window.slot_freed,
                node.ni.home_agent,
                node.dram_allocator,
                interconnect,
                interconnect.membus,
                layer,
            ]
            if interconnect.iobus is not None:
                owned.append(interconnect.iobus)
            if interconnect.cachebus is not None:
                owned.append(interconnect.cachebus)
            if interconnect.directory is not None:
                owned.append(interconnect.directory)
            # Every attached bus agent (device caches, queue ports, bridges)
            # belongs to the node that owns the interconnect.
            for agent in interconnect.agents:
                if agent not in owned:
                    owned.append(agent)
            # Device ports and their signals, when the device is composed.
            for port_name in ("send_port", "recv_port"):
                port = getattr(node.ni, port_name, None)
                if port is not None:
                    owned.append(port)
            parts[f"node{node.node_id}"] = tuple(owned)
        return parts

    # ------------------------------------------------------------------
    # Device space
    # ------------------------------------------------------------------
    @staticmethod
    def available_devices(generative: bool = True):
        """Every NI the machine can be built with (see the device registry).

        Convenience passthrough to
        :func:`repro.ni.taxonomy.available_devices`, so callers assembling
        machines can enumerate the generative taxonomy space from the same
        front door they build from.
        """
        from repro.ni.taxonomy import available_devices

        return available_devices(generative=generative)

    def device_info(self):
        """Parsed taxonomy metadata for each node's device (None for nodes
        whose device name does not follow the taxonomy grammar)."""
        from repro.ni.taxonomy import TaxonomyError, parse_ni_name

        infos = []
        for node in self.nodes:
            try:
                infos.append(parse_ni_name(node.config.ni_name))
            except TaxonomyError:
                infos.append(None)
        return infos

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def total_memory_bus_occupancy(self) -> int:
        return sum(node.memory_bus_occupancy() for node in self.nodes)

    def total_io_bus_occupancy(self) -> int:
        return sum(node.io_bus_occupancy() for node in self.nodes)

    def network_stats(self) -> Dict[str, int]:
        return self.fabric.stats.as_dict()

    def fault_stats(self) -> Dict[str, object]:
        """Machine-wide fault-injection and recovery totals.

        Merges the fault wrapper's injection counters (drops, duplicates,
        corruptions, delays) with every node's reliability counters
        (retransmits, recoveries, dedup discards) and the combined
        recovery-latency histogram.  Returns ``{"plan": ""}`` plus zeroed
        recovery counters when no fault plan is active.
        """
        out: Dict[str, object] = {"plan": self.params.faults}
        fabric_stats = getattr(self.fabric, "fault_stats", None)
        if fabric_stats is not None:
            out.update(fabric_stats())
        recovery = None
        for layer in self.messaging:
            for key, value in layer.fault_stats().items():
                if key == "recovery_latency":
                    continue
                out[key] = out.get(key, 0) + value
            if layer.recovery_samples.count:
                if recovery is None:
                    from repro.sim import Samples

                    recovery = Samples()
                recovery.extend(layer.recovery_samples.values())
        if recovery is not None:
            out["recovery_latency"] = {
                "count": recovery.count,
                "mean": round(recovery.mean, 1),
                "p50": recovery.percentile(0.5),
                "p95": recovery.percentile(0.95),
                "max": recovery.maximum,
            }
        return out

    def coherence_stats(self) -> Dict[str, Union[str, int]]:
        """Machine-wide coherence-protocol activity totals.

        Sums the protocol counters of every coherent cache on every node
        (processor caches and NI device caches alike):

        * ``protocol_transitions`` — all state transitions (fills, silent
          hit promotions, snoop reactions, invalidations),
        * ``protocol_snoop_transitions`` / ``protocol_invalidations`` —
          transitions forced by snooped remote transactions, and the subset
          that dropped the block,
        * ``protocol_writebacks`` — dirty data reflected home (evictions,
          explicit flushes and snooped-read reflections),
        * ``protocol_races`` — guarded bus transactions aborted because a
          concurrent transaction invalidated their premise while they
          waited for the bus.
        """
        from repro.coherence.cache import CoherentCache

        transitions = snoops = invalidations = writebacks = races = 0
        for node in self.nodes:
            for agent in node.interconnect.agents:
                if not isinstance(agent, CoherentCache):
                    continue
                raw = agent.stats.raw
                transitions += raw.get("state_transitions", 0)
                snoops += raw.get("snoop_transitions", 0)
                invalidations += raw.get("snoop_invalidations", 0)
                writebacks += (
                    raw.get("writebacks", 0)
                    + raw.get("explicit_flushes", 0)
                    + raw.get("snoop_writebacks", 0)
                )
                races += (
                    raw.get("upgrade_races", 0)
                    + raw.get("writeback_races", 0)
                    + raw.get("flush_races", 0)
                )
        return {
            "protocol": self.params.protocol,
            "protocol_transitions": transitions,
            "protocol_snoop_transitions": snoops,
            "protocol_invalidations": invalidations,
            "protocol_writebacks": writebacks,
            "protocol_races": races,
        }

    def spin_elision_stats(self) -> Dict[str, int]:
        """Machine-wide spin-wait elision totals (kernel + per-device).

        ``elided_events`` / ``elided_cycles`` are the kernel events and
        simulated cycles that busy-poll spins would have executed but did
        not (see :mod:`repro.sim.spinwait`); ``elided_spins`` counts the
        reconstructed poll-loop iterations across all devices.  All three
        are zero when ``params.spin_elision`` is off or no device qualifies.
        """
        return {
            "elided_events": self.sim.elided_events,
            "elided_cycles": self.sim.elided_cycles,
            "elided_spins": sum(
                node.ni.stats.get("elided_spins") for node in self.nodes
            ),
        }

    def describe(self) -> str:
        ni_names = {node.config.ni_name for node in self.nodes}
        buses = {node.config.ni_bus.value for node in self.nodes}
        fabric = "" if self.params.fabric == "ideal" else f", fabric={self.params.fabric}"
        protocol = (
            "" if self.params.protocol == "moesi" else f", protocol={self.params.protocol}"
        )
        return (
            f"Machine: {len(self.nodes)} nodes, NI={'/'.join(sorted(ni_names))}, "
            f"bus={'/'.join(sorted(buses))}{fabric}{protocol}"
        )

    def __repr__(self) -> str:
        return f"<{self.describe()}>"
