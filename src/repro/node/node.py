"""A single node: processor, caches, buses, memory and network interface."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.coherence.bus import NodeInterconnect
from repro.coherence.cache import CoherentCache, MainMemory
from repro.common.addrmap import AddressMap, RegionAllocator
from repro.common.params import DRAM_BASE, DRAM_SIZE, MachineParams
from repro.common.types import AddressRange, AgentKind, BusKind
from repro.network.fabric import AbstractFabric
from repro.ni.taxonomy import TaxonomyError, create_ni, parse_ni_name, validate_ni_kwargs
from repro.node.processor import Processor
from repro.sim import Simulator


class NodeConfigError(ValueError):
    """Raised for invalid node configurations."""


#: Offset (in blocks) of the first workload/pointer DRAM allocation.  Chosen
#: so that DRAM allocations and the device-homed queue region never collide
#: in the direct-mapped processor cache (which would add conflict misses the
#: paper's system does not have).
DRAM_ALLOC_OFFSET_BLOCKS = 2048


@dataclass
class NodeConfig:
    """Per-node configuration: which NI to build and where to attach it."""

    ni_name: str = "CNI16Qm"
    ni_bus: BusKind = BusKind.MEMORY
    snarfing: bool = False
    ni_kwargs: Dict = field(default_factory=dict)

    def validate(self) -> "NodeConfig":
        # Bus-placement rules follow the parsed taxonomy axes, so they hold
        # across the whole generative space, not just the five paper names.
        # Custom registered devices with grammar-free names are conservative:
        # they skip the I/O-bus Qm rule (their homing is unknown) but are
        # rejected on the cache bus, which only models uncached word NIs.
        try:
            spec = parse_ni_name(self.ni_name)
        except TaxonomyError:
            spec = None
        if self.ni_bus is BusKind.CACHE and (
            spec is None or spec.coherent or spec.unit != "words"
        ):
            raise NodeConfigError(
                f"{self.ni_name}: only uncached word-exposed NIs (NI2w-style "
                f"NI{{n}}w devices) are modelled on the cache bus (paper Section 5)"
            )
        if self.ni_bus is BusKind.IO and spec is not None and spec.queue == "Qm":
            raise NodeConfigError(
                f"{self.ni_name}: memory-homed queues cannot be implemented on "
                f"current coherent I/O buses (paper Section 2.3)"
            )
        # Fail on unknown devices / unsupported device kwargs here, with a
        # TaxonomyError, rather than as a TypeError deep in create_ni().
        validate_ni_kwargs(self.ni_name, self.ni_kwargs)
        return self


class Node:
    """One node of the simulated parallel machine."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        params: MachineParams,
        fabric: AbstractFabric,
        config: Optional[NodeConfig] = None,
    ):
        self.sim = sim
        self.node_id = node_id
        self.params = params
        self.config = (config or NodeConfig()).validate()
        self.addrmap = AddressMap.for_params(params)

        self.interconnect = NodeInterconnect(
            sim,
            params,
            self.addrmap,
            name=f"node{node_id}",
            with_io_bus=self.config.ni_bus is BusKind.IO,
            with_cache_bus=self.config.ni_bus is BusKind.CACHE,
        )
        if self.config.snarfing and self.interconnect.directory is not None:
            # Same rule MachineParams enforces for global data_snarfing:
            # snarfing picks data off *broadcast* transactions, which a
            # directory protocol filters away from non-holders.
            raise NodeConfigError(
                f"node{node_id}: snarfing needs broadcast snoops; directory "
                f"protocol {params.protocol!r} filters them"
            )
        self.memory = MainMemory(
            sim, f"node{node_id}.mem", self.interconnect, params, self.addrmap
        )
        self.proc_cache = CoherentCache(
            sim,
            f"node{node_id}.L1",
            self.interconnect,
            params,
            self.addrmap,
            size_bytes=params.processor_cache_bytes,
            agent_kind=AgentKind.PROCESSOR,
            bus_kind=BusKind.MEMORY,
            snarfing=self.config.snarfing,
        )
        self.processor = Processor(sim, node_id, self.proc_cache, params)

        # Main-memory allocator for queue pages, pointer blocks, software
        # buffers and workload data structures.
        alloc_start = DRAM_BASE + DRAM_ALLOC_OFFSET_BLOCKS * params.cache_block_bytes
        self.dram_allocator = RegionAllocator(
            AddressRange(alloc_start, DRAM_BASE + DRAM_SIZE), params.cache_block_bytes
        )

        self.ni = create_ni(
            self.config.ni_name,
            sim,
            node_id,
            params,
            self.addrmap,
            self.interconnect,
            fabric,
            bus_kind=self.config.ni_bus,
            dram_allocator=self.dram_allocator,
            **self.config.ni_kwargs,
        )
        self.ni.bind_processor_cache(self.proc_cache)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the NI device processes."""
        self.ni.start()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def memory_bus_occupancy(self) -> int:
        return self.interconnect.memory_bus_occupancy()

    def io_bus_occupancy(self) -> int:
        return self.interconnect.io_bus_occupancy()

    def stats_snapshot(self) -> Dict[str, Dict[str, int]]:
        return {
            "bus": self.interconnect.stats.as_dict(),
            "proc_cache": self.proc_cache.stats.as_dict(),
            "processor": self.processor.stats.as_dict(),
            "ni": self.ni.stats.as_dict(),
        }

    def __repr__(self) -> str:
        return f"<Node {self.node_id} {self.config.ni_name} on {self.config.ni_bus}>"
