"""Processor cost model.

The paper models a 200 MHz dual-issue HyperSPARC only through the cost of
its memory-system interactions (Table 2) plus application compute time; we
do the same.  The :class:`Processor` provides workloads with generators for
computation delays and for cached/uncached memory accesses, and runs one
workload program as a simulation process.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.coherence.cache import CoherentCache
from repro.common.params import MachineParams
from repro.sim import Counter, Process, Simulator, start_process
from repro.sim.engine import _as_cycles


class Processor:
    """A single node's compute processor."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        cache: CoherentCache,
        params: MachineParams,
    ):
        self.sim = sim
        self.node_id = node_id
        self.cache = cache
        self.params = params
        self.stats = Counter()
        self._counts = self.stats.raw
        self._program_process: Optional[Process] = None

    # ------------------------------------------------------------------
    # Program execution
    # ------------------------------------------------------------------
    def run_program(self, program: Generator, name: str = "") -> Process:
        """Launch a workload program (a generator) as this processor's process."""
        self._program_process = start_process(
            self.sim, program, name=name or f"cpu{self.node_id}"
        )
        return self._program_process

    @property
    def program(self) -> Optional[Process]:
        return self._program_process

    def finished(self) -> bool:
        return self._program_process is not None and self._program_process.finished

    # ------------------------------------------------------------------
    # Cost-model primitives (generators)
    # ------------------------------------------------------------------
    def compute(self, cycles: int):
        """Spend ``cycles`` of pure computation.

        ``cycles`` must be a whole number: fractional values raise
        :class:`~repro.sim.SimulationError` instead of being truncated.
        """
        if type(cycles) is not int:
            cycles = _as_cycles(cycles, what="compute cycles")
        self._counts["compute_cycles"] += cycles
        yield cycles

    def touch_read(self, address: int, size: int):
        """Read ``size`` bytes of cachable data (workload memory traffic)."""
        self._counts["data_reads"] += 1
        yield from self.cache.read(address, size)

    def touch_write(self, address: int, size: int):
        """Write ``size`` bytes of cachable data (workload memory traffic)."""
        self._counts["data_writes"] += 1
        yield from self.cache.write(address, size)

    def __repr__(self) -> str:
        return f"<Processor node{self.node_id}>"
