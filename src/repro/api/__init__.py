"""Unified experiment API: declarative sweeps, parallel execution, results.

This package is the single front door to the simulator.  A point in the
evaluation space is an :class:`ExperimentSpec`; a family of points is a
:class:`SweepSpec` (full cartesian product or an explicit point list); a
:class:`SweepRunner` executes points serially or with ``multiprocessing``
workers, memoising every point in an on-disk JSON cache keyed by the spec
hash; results come back as a :class:`ResultSet` of :class:`RunResult`
records that can be filtered, pivoted into figure panels, and serialised
with ``to_json``/``from_json``.

Typical use::

    from repro.api import ExperimentSpec, SweepSpec, SweepRunner

    sweep = SweepSpec.cartesian(
        ExperimentSpec(kind="latency", iterations=10),
        device=("NI2w", "CNI512Q"),
        message_bytes=(8, 64, 256),
    )
    results = SweepRunner(jobs=4, cache_dir=".repro-cache").run(sweep)
    panel = results.pivot(series="device", x="message_bytes")
"""

from repro.api.cache import ResultCache
from repro.api.kinds import (
    KINDS,
    KindSpec,
    available_kinds,
    kind_spec,
    register_kind,
    unregister_kind,
)
from repro.api.presets import (
    DEVICE_FAMILIES,
    FAMILY_CONFIGS,
    MACRO_TRIO,
    SCALABILITY_FABRICS,
    FAULT_PLANS,
    SCALABILITY_NODE_COUNTS,
    SHIPPED_PROTOCOLS,
    bandwidth_sweep,
    fault_sweep,
    device_space_sweep,
    engine_sweep,
    latency_sweep,
    macro_sweep,
    network_sensitivity_sweep,
    occupancy_reductions,
    paper_tables,
    protocol_sweep,
    scalability_sweep,
    speedups,
    traffic_sweep,
)
from repro.api.results import ResultSet, RunResult
from repro.api.runner import SweepFailure, SweepRunner, run_point, run_point_guarded
from repro.api.spec import ExperimentSpec, SpecError, SweepSpec

__all__ = [
    "ExperimentSpec",
    "SweepSpec",
    "SpecError",
    "RunResult",
    "ResultSet",
    "ResultCache",
    "SweepFailure",
    "SweepRunner",
    "run_point",
    "run_point_guarded",
    "KINDS",
    "KindSpec",
    "available_kinds",
    "kind_spec",
    "register_kind",
    "unregister_kind",
    "latency_sweep",
    "bandwidth_sweep",
    "traffic_sweep",
    "macro_sweep",
    "engine_sweep",
    "fault_sweep",
    "device_space_sweep",
    "scalability_sweep",
    "protocol_sweep",
    "network_sensitivity_sweep",
    "DEVICE_FAMILIES",
    "FAMILY_CONFIGS",
    "FAULT_PLANS",
    "MACRO_TRIO",
    "SCALABILITY_FABRICS",
    "SCALABILITY_NODE_COUNTS",
    "SHIPPED_PROTOCOLS",
    "speedups",
    "occupancy_reductions",
    "paper_tables",
]
