"""Execution engine for experiment specs: one point, or whole sweeps.

:func:`run_point` maps an :class:`ExperimentSpec` onto the underlying
simulator entry points (the Figure 6/7 microbenchmarks and the Figure 8
macrobenchmark runner) and returns a :class:`RunResult`.

:class:`SweepRunner` executes many points: it deduplicates repeated specs,
consults the on-disk :class:`ResultCache`, fans the remaining points out to
``multiprocessing`` workers when ``jobs > 1`` (each worker runs the same
pure function, so serial and parallel execution give identical results),
and reports progress through an optional callback.  Every result the
runner produces is also appended to ``runner.history`` so a driver can
serialise everything that was computed in a session.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.api.cache import ResultCache
from repro.api.kinds import kind_cacheable, measure_point, point_cost
from repro.api.results import ResultSet, RunResult
from repro.api.spec import ExperimentSpec, SweepSpec, as_points

#: Progress callback signature: ``(completed, total, result)``.
ProgressFn = Callable[[int, int, RunResult], None]


def run_point(spec: ExperimentSpec) -> RunResult:
    """Execute one experiment point and return its structured result.

    This is a pure function of the (validated) spec: running the same spec
    twice — in this process or another — yields identical metrics, which is
    what makes both the result cache and parallel execution safe.  Dispatch
    goes through the kind registry (:mod:`repro.api.kinds`), so plugin
    kinds run through the exact same path as the built-ins.
    """
    spec = spec.validate()
    started = time.perf_counter()
    metrics = measure_point(spec)
    return RunResult(spec=spec, metrics=metrics, elapsed_s=time.perf_counter() - started)


def _machine_overrides(spec: ExperimentSpec) -> Dict[str, Any]:
    """Machine-shape kwargs shared by every engine entry point."""
    out: Dict[str, Any] = {"ni_kwargs": dict(spec.ni_kwargs)}
    if spec.params:
        out["params"] = spec.machine_params()
    if spec.max_cycles is not None:
        out["max_cycles"] = spec.max_cycles
    return out


def _run_latency(spec: ExperimentSpec) -> Dict[str, float]:
    from repro.experiments.microbench import round_trip_latency

    result = round_trip_latency(
        spec.device,
        spec.bus,
        spec.message_bytes,
        iterations=spec.iterations,
        warmup=spec.resolved_warmup(),
        snarfing=spec.snarfing,
        num_nodes=spec.num_nodes,
        **_machine_overrides(spec),
    )
    return {
        "round_trip_cycles": result.round_trip_cycles,
        "round_trip_us": result.round_trip_us,
        "one_way_us": result.one_way_us,
        "iterations": float(result.iterations),
    }


def _run_bandwidth(spec: ExperimentSpec) -> Dict[str, float]:
    from repro.experiments.microbench import bandwidth

    result = bandwidth(
        spec.device,
        spec.bus,
        spec.message_bytes,
        messages=spec.messages,
        warmup=spec.resolved_warmup(),
        snarfing=spec.snarfing,
        num_nodes=spec.num_nodes,
        **_machine_overrides(spec),
    )
    return {
        "total_cycles": float(result.total_cycles),
        "bandwidth_mbps": result.bandwidth_mbps,
        "relative_bandwidth": result.relative_bandwidth,
        "max_bandwidth_mbps": result.max_bandwidth_mbps,
        "messages": float(result.messages),
    }


def _run_macro(spec: ExperimentSpec) -> Dict[str, float]:
    from repro.experiments.macro import run_macrobenchmark

    workload_kwargs = dict(spec.workload_kwargs)
    workload_kwargs.setdefault("seed", spec.resolved_seed())
    overrides = _machine_overrides(spec)
    overrides.setdefault("max_cycles", 2_000_000_000)
    result = run_macrobenchmark(
        spec.workload,
        spec.device,
        spec.bus,
        num_nodes=spec.num_nodes,
        scale=spec.scale,
        snarfing=spec.snarfing,
        workload_kwargs=workload_kwargs,
        **overrides,
    )
    metrics = {
        "cycles": float(result.cycles),
        "memory_bus_occupancy": float(result.memory_bus_occupancy),
        "io_bus_occupancy": float(result.io_bus_occupancy),
        "network_messages": float(result.network_messages),
    }
    if result.fault_stats:
        # Only fault-plan runs grow these keys, so fault-free results (and
        # their cache entries / goldens) are byte-identical to before the
        # fault layer existed.
        for key, value in result.fault_stats.items():
            if key in ("plan", "seed"):
                continue  # spec inputs, not measurements
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                metrics[f"fault_{key}"] = float(value)
        recovery = result.fault_stats.get("recovery_latency")
        if isinstance(recovery, dict):
            metrics["fault_recovery_p95"] = float(recovery.get("p95", 0.0))
    return metrics


def _run_engine(spec: ExperimentSpec) -> Dict[str, float]:
    """Kernel-throughput metrics (wall-clock; do not cache these points)."""
    from repro.experiments.enginebench import kernel_throughput

    workload_kwargs = dict(spec.workload_kwargs)
    workload_kwargs.setdefault("seed", spec.resolved_seed())
    overrides = _machine_overrides(spec)
    overrides.setdefault("max_cycles", 2_000_000_000)
    result = kernel_throughput(
        spec.workload,
        spec.device,
        spec.bus,
        num_nodes=spec.num_nodes,
        scale=spec.scale,
        snarfing=spec.snarfing,
        workload_kwargs=workload_kwargs,
        **overrides,
    )
    return {
        "cycles": float(result.cycles),
        "events": float(result.events),
        "wall_s": result.wall_s,
        "events_per_sec": result.events_per_sec,
        "lane_events": float(result.lane_events),
        "heap_events": float(result.heap_events),
        "pool_reuses": float(result.pool_reuses),
        "elided_events": float(result.elided_events),
        "elided_cycles": float(result.elided_cycles),
        "elided_fraction": result.elided_fraction,
    }


def _worker_cache(desc: Optional[Dict[str, Any]]) -> Optional[ResultCache]:
    """Rebuild the runner's cache/store inside a worker process.

    Workers never evict (``budget_bytes=None``): the owning process enforces
    the byte budget once per sweep, so parallel writers cannot thrash each
    other's fresh entries.
    """
    if desc is None:
        return None
    if desc.get("sharded"):
        from repro.service.store import ResultStore

        return ResultStore(desc["directory"], budget_bytes=None)
    return ResultCache(desc["directory"])


def _run_point_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: dict in, dict out, so payloads pickle trivially.

    When the sweep is cached, the worker itself consults and fills the
    on-disk store: each completed point persists immediately (a crashed
    sweep keeps its partial results) and a point another process finished
    meanwhile — e.g. a concurrent service batch sharing the store — is
    served instead of re-simulated.  The worker's cache traffic comes back
    in ``"cache"`` so the parent can fold it into its own counters.
    """
    spec = ExperimentSpec.from_dict(payload["spec"])
    counters = {"hits": 0, "stores": 0}
    cache = _worker_cache(payload.get("cache")) if kind_cacheable(spec.kind) else None
    if cache is not None:
        hit = cache.get(spec)
        if hit is not None:
            counters["hits"] = 1
            return {"result": hit.to_dict(), "cache": counters}
    result = run_point(spec)
    if cache is not None:
        cache.put(result)
        counters["stores"] = 1
    return {"result": result.to_dict(), "cache": counters}


def _run_point_indexed(item: Tuple[int, Dict[str, Any]]) -> Tuple[int, Dict[str, Any]]:
    """Indexed worker entry point for unordered parallel completion."""
    index, payload = item
    return index, _run_point_payload(payload)


class SweepFailure(RuntimeError):
    """A point failed under ``fail_fast``; carries the failed result."""

    def __init__(self, result: RunResult):
        super().__init__(f"{result.spec.describe()}: {result.error}")
        self.result = result


def _guarded_child(conn: Any, payload: Dict[str, Any]) -> None:
    """Child-process entry for guarded execution: ship outcome over a pipe.

    Any exception (including simulator hangs surfaced as errors) comes back
    as ``("error", message)`` instead of a traceback on stderr and a
    nonzero exit the parent has to guess about.  A child that dies without
    sending anything (segfault, ``os._exit``, OOM-kill) is diagnosed from
    its exit code by the parent.
    """
    try:
        out = _run_point_payload(payload)
        conn.send(("ok", out))
    except BaseException as exc:  # noqa: BLE001 — the pipe is the report
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except OSError:
            pass
    finally:
        conn.close()


class _GuardedPoint:
    """One in-flight guarded child process."""

    __slots__ = ("index", "proc", "conn", "deadline")

    def __init__(self, index: int, proc: Any, conn: Any, deadline: Optional[float]):
        self.index = index
        self.proc = proc
        self.conn = conn
        self.deadline = deadline


def _spawn_guarded(
    index: int,
    spec: ExperimentSpec,
    cache_desc: Optional[Dict[str, Any]],
    timeout_s: Optional[float],
) -> _GuardedPoint:
    ctx = multiprocessing.get_context()
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_guarded_child,
        args=(child_conn, {"spec": spec.to_dict(), "cache": cache_desc}),
        daemon=True,
    )
    proc.start()
    child_conn.close()
    deadline = None if timeout_s is None else time.monotonic() + timeout_s
    return _GuardedPoint(index, proc, parent_conn, deadline)


def _reap_guarded(point: _GuardedPoint, kill: bool = False) -> None:
    """Shut a guarded child down hard and release its pipe."""
    try:
        if kill and point.proc.is_alive():
            point.proc.terminate()
            point.proc.join(1.0)
            if point.proc.is_alive():
                point.proc.kill()
        point.proc.join(1.0)
    except (OSError, ValueError):
        pass
    try:
        point.conn.close()
    except OSError:
        pass


def run_point_guarded(
    spec: ExperimentSpec,
    timeout_s: Optional[float] = None,
    max_retries: int = 0,
    retry_backoff_s: float = 0.25,
    cache_desc: Optional[Dict[str, Any]] = None,
) -> Tuple[RunResult, Optional[Dict[str, int]]]:
    """Run one point in a disposable child process, with timeout and retry.

    The contract :class:`SweepRunner`'s robustness options and the HTTP
    service's per-request timeout build on: the child either returns a
    result, raises (error comes back over the pipe), crashes (diagnosed
    from the exit code) or overruns ``timeout_s`` (killed).  Failures are
    retried up to ``max_retries`` times with exponential backoff; the final
    failure is reported as a :class:`RunResult` with ``error`` set — never
    an exception — so one sick point cannot take down a sweep.

    Returns ``(result, worker_cache_stats)``; the stats are ``None`` when
    the point failed (a failed point writes nothing to any cache).
    """
    spec = spec.validate()
    attempts = 0
    error = "unknown failure"
    while attempts <= max_retries:
        if attempts:
            time.sleep(retry_backoff_s * (2 ** (attempts - 1)))
        attempts += 1
        point = _spawn_guarded(0, spec, cache_desc, timeout_s)
        try:
            budget = None if point.deadline is None else max(0.0, point.deadline - time.monotonic())
            if point.conn.poll(budget):
                try:
                    status, payload = point.conn.recv()
                except (EOFError, OSError):
                    status, payload = "error", f"worker crashed (exit code {point.proc.exitcode})"
                if status == "ok":
                    return RunResult.from_dict(payload["result"]), payload["cache"]
                error = str(payload)
            elif point.proc.is_alive():
                error = f"point timed out after {timeout_s:g}s"
            else:
                error = f"worker crashed (exit code {point.proc.exitcode})"
        finally:
            _reap_guarded(point, kill=True)
    return (
        RunResult(spec=spec, error=f"{error} (attempts={attempts})"),
        None,
    )


class SweepRunner:
    """Runs sweeps of experiment points, serially or in parallel.

    Parameters
    ----------
    jobs:
        Number of worker processes; ``1`` (the default) runs in-process.
    cache_dir:
        Directory for the on-disk result cache, or ``None`` to disable
        caching.  A string is turned into a :class:`ResultCache`.
    progress:
        Optional ``(completed, total, result)`` callback, invoked once per
        unique point as its result becomes available.
    point_timeout_s:
        Wall-clock budget per point.  Setting it (or ``max_retries``)
        switches execution to *guarded* mode: every point runs in a
        disposable child process that is killed on overrun, so a hung
        simulation costs one point, not the sweep.
    max_retries:
        How many times a crashed/timed-out/raising point is re-run before
        it is recorded as failed (``RunResult.error``).
    fail_fast:
        Raise :class:`SweepFailure` on the first failed point instead of
        carrying it in the result set.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[Union[str, ResultCache]] = None,
        progress: Optional[ProgressFn] = None,
        point_timeout_s: Optional[float] = None,
        max_retries: int = 0,
        fail_fast: bool = False,
        retry_backoff_s: float = 0.25,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if point_timeout_s is not None and point_timeout_s <= 0:
            raise ValueError("point_timeout_s must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.jobs = jobs
        if isinstance(cache_dir, ResultCache):
            self.cache: Optional[ResultCache] = cache_dir
        elif cache_dir is not None:
            self.cache = ResultCache(cache_dir)
        else:
            self.cache = None
        self.progress = progress
        self.point_timeout_s = point_timeout_s
        self.max_retries = max_retries
        self.fail_fast = fail_fast
        self.retry_backoff_s = retry_backoff_s
        #: Failed points recorded across this runner's lifetime.
        self.failures = 0
        #: Every result produced through this runner, in completion order.
        self.history = ResultSet()

    @property
    def guarded(self) -> bool:
        """Whether points run in disposable child processes."""
        return self.point_timeout_s is not None or self.max_retries > 0

    # ------------------------------------------------------------------
    def run(
        self, sweep: Union[SweepSpec, ExperimentSpec, Sequence[ExperimentSpec]]
    ) -> ResultSet:
        """Execute every point of ``sweep``; returns results in point order.

        Duplicate points (same spec hash) are executed once and fanned back
        out, so e.g. a Figure 8 sweep that names the NI2w/memory baseline in
        several panels only simulates it once.
        """
        points = as_points(sweep)
        order: List[str] = []
        unique: Dict[str, ExperimentSpec] = {}
        for spec in points:
            key = spec.spec_hash()
            order.append(key)
            if key not in unique:
                unique[key] = spec

        # Memo levels: results already produced through this runner (e.g. a
        # previous figure's sweep sharing points), then the on-disk cache.
        # Non-cacheable kinds (engine) are wall-clock measurements: serving
        # them from any memo would report stale throughput, so they always
        # re-run.
        known = self.history.by_hash() if len(self.history) else {}
        resolved: Dict[str, RunResult] = {}
        pending: List[ExperimentSpec] = []
        for key, spec in unique.items():
            if not kind_cacheable(spec.kind):
                pending.append(spec)
                continue
            hit = known.get(key)
            if hit is None and self.cache is not None:
                hit = self.cache.get(spec)
            if hit is not None:
                resolved[key] = hit
            else:
                pending.append(spec)

        total = len(unique)
        completed = 0
        for result in resolved.values():
            completed += 1
            if self.progress is not None:
                self.progress(completed, total, result)

        if self.guarded and pending:
            completions = self._run_guarded(pending)
        elif self.jobs > 1 and len(pending) > 1:
            completions = self._run_parallel(pending)
        else:
            completions = ((spec, run_point(spec), None) for spec in pending)
        for spec, result, worker_stats in completions:
            resolved[spec.spec_hash()] = result
            if result.error is not None:
                # Failed points are carried, never cached: a later run must
                # recompute them rather than be served the failure.
                self.failures += 1
            elif self.cache is not None and kind_cacheable(spec.kind):
                if worker_stats is None:
                    # Serial execution: this process writes the entry.
                    self.cache.put(result)
                else:
                    # The worker already wrote (or re-read) the entry; fold
                    # its counters in.  A worker hit means another process
                    # filled the key after our pre-check counted a miss —
                    # reclassify, so hits+misses still sum to one event per
                    # point and ``--jobs`` reports the same totals as serial.
                    self.cache.hits += worker_stats.get("hits", 0)
                    self.cache.misses -= worker_stats.get("hits", 0)
                    self.cache.stores += worker_stats.get("stores", 0)
            completed += 1
            if self.progress is not None:
                self.progress(completed, total, result)
            if result.error is not None and self.fail_fast:
                raise SweepFailure(result)

        if self.cache is not None and hasattr(self.cache, "enforce_budget"):
            # Parallel workers never evict; settle the store's byte budget
            # once, here, with every fresh entry already landed.
            self.cache.enforce_budget()

        # History follows point order (not completion order) so the record
        # of a sweep is identical whether points came from cache, workers
        # or the local process.
        for key in unique:
            self._record(resolved[key])
        results = ResultSet([resolved[key] for key in order])
        results.cache_stats = self.cache_stats()
        return results

    def run_one(self, spec: ExperimentSpec) -> RunResult:
        """Run (or fetch from cache) a single point."""
        return self.run([spec])[0]

    # ------------------------------------------------------------------
    @staticmethod
    def _point_cost(spec: ExperimentSpec) -> float:
        """Rough relative wall-clock cost of one experiment point.

        Delegates to the kind registry's per-kind cost hooks (the historic
        heuristics live there); used only to order parallel work.
        """
        return point_cost(spec)

    def _cache_descriptor(self) -> Optional[Dict[str, Any]]:
        """How a worker process should rebuild this runner's cache."""
        if self.cache is None:
            return None
        return {
            "directory": self.cache.directory,
            "sharded": hasattr(self.cache, "path_for_key"),
        }

    def _run_parallel(
        self, pending: Sequence[ExperimentSpec]
    ) -> Iterator[Tuple[ExperimentSpec, RunResult, Dict[str, int]]]:
        """Yield ``(spec, result, worker_cache_stats)`` as workers finish.

        ``imap_unordered`` streams completions (so progress callbacks fire
        per point, not after the whole batch); the caller re-keys results
        by spec hash, so completion order does not matter.  Points are fed
        to the pool most-expensive first: spec order tends to put the heavy
        macro points last, and a straggler macro point picked up when the
        rest of the pool is already draining serializes the whole tail.
        """
        cache_desc = self._cache_descriptor()
        payloads = [
            (index, {"spec": spec.to_dict(), "cache": cache_desc})
            for index, spec in enumerate(pending)
        ]
        payloads.sort(key=lambda item: self._point_cost(pending[item[0]]), reverse=True)
        workers = min(self.jobs, len(payloads))
        with multiprocessing.Pool(processes=workers) as pool:
            for index, data in pool.imap_unordered(_run_point_indexed, payloads):
                yield (
                    pending[index],
                    RunResult.from_dict(data["result"]),
                    data["cache"],
                )

    def _run_guarded(
        self, pending: Sequence[ExperimentSpec]
    ) -> Iterator[Tuple[ExperimentSpec, RunResult, Optional[Dict[str, int]]]]:
        """Yield completions from disposable per-point child processes.

        Unlike :meth:`_run_parallel`'s shared ``multiprocessing.Pool``, each
        point gets its own process, so a crash or kill takes down exactly
        one point; overruns of ``point_timeout_s`` are terminated; failures
        are retried ``max_retries`` times with exponential backoff before a
        failed :class:`RunResult` is yielded.  Up to ``jobs`` children run
        concurrently (``jobs=1`` degrades to guarded serial execution).
        """
        cache_desc = self._cache_descriptor()
        queue: List[int] = sorted(
            range(len(pending)),
            key=lambda index: self._point_cost(pending[index]),
            reverse=True,
        )
        attempts: Dict[int, int] = {}
        retry_at: Dict[int, float] = {}
        active: Dict[int, _GuardedPoint] = {}
        try:
            while queue or active:
                now = time.monotonic()
                eligible = [i for i in queue if retry_at.get(i, 0.0) <= now]
                while eligible and len(active) < self.jobs:
                    index = eligible.pop(0)
                    queue.remove(index)
                    active[index] = _spawn_guarded(
                        index, pending[index], cache_desc, self.point_timeout_s
                    )
                progressed = False
                for index in list(active):
                    point = active[index]
                    error: Optional[str] = None
                    if point.conn.poll(0):
                        try:
                            status, payload = point.conn.recv()
                        except (EOFError, OSError):
                            status, payload = (
                                "error",
                                f"worker crashed (exit code {point.proc.exitcode})",
                            )
                        if status == "ok":
                            del active[index]
                            _reap_guarded(point)
                            progressed = True
                            yield (
                                pending[index],
                                RunResult.from_dict(payload["result"]),
                                payload["cache"],
                            )
                            continue
                        error = str(payload)
                    elif not point.proc.is_alive():
                        error = f"worker crashed (exit code {point.proc.exitcode})"
                    elif point.deadline is not None and now >= point.deadline:
                        error = f"point timed out after {self.point_timeout_s:g}s"
                    else:
                        continue
                    del active[index]
                    _reap_guarded(point, kill=True)
                    progressed = True
                    attempts[index] = attempts.get(index, 0) + 1
                    if attempts[index] <= self.max_retries:
                        retry_at[index] = time.monotonic() + self.retry_backoff_s * (
                            2 ** (attempts[index] - 1)
                        )
                        queue.append(index)
                    else:
                        yield (
                            pending[index],
                            RunResult(
                                spec=pending[index],
                                error=f"{error} (attempts={attempts[index]})",
                            ),
                            None,
                        )
                if not progressed:
                    time.sleep(0.01)
        finally:
            # fail_fast (or a closed consumer) abandons the generator with
            # children still running; kill them rather than leak them.
            for point in active.values():
                _reap_guarded(point, kill=True)

    def _record(self, result: RunResult) -> None:
        self.history.append(result)

    def cache_stats(self) -> Dict[str, int]:
        return self.cache.stats() if self.cache is not None else {"hits": 0, "misses": 0}

    def __repr__(self) -> str:
        cache = self.cache.directory if self.cache is not None else None
        return f"<SweepRunner jobs={self.jobs} cache={cache!r} history={len(self.history)}>"
