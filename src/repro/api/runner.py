"""Execution engine for experiment specs: one point, or whole sweeps.

:func:`run_point` maps an :class:`ExperimentSpec` onto the underlying
simulator entry points (the Figure 6/7 microbenchmarks and the Figure 8
macrobenchmark runner) and returns a :class:`RunResult`.

:class:`SweepRunner` executes many points: it deduplicates repeated specs,
consults the on-disk :class:`ResultCache`, fans the remaining points out to
``multiprocessing`` workers when ``jobs > 1`` (each worker runs the same
pure function, so serial and parallel execution give identical results),
and reports progress through an optional callback.  Every result the
runner produces is also appended to ``runner.history`` so a driver can
serialise everything that was computed in a session.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.api.cache import ResultCache
from repro.api.results import ResultSet, RunResult
from repro.api.spec import ExperimentSpec, SweepSpec, as_points

#: Progress callback signature: ``(completed, total, result)``.
ProgressFn = Callable[[int, int, RunResult], None]


def run_point(spec: ExperimentSpec) -> RunResult:
    """Execute one experiment point and return its structured result.

    This is a pure function of the (validated) spec: running the same spec
    twice — in this process or another — yields identical metrics, which is
    what makes both the result cache and parallel execution safe.
    """
    spec = spec.validate()
    started = time.perf_counter()
    if spec.kind == "latency":
        metrics = _run_latency(spec)
    elif spec.kind == "bandwidth":
        metrics = _run_bandwidth(spec)
    elif spec.kind == "engine":
        metrics = _run_engine(spec)
    else:
        metrics = _run_macro(spec)
    return RunResult(spec=spec, metrics=metrics, elapsed_s=time.perf_counter() - started)


def _machine_overrides(spec: ExperimentSpec) -> Dict[str, Any]:
    """Machine-shape kwargs shared by every engine entry point."""
    out: Dict[str, Any] = {"ni_kwargs": dict(spec.ni_kwargs)}
    if spec.params:
        out["params"] = spec.machine_params()
    if spec.max_cycles is not None:
        out["max_cycles"] = spec.max_cycles
    return out


def _run_latency(spec: ExperimentSpec) -> Dict[str, float]:
    from repro.experiments.microbench import round_trip_latency

    result = round_trip_latency(
        spec.device,
        spec.bus,
        spec.message_bytes,
        iterations=spec.iterations,
        warmup=spec.resolved_warmup(),
        snarfing=spec.snarfing,
        num_nodes=spec.num_nodes,
        **_machine_overrides(spec),
    )
    return {
        "round_trip_cycles": result.round_trip_cycles,
        "round_trip_us": result.round_trip_us,
        "one_way_us": result.one_way_us,
        "iterations": float(result.iterations),
    }


def _run_bandwidth(spec: ExperimentSpec) -> Dict[str, float]:
    from repro.experiments.microbench import bandwidth

    result = bandwidth(
        spec.device,
        spec.bus,
        spec.message_bytes,
        messages=spec.messages,
        warmup=spec.resolved_warmup(),
        snarfing=spec.snarfing,
        num_nodes=spec.num_nodes,
        **_machine_overrides(spec),
    )
    return {
        "total_cycles": float(result.total_cycles),
        "bandwidth_mbps": result.bandwidth_mbps,
        "relative_bandwidth": result.relative_bandwidth,
        "max_bandwidth_mbps": result.max_bandwidth_mbps,
        "messages": float(result.messages),
    }


def _run_macro(spec: ExperimentSpec) -> Dict[str, float]:
    from repro.experiments.macro import run_macrobenchmark

    workload_kwargs = dict(spec.workload_kwargs)
    workload_kwargs.setdefault("seed", spec.resolved_seed())
    overrides = _machine_overrides(spec)
    overrides.setdefault("max_cycles", 2_000_000_000)
    result = run_macrobenchmark(
        spec.workload,
        spec.device,
        spec.bus,
        num_nodes=spec.num_nodes,
        scale=spec.scale,
        snarfing=spec.snarfing,
        workload_kwargs=workload_kwargs,
        **overrides,
    )
    return {
        "cycles": float(result.cycles),
        "memory_bus_occupancy": float(result.memory_bus_occupancy),
        "io_bus_occupancy": float(result.io_bus_occupancy),
        "network_messages": float(result.network_messages),
    }


def _run_engine(spec: ExperimentSpec) -> Dict[str, float]:
    """Kernel-throughput metrics (wall-clock; do not cache these points)."""
    from repro.experiments.enginebench import kernel_throughput

    workload_kwargs = dict(spec.workload_kwargs)
    workload_kwargs.setdefault("seed", spec.resolved_seed())
    overrides = _machine_overrides(spec)
    overrides.setdefault("max_cycles", 2_000_000_000)
    result = kernel_throughput(
        spec.workload,
        spec.device,
        spec.bus,
        num_nodes=spec.num_nodes,
        scale=spec.scale,
        snarfing=spec.snarfing,
        workload_kwargs=workload_kwargs,
        **overrides,
    )
    return {
        "cycles": float(result.cycles),
        "events": float(result.events),
        "wall_s": result.wall_s,
        "events_per_sec": result.events_per_sec,
        "lane_events": float(result.lane_events),
        "heap_events": float(result.heap_events),
        "pool_reuses": float(result.pool_reuses),
        "elided_events": float(result.elided_events),
        "elided_cycles": float(result.elided_cycles),
        "elided_fraction": result.elided_fraction,
    }


def _worker_cache(desc: Optional[Dict[str, Any]]) -> Optional[ResultCache]:
    """Rebuild the runner's cache/store inside a worker process.

    Workers never evict (``budget_bytes=None``): the owning process enforces
    the byte budget once per sweep, so parallel writers cannot thrash each
    other's fresh entries.
    """
    if desc is None:
        return None
    if desc.get("sharded"):
        from repro.service.store import ResultStore

        return ResultStore(desc["directory"], budget_bytes=None)
    return ResultCache(desc["directory"])


def _run_point_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: dict in, dict out, so payloads pickle trivially.

    When the sweep is cached, the worker itself consults and fills the
    on-disk store: each completed point persists immediately (a crashed
    sweep keeps its partial results) and a point another process finished
    meanwhile — e.g. a concurrent service batch sharing the store — is
    served instead of re-simulated.  The worker's cache traffic comes back
    in ``"cache"`` so the parent can fold it into its own counters.
    """
    spec = ExperimentSpec.from_dict(payload["spec"])
    counters = {"hits": 0, "stores": 0}
    cache = None if spec.kind == "engine" else _worker_cache(payload.get("cache"))
    if cache is not None:
        hit = cache.get(spec)
        if hit is not None:
            counters["hits"] = 1
            return {"result": hit.to_dict(), "cache": counters}
    result = run_point(spec)
    if cache is not None:
        cache.put(result)
        counters["stores"] = 1
    return {"result": result.to_dict(), "cache": counters}


def _run_point_indexed(item: Tuple[int, Dict[str, Any]]) -> Tuple[int, Dict[str, Any]]:
    """Indexed worker entry point for unordered parallel completion."""
    index, payload = item
    return index, _run_point_payload(payload)


class SweepRunner:
    """Runs sweeps of experiment points, serially or in parallel.

    Parameters
    ----------
    jobs:
        Number of worker processes; ``1`` (the default) runs in-process.
    cache_dir:
        Directory for the on-disk result cache, or ``None`` to disable
        caching.  A string is turned into a :class:`ResultCache`.
    progress:
        Optional ``(completed, total, result)`` callback, invoked once per
        unique point as its result becomes available.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[Union[str, ResultCache]] = None,
        progress: Optional[ProgressFn] = None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        if isinstance(cache_dir, ResultCache):
            self.cache: Optional[ResultCache] = cache_dir
        elif cache_dir is not None:
            self.cache = ResultCache(cache_dir)
        else:
            self.cache = None
        self.progress = progress
        #: Every result produced through this runner, in completion order.
        self.history = ResultSet()

    # ------------------------------------------------------------------
    def run(
        self, sweep: Union[SweepSpec, ExperimentSpec, Sequence[ExperimentSpec]]
    ) -> ResultSet:
        """Execute every point of ``sweep``; returns results in point order.

        Duplicate points (same spec hash) are executed once and fanned back
        out, so e.g. a Figure 8 sweep that names the NI2w/memory baseline in
        several panels only simulates it once.
        """
        points = as_points(sweep)
        order: List[str] = []
        unique: Dict[str, ExperimentSpec] = {}
        for spec in points:
            key = spec.spec_hash()
            order.append(key)
            if key not in unique:
                unique[key] = spec

        # Memo levels: results already produced through this runner (e.g. a
        # previous figure's sweep sharing points), then the on-disk cache.
        # kind="engine" points are wall-clock measurements: serving them from
        # any memo would report stale throughput, so they always re-run.
        known = self.history.by_hash() if len(self.history) else {}
        resolved: Dict[str, RunResult] = {}
        pending: List[ExperimentSpec] = []
        for key, spec in unique.items():
            if spec.kind == "engine":
                pending.append(spec)
                continue
            hit = known.get(key)
            if hit is None and self.cache is not None:
                hit = self.cache.get(spec)
            if hit is not None:
                resolved[key] = hit
            else:
                pending.append(spec)

        total = len(unique)
        completed = 0
        for result in resolved.values():
            completed += 1
            if self.progress is not None:
                self.progress(completed, total, result)

        if self.jobs > 1 and len(pending) > 1:
            completions = self._run_parallel(pending)
        else:
            completions = ((spec, run_point(spec), None) for spec in pending)
        for spec, result, worker_stats in completions:
            resolved[spec.spec_hash()] = result
            if self.cache is not None and spec.kind != "engine":
                if worker_stats is None:
                    # Serial execution: this process writes the entry.
                    self.cache.put(result)
                else:
                    # The worker already wrote (or re-read) the entry; fold
                    # its counters in.  A worker hit means another process
                    # filled the key after our pre-check counted a miss —
                    # reclassify, so hits+misses still sum to one event per
                    # point and ``--jobs`` reports the same totals as serial.
                    self.cache.hits += worker_stats.get("hits", 0)
                    self.cache.misses -= worker_stats.get("hits", 0)
                    self.cache.stores += worker_stats.get("stores", 0)
            completed += 1
            if self.progress is not None:
                self.progress(completed, total, result)

        if self.cache is not None and hasattr(self.cache, "enforce_budget"):
            # Parallel workers never evict; settle the store's byte budget
            # once, here, with every fresh entry already landed.
            self.cache.enforce_budget()

        # History follows point order (not completion order) so the record
        # of a sweep is identical whether points came from cache, workers
        # or the local process.
        for key in unique:
            self._record(resolved[key])
        results = ResultSet([resolved[key] for key in order])
        results.cache_stats = self.cache_stats()
        return results

    def run_one(self, spec: ExperimentSpec) -> RunResult:
        """Run (or fetch from cache) a single point."""
        return self.run([spec])[0]

    # ------------------------------------------------------------------
    @staticmethod
    def _point_cost(spec: ExperimentSpec) -> float:
        """Rough relative wall-clock cost of one experiment point.

        Used only to order parallel work, so precision does not matter —
        just the gross ranking: macro (and engine) workload runs dwarf
        bandwidth streams, which dwarf latency ping-pongs, and each kind
        scales with its own size knob plus the number of nodes simulated.
        """
        nodes = max(1, spec.num_nodes)
        if spec.kind in ("macro", "engine"):
            return 1_000_000.0 * spec.scale * nodes
        if spec.kind == "bandwidth":
            return 1_000.0 * spec.messages * max(1, spec.message_bytes) / 256.0
        return 10.0 * spec.iterations * max(1, spec.message_bytes) / 256.0

    def _cache_descriptor(self) -> Optional[Dict[str, Any]]:
        """How a worker process should rebuild this runner's cache."""
        if self.cache is None:
            return None
        return {
            "directory": self.cache.directory,
            "sharded": hasattr(self.cache, "path_for_key"),
        }

    def _run_parallel(
        self, pending: Sequence[ExperimentSpec]
    ) -> Iterator[Tuple[ExperimentSpec, RunResult, Dict[str, int]]]:
        """Yield ``(spec, result, worker_cache_stats)`` as workers finish.

        ``imap_unordered`` streams completions (so progress callbacks fire
        per point, not after the whole batch); the caller re-keys results
        by spec hash, so completion order does not matter.  Points are fed
        to the pool most-expensive first: spec order tends to put the heavy
        macro points last, and a straggler macro point picked up when the
        rest of the pool is already draining serializes the whole tail.
        """
        cache_desc = self._cache_descriptor()
        payloads = [
            (index, {"spec": spec.to_dict(), "cache": cache_desc})
            for index, spec in enumerate(pending)
        ]
        payloads.sort(key=lambda item: self._point_cost(pending[item[0]]), reverse=True)
        workers = min(self.jobs, len(payloads))
        with multiprocessing.Pool(processes=workers) as pool:
            for index, data in pool.imap_unordered(_run_point_indexed, payloads):
                yield (
                    pending[index],
                    RunResult.from_dict(data["result"]),
                    data["cache"],
                )

    def _record(self, result: RunResult) -> None:
        self.history.append(result)

    def cache_stats(self) -> Dict[str, int]:
        return self.cache.stats() if self.cache is not None else {"hits": 0, "misses": 0}

    def __repr__(self) -> str:
        cache = self.cache.directory if self.cache is not None else None
        return f"<SweepRunner jobs={self.jobs} cache={cache!r} history={len(self.history)}>"
