"""Pluggable experiment-kind registry.

An experiment *kind* is one measurement recipe: how a validated
:class:`~repro.api.spec.ExperimentSpec` turns into metrics.  Kinds used to
be a frozen tuple in ``spec.py`` plus if/elif chains in ``runner.py``; this
module replaces that with a dispatch table so new scenario classes
(synthetic traffic, trace replay, plugins) register instead of editing the
core API — the same generative move the device (PR 3), fabric (PR 5),
protocol (PR 6) and workload registries make.

Each :class:`KindSpec` bundles the per-kind hooks:

``measure``
    ``spec -> metrics dict`` — the actual simulation entry point.
``validate``
    extra :meth:`ExperimentSpec.validate` checks (may raise ``SpecError``).
``describe``
    the human-readable "what" fragment of ``spec.describe()``.
``cost``
    rough relative wall-clock cost, used only to order parallel work.
``cacheable``
    ``False`` for wall-clock measurements (``engine``): serving them from
    any memo would report stale throughput, so they always re-run and are
    never written to a result store.
``folds_workload_schema`` / ``cache_token``
    widen the result-store key with :data:`WORKLOAD_SCHEMA_VERSION
    <repro.apps.registry.WORKLOAD_SCHEMA_VERSION>` (and an optional
    per-spec token, e.g. a trace-file digest).  Only the new kinds opt in;
    the four legacy kinds keep their exact pre-registry cache identity.

``KINDS`` stays importable from here (and re-exported by ``spec.py``) as a
*live* sequence view of the registered names, so historic
``spec.kind in KINDS`` checks and error messages keep working.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterator, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.spec import ExperimentSpec

MeasureFn = Callable[["ExperimentSpec"], Dict[str, float]]
SpecHook = Callable[["ExperimentSpec"], Any]


def _spec_error(message: str):
    # Lazy: spec.py imports KINDS from this module, so the exception class
    # must be fetched at raise time, not import time.
    from repro.api.spec import SpecError

    return SpecError(message)


@dataclass(frozen=True)
class KindSpec:
    """One registered experiment kind: its hooks and cache policy."""

    name: str
    measure: MeasureFn
    validate: Optional[SpecHook] = None
    describe: Optional[Callable[["ExperimentSpec"], str]] = None
    cost: Optional[Callable[["ExperimentSpec"], float]] = None
    cacheable: bool = True
    folds_workload_schema: bool = False
    cache_token: Optional[Callable[["ExperimentSpec"], str]] = None
    doc: str = ""


_REGISTRY: Dict[str, KindSpec] = {}  # repro: allow[MUTSTATE] import-time experiment-kind plugin registry
_BUILTIN: Tuple[str, ...] = ()  # repro: allow[MUTSTATE] sealed once at the end of this module


class _KindsView(Sequence):
    """Live, ordered, read-only view of the registered kind names.

    Prints like the historic tuple so error messages such as
    ``unknown experiment kind 'x'; choose from ('latency', ...)`` keep
    their shape.
    """

    __slots__ = ()

    def __getitem__(self, index):
        return tuple(_REGISTRY)[index]

    def __len__(self) -> int:
        return len(_REGISTRY)

    def __iter__(self) -> Iterator[str]:
        return iter(tuple(_REGISTRY))

    def __contains__(self, name: object) -> bool:
        return name in _REGISTRY

    def __repr__(self) -> str:
        return repr(tuple(_REGISTRY))

    def __eq__(self, other: object) -> bool:
        return tuple(_REGISTRY) == other

    def __hash__(self):
        return hash(tuple(_REGISTRY))


#: Measurement kinds understood by :func:`repro.api.runner.run_point`
#: (live view; see module docstring).
KINDS = _KindsView()


def register_kind(
    name: str,
    measure: Optional[MeasureFn] = None,
    *,
    validate: Optional[SpecHook] = None,
    describe: Optional[Callable[["ExperimentSpec"], str]] = None,
    cost: Optional[Callable[["ExperimentSpec"], float]] = None,
    cacheable: bool = True,
    folds_workload_schema: bool = False,
    cache_token: Optional[Callable[["ExperimentSpec"], str]] = None,
    doc: str = "",
    replace: bool = False,
):
    """Register an experiment kind; usable as decorator or direct call.

    Decorator form registers the decorated function as the ``measure``
    hook::

        @register_kind("powertrace", doc="per-cycle power estimate")
        def _measure_powertrace(spec):
            return {"watts": ...}

    Direct form takes the measure function as the second argument.
    Re-registering a name raises ``SpecError`` unless ``replace=True``;
    built-in kinds cannot be replaced or removed.
    """

    def install(measure_fn: MeasureFn) -> MeasureFn:
        if not name or not isinstance(name, str):
            raise _spec_error(f"experiment kind needs a non-empty string name, got {name!r}")
        if not callable(measure_fn):
            raise _spec_error(f"experiment kind {name!r} needs a callable measure hook")
        if name in _BUILTIN:
            raise _spec_error(f"cannot replace built-in experiment kind {name!r}")
        if name in _REGISTRY and not replace:
            raise _spec_error(
                f"experiment kind {name!r} is already registered "
                f"(pass replace=True to override)"
            )
        _REGISTRY[name] = KindSpec(
            name=name,
            measure=measure_fn,
            validate=validate,
            describe=describe,
            cost=cost,
            cacheable=cacheable,
            folds_workload_schema=folds_workload_schema,
            cache_token=cache_token,
            doc=doc or (measure_fn.__doc__ or "").strip().split("\n")[0],
        )
        return measure_fn

    if measure is not None:
        return install(measure)
    return install


def unregister_kind(name: str) -> None:
    """Remove a plugin kind (built-ins are protected)."""
    if name in _BUILTIN:
        raise _spec_error(f"cannot unregister built-in experiment kind {name!r}")
    if name not in _REGISTRY:
        raise _spec_error(f"unknown experiment kind {name!r}; choose from {KINDS}")
    del _REGISTRY[name]


def kind_spec(name: str) -> KindSpec:
    """The :class:`KindSpec` registered under ``name`` (SpecError if none)."""
    spec = _REGISTRY.get(name)
    if spec is None:
        raise _spec_error(f"unknown experiment kind {name!r}; choose from {KINDS}")
    return spec


def available_kinds() -> Dict[str, KindSpec]:
    """Registered kinds in registration order."""
    return dict(_REGISTRY)


def check_kind(name: str) -> None:
    """Membership check with the historic error message."""
    if name not in _REGISTRY:
        raise _spec_error(f"unknown experiment kind {name!r}; choose from {KINDS}")


def kind_cacheable(name: str) -> bool:
    """Whether results of this kind may be served from / written to a
    result store.  Unknown names default to cacheable (validation rejects
    them long before any cache is consulted)."""
    spec = _REGISTRY.get(name)
    return True if spec is None else spec.cacheable


def folds_workload_schema(name: Optional[str]) -> bool:
    """Whether this kind's cache identity includes the workload schema."""
    spec = _REGISTRY.get(name) if isinstance(name, str) else None
    return False if spec is None else spec.folds_workload_schema


def workload_schema_version() -> int:
    """The live workload schema stamp (looked up at call time so tests can
    monkeypatch :mod:`repro.apps.registry` and watch keys change)."""
    from repro.apps import registry as workload_registry

    return workload_registry.WORKLOAD_SCHEMA_VERSION


def cache_suffix(spec: "ExperimentSpec") -> str:
    """Extra cache-key components for ``spec``'s kind (empty for the four
    legacy kinds, whose keys must stay bit-identical to pre-registry)."""
    kind = _REGISTRY.get(spec.kind)
    if kind is None or not kind.folds_workload_schema:
        return ""
    suffix = f":workload-schema-{workload_schema_version()}"
    if kind.cache_token is not None:
        token = kind.cache_token(spec)
        if token:
            suffix += f":{token}"
    return suffix


def measure_point(spec: "ExperimentSpec") -> Dict[str, float]:
    """Dispatch ``spec`` to its kind's measure hook."""
    return kind_spec(spec.kind).measure(spec)


def validate_kind(spec: "ExperimentSpec") -> None:
    """Run the per-kind validation hook (no-op for hookless kinds)."""
    kind = kind_spec(spec.kind)
    if kind.validate is not None:
        kind.validate(spec)


def describe_point(spec: "ExperimentSpec") -> str:
    """The human-readable "what" fragment of ``spec.describe()``."""
    kind = _REGISTRY.get(spec.kind)
    if kind is not None and kind.describe is not None:
        return kind.describe(spec)
    return f"{spec.message_bytes} B"


def point_cost(spec: "ExperimentSpec") -> float:
    """Rough relative wall-clock cost of one experiment point.

    Used only to order parallel work, so precision does not matter — just
    the gross ranking: workload runs dwarf bandwidth streams, which dwarf
    latency ping-pongs.  Kinds without a cost hook are assumed heavy
    (workload-sized) so schedulers start them early.
    """
    kind = _REGISTRY.get(spec.kind)
    if kind is not None and kind.cost is not None:
        return kind.cost(spec)
    return 1_000_000.0 * spec.scale * max(1, spec.num_nodes)


# ----------------------------------------------------------------------
# Built-in kinds.  The measure hooks import their entry points lazily so
# that importing the API layer stays cheap and cycle-free; the validate
# hooks preserve the historic checks (and error messages) verbatim.
# ----------------------------------------------------------------------

def _validate_latency(spec: "ExperimentSpec") -> None:
    if spec.message_bytes <= 0:
        raise _spec_error("message_bytes must be positive")
    if spec.iterations < 1:
        raise _spec_error("latency experiments need at least one iteration")


def _validate_bandwidth(spec: "ExperimentSpec") -> None:
    if spec.message_bytes <= 0:
        raise _spec_error("message_bytes must be positive")
    if spec.messages < 1:
        raise _spec_error("bandwidth experiments need at least one message")


def _validate_macro(spec: "ExperimentSpec") -> None:
    from repro.apps import DIAGNOSTIC_WORKLOADS, MACROBENCHMARKS

    if spec.workload is None:
        raise _spec_error("macro experiments need a workload name")
    if spec.workload not in MACROBENCHMARKS and spec.workload not in DIAGNOSTIC_WORKLOADS:
        raise _spec_error(
            f"unknown workload {spec.workload!r}; choose from "
            f"{sorted(MACROBENCHMARKS) + sorted(DIAGNOSTIC_WORKLOADS)}"
        )
    if spec.scale <= 0:
        raise _spec_error("scale must be positive")


def _validate_traffic(spec: "ExperimentSpec") -> None:
    import repro.traffic  # noqa: F401 — registers the shipped patterns

    from repro.apps.registry import available_workloads

    if spec.workload is None:
        raise _spec_error("traffic experiments need a pattern (workload) name")
    info = available_workloads().get(spec.workload)
    if info is None or not ({"traffic", "fine-grain"} & set(info.tags)):
        patterns = sorted(available_workloads("traffic")) + sorted(
            available_workloads("fine-grain")
        )
        raise _spec_error(
            f"unknown traffic pattern {spec.workload!r}; choose from {patterns}"
        )
    if spec.scale <= 0:
        raise _spec_error("scale must be positive")


def _validate_replay(spec: "ExperimentSpec") -> None:
    import repro.trace  # noqa: F401 — registers the replay workload

    from repro.trace.format import TraceError, read_header

    trace_path = spec.workload_kwargs.get("trace")
    if not trace_path or not isinstance(trace_path, str):
        raise _spec_error(
            "replay experiments need workload_kwargs['trace'] "
            "(path to a recorded trace file)"
        )
    try:
        header = read_header(trace_path)
    except TraceError as exc:
        raise _spec_error(f"unreadable trace {trace_path!r}: {exc}") from None
    if header["num_nodes"] != spec.num_nodes:
        raise _spec_error(
            f"trace {trace_path!r} was recorded on {header['num_nodes']} nodes; "
            f"spec has num_nodes={spec.num_nodes}"
        )


def _describe_workload(spec: "ExperimentSpec") -> str:
    return f"{spec.workload} x{spec.scale:g} on {spec.num_nodes} nodes"


def _describe_replay(spec: "ExperimentSpec") -> str:
    trace_path = spec.workload_kwargs.get("trace", "?")
    return f"trace {trace_path} on {spec.num_nodes} nodes"


def _cost_latency(spec: "ExperimentSpec") -> float:
    return 10.0 * spec.iterations * max(1, spec.message_bytes) / 256.0


def _cost_bandwidth(spec: "ExperimentSpec") -> float:
    return 1_000.0 * spec.messages * max(1, spec.message_bytes) / 256.0


def _cost_workload(spec: "ExperimentSpec") -> float:
    return 1_000_000.0 * spec.scale * max(1, spec.num_nodes)


def _cost_replay(spec: "ExperimentSpec") -> float:
    # Replay skips the messaging-layer software path: markedly cheaper
    # than a fresh workload run of the same shape.
    return 100_000.0 * spec.scale * max(1, spec.num_nodes)


def _replay_cache_token(spec: "ExperimentSpec") -> str:
    from repro.trace.format import trace_digest

    return f"trace-{trace_digest(spec.workload_kwargs['trace'])}"


@register_kind(
    "latency",
    validate=_validate_latency,
    cost=_cost_latency,
    doc="Figure 6 round-trip latency microbenchmark",
)
def _measure_latency(spec: "ExperimentSpec") -> Dict[str, float]:
    from repro.api.runner import _run_latency

    return _run_latency(spec)


@register_kind(
    "bandwidth",
    validate=_validate_bandwidth,
    cost=_cost_bandwidth,
    doc="Figure 7 streaming bandwidth microbenchmark",
)
def _measure_bandwidth(spec: "ExperimentSpec") -> Dict[str, float]:
    from repro.api.runner import _run_bandwidth

    return _run_bandwidth(spec)


@register_kind(
    "macro",
    validate=_validate_macro,
    describe=_describe_workload,
    cost=_cost_workload,
    doc="Figure 8 macrobenchmark run",
)
def _measure_macro(spec: "ExperimentSpec") -> Dict[str, float]:
    from repro.api.runner import _run_macro

    return _run_macro(spec)


@register_kind(
    "engine",
    validate=_validate_macro,
    describe=_describe_workload,
    cost=_cost_workload,
    cacheable=False,
    doc="macro run measured for kernel throughput (wall-clock)",
)
def _measure_engine(spec: "ExperimentSpec") -> Dict[str, float]:
    from repro.api.runner import _run_engine

    return _run_engine(spec)


@register_kind(
    "traffic",
    validate=_validate_traffic,
    describe=_describe_workload,
    cost=_cost_workload,
    folds_workload_schema=True,
    doc="synthetic / fine-grain traffic pattern run",
)
def _measure_traffic(spec: "ExperimentSpec") -> Dict[str, float]:
    from repro.traffic.measure import run_traffic_point

    return run_traffic_point(spec)


@register_kind(
    "replay",
    validate=_validate_replay,
    describe=_describe_replay,
    cost=_cost_replay,
    folds_workload_schema=True,
    cache_token=_replay_cache_token,
    doc="message-level trace replay (sweep accelerator)",
)
def _measure_replay(spec: "ExperimentSpec") -> Dict[str, float]:
    from repro.trace.replay import run_replay_point

    return run_replay_point(spec)


_BUILTIN = tuple(_REGISTRY)
