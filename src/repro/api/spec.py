"""Declarative experiment specifications and sweeps.

An :class:`ExperimentSpec` fully describes one simulator run — the kind of
measurement (latency, bandwidth or a macrobenchmark), the device/bus
placement, machine size, message size or workload, and any device or
machine-parameter overrides.  Specs are plain data: they serialise to
canonical JSON, and :meth:`ExperimentSpec.spec_hash` over that canonical
form is the identity used by the result cache and for deterministic
per-point seeds.

A :class:`SweepSpec` is a family of points, either a full cartesian product
over named axes or an explicit point list.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence

from repro.api.kinds import check_kind, describe_point, validate_kind
from repro.common.types import BusKind

#: Version tag baked into every canonical form so that cache entries from
#: incompatible schema revisions never collide.
SPEC_VERSION = 1

#: Seed used when a macro spec does not pin one (the workloads' canonical
#: seed, matching :class:`repro.apps.workload.Workload`).
DEFAULT_WORKLOAD_SEED = 12345


class SpecError(ValueError):
    """Raised for malformed experiment specifications."""


def _freeze(value: Any) -> Any:
    """Normalise nested values into JSON-stable plain types."""
    if isinstance(value, Mapping):
        return {str(k): _freeze(value[k]) for k in sorted(value, key=str)}
    if isinstance(value, (list, tuple)):
        return [_freeze(v) for v in value]
    if isinstance(value, BusKind):
        return value.value
    return value


@dataclass(frozen=True)
class ExperimentSpec:
    """One point of the evaluation space.

    ``kind`` selects the measurement:

    * ``"latency"`` — Figure 6 round-trip latency microbenchmark
      (uses ``message_bytes``, ``iterations``, ``warmup``);
    * ``"bandwidth"`` — Figure 7 streaming bandwidth microbenchmark
      (uses ``message_bytes``, ``messages``, ``warmup``);
    * ``"macro"`` — one Figure 8 macrobenchmark run (uses ``workload``,
      ``scale``, ``workload_kwargs``);
    * ``"engine"`` — a macro run measured for *kernel throughput*
      (events/sec); same fields as ``"macro"``, wall-clock metrics.

    ``params`` holds :class:`~repro.common.params.MachineParams` overrides
    (e.g. ``{"sliding_window": 4}``), ``ni_kwargs`` device-constructor
    overrides (validated early, see :meth:`validate`).  ``seed`` defaults to
    a deterministic value derived from the spec hash so that every distinct
    point gets a distinct, reproducible seed.
    """

    kind: str = "latency"
    device: str = "CNI16Qm"
    bus: str = "memory"
    snarfing: bool = False
    num_nodes: int = 2
    message_bytes: int = 64
    iterations: int = 30
    messages: int = 100
    warmup: Optional[int] = None
    workload: Optional[str] = None
    scale: float = 1.0
    max_cycles: Optional[int] = None
    seed: Optional[int] = None
    workload_kwargs: Dict[str, Any] = field(default_factory=dict)
    ni_kwargs: Dict[str, Any] = field(default_factory=dict)
    params: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> "ExperimentSpec":
        """Check the spec for consistency, raising early.

        Taxonomy problems (unknown device, unsupported ``ni_kwargs``) raise
        :class:`~repro.ni.taxonomy.TaxonomyError`; everything else raises
        :class:`SpecError`.
        """
        from repro.ni.taxonomy import validate_ni_kwargs

        check_kind(self.kind)
        try:
            BusKind(self.bus)
        except ValueError:
            raise SpecError(f"unknown bus {self.bus!r}") from None
        if self.num_nodes < 2:
            raise SpecError("experiments need at least two nodes")
        # Per-kind checks come from the kind registry (the historic
        # latency/bandwidth/macro rules live on their KindSpecs now, with
        # identical messages); plugin kinds hook in the same way.
        validate_kind(self)
        # Early taxonomy validation against the device registry: any legal
        # taxonomy name resolves (registered or synthesized from primitives);
        # illegal names and unsupported device kwargs fail here, not sixteen
        # constructors deep in Node.__init__.
        validate_ni_kwargs(self.device, self.ni_kwargs)
        # Early machine-parameter validation, against *this* point's node
        # count: unknown fields, illegal values and fabric names that do
        # not fit the machine (e.g. "mesh4x4" with num_nodes=8) fail here,
        # with their own error types, not inside a worker process.
        if self.params:
            try:
                self.machine_params()
            except TypeError:
                from repro.common.params import DEFAULT_PARAMS

                known = {f.name for f in fields(DEFAULT_PARAMS)}
                unknown = sorted(set(self.params) - known)
                if not unknown:
                    # A known field with a value its validation rules
                    # cannot even compare (e.g. a string hop count): let
                    # the original TypeError name the real problem.
                    raise
                raise SpecError(
                    f"unknown MachineParams override(s) {unknown}"
                ) from None
        return self

    def machine_params(self):
        """The validated :class:`~repro.common.params.MachineParams` this
        point runs with.

        The spec's node count joins the overrides *before* validation so
        shape-dependent parameters (an explicit grid fabric such as
        ``"torus2x2"``) validate against the machine actually being built;
        an explicit ``params["num_nodes"]`` override still wins.  This is
        the one place the merge happens — the runner and
        :meth:`~repro.node.machine.Machine.from_spec` both call it.
        """
        from repro.common.params import DEFAULT_PARAMS

        return DEFAULT_PARAMS.with_overrides(
            **{"num_nodes": self.num_nodes, **self.params}
        )

    # ------------------------------------------------------------------
    # Canonical form, hashing, seeds
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-compatible), suitable for ``from_dict``."""
        out: Dict[str, Any] = {}
        for f in fields(self):
            out[f.name] = _freeze(getattr(self, f.name))
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise SpecError(f"unknown ExperimentSpec fields {sorted(unknown)}")
        return cls(**dict(data))

    def canonical(self) -> str:
        """Canonical JSON encoding (sorted keys, version-tagged)."""
        payload = {"spec_version": SPEC_VERSION}
        payload.update(self.to_dict())
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def spec_hash(self) -> str:
        """Stable hex digest identifying this point (cache key)."""
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()

    def resolved_seed(self) -> int:
        """The seed actually passed to workload construction.

        Explicit ``seed`` wins, then a ``seed`` inside ``workload_kwargs``,
        then the canonical workload seed.  The default is deliberately NOT
        derived from the full spec hash: two specs that differ only in
        device/bus placement must run the *same* problem instance, or
        speedups over the baseline would compare different workloads.
        """
        if self.seed is not None:
            return self.seed
        if "seed" in self.workload_kwargs:
            return int(self.workload_kwargs["seed"])
        return DEFAULT_WORKLOAD_SEED

    def resolved_warmup(self) -> int:
        """Warm-up rounds: explicit, or the per-kind default."""
        if self.warmup is not None:
            return self.warmup
        return 8 if self.kind == "latency" else 16

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    @property
    def config(self) -> str:
        """The figure-panel series key, e.g. ``"CNI16Qm@memory"``."""
        suffix = "+snarf" if self.snarfing else ""
        return f"{self.device}@{self.bus}{suffix}"

    def with_overrides(self, **overrides: Any) -> "ExperimentSpec":
        """A copy of this spec with the given fields replaced."""
        return replace(self, **overrides)

    def describe(self) -> str:
        return f"{self.kind}[{self.config}] {describe_point(self)}"


@dataclass
class SweepSpec:
    """A family of experiment points.

    Either a cartesian product of ``axes`` over a ``base`` spec (axis names
    are :class:`ExperimentSpec` field names), or an explicit ``points``
    list.  Iterating a sweep yields validated :class:`ExperimentSpec`\\ s.
    """

    base: ExperimentSpec = field(default_factory=ExperimentSpec)
    axes: Dict[str, Sequence[Any]] = field(default_factory=dict)
    points: Optional[List[ExperimentSpec]] = None
    name: str = ""

    @classmethod
    def cartesian(
        cls, base: ExperimentSpec, name: str = "", **axes: Sequence[Any]
    ) -> "SweepSpec":
        """Full cartesian product of the given axes over ``base``."""
        field_names = {f.name for f in fields(ExperimentSpec)}
        unknown = set(axes) - field_names
        if unknown:
            raise SpecError(f"unknown sweep axes {sorted(unknown)}")
        return cls(base=base, axes={k: list(v) for k, v in axes.items()}, name=name)

    @classmethod
    def explicit(cls, points: Sequence[ExperimentSpec], name: str = "") -> "SweepSpec":
        """An explicit, ordered list of points."""
        return cls(points=list(points), name=name)

    def expand(self) -> List[ExperimentSpec]:
        """The ordered list of points this sweep describes (validated)."""
        if self.points is not None:
            return [p.validate() for p in self.points]
        if not self.axes:
            return [self.base.validate()]
        names = list(self.axes)
        out: List[ExperimentSpec] = []
        for combo in itertools.product(*(self.axes[n] for n in names)):
            out.append(self.base.with_overrides(**dict(zip(names, combo))).validate())
        return out

    def __iter__(self) -> Iterator[ExperimentSpec]:
        return iter(self.expand())

    def __len__(self) -> int:
        if self.points is not None:
            return len(self.points)
        if not self.axes:
            return 1
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def sweep_hash(self) -> str:
        """Stable digest over the (expanded) point hashes."""
        digest = hashlib.sha256()
        for spec in self.expand():
            digest.update(spec.spec_hash().encode("ascii"))
        return digest.hexdigest()

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"name": self.name}
        if self.points is not None:
            out["points"] = [p.to_dict() for p in self.points]
        else:
            out["base"] = self.base.to_dict()
            out["axes"] = _freeze(self.axes)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        if "points" in data:
            return cls.explicit(
                [ExperimentSpec.from_dict(p) for p in data["points"]],
                name=data.get("name", ""),
            )
        return cls(
            base=ExperimentSpec.from_dict(data.get("base", {})),
            axes={k: list(v) for k, v in data.get("axes", {}).items()},
            name=data.get("name", ""),
        )


def as_points(
    sweep: "SweepSpec | ExperimentSpec | Sequence[ExperimentSpec]",
) -> List[ExperimentSpec]:
    """Normalise any sweep-like argument into a validated point list."""
    if isinstance(sweep, ExperimentSpec):
        return [sweep.validate()]
    if isinstance(sweep, SweepSpec):
        return sweep.expand()
    points = list(sweep)
    for point in points:
        if not isinstance(point, ExperimentSpec):
            raise SpecError(f"not an ExperimentSpec: {point!r}")
    return [p.validate() for p in points]
