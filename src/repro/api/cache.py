"""On-disk JSON result cache keyed by experiment-spec hash.

Each cached point is one small JSON file ``<kind>-<key>.json`` under the
cache directory, so repeated figure regeneration skips the simulation
entirely.  The key mixes the spec's own hash with the device-registry
schema version (:data:`repro.ni.registry.DEVICE_SCHEMA_VERSION`) and the
fabric-registry schema version
(:data:`repro.network.registry.FABRIC_SCHEMA_VERSION`) and the coherence
protocol schema version
(:data:`repro.coherence.protocols.PROTOCOL_SCHEMA_VERSION`): a spec only
*names* its device, fabric and protocol, so when the rules that assemble
a device — or time a fabric, or transition a cache — change, every cached
sweep result silently computed under the old rules must stop matching.  Corrupt or stale-schema entries
are treated as misses and rewritten; the cache is safe to delete at any
time.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, Optional

from repro.api.results import RunResult
from repro.api.spec import ExperimentSpec
from repro.coherence.protocols import PROTOCOL_SCHEMA_VERSION
from repro.network.registry import FABRIC_SCHEMA_VERSION
from repro.ni.registry import DEVICE_SCHEMA_VERSION

#: Default cache location (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"


def _repro_version() -> str:
    """The simulator version entries are stamped with (lazy import: the
    top-level package imports this module)."""
    from repro import __version__

    return __version__


class ResultCache:
    """A directory of memoised :class:`RunResult` records."""

    def __init__(self, directory: str = DEFAULT_CACHE_DIR):
        self.directory = directory
        self.hits = 0
        self.misses = 0

    def cache_key(self, spec: ExperimentSpec) -> str:
        """Spec hash widened with the device, fabric and protocol schema
        versions."""
        payload = (
            f"{spec.spec_hash()}:device-schema-{DEVICE_SCHEMA_VERSION}"
            f":fabric-schema-{FABRIC_SCHEMA_VERSION}"
            f":protocol-schema-{PROTOCOL_SCHEMA_VERSION}"
        )
        return hashlib.sha256(payload.encode("ascii")).hexdigest()

    def path_for(self, spec: ExperimentSpec) -> str:
        return os.path.join(self.directory, f"{spec.kind}-{self.cache_key(spec)}.json")

    def get(self, spec: ExperimentSpec) -> Optional[RunResult]:
        """The cached result for ``spec``, or None on a miss."""
        path = self.path_for(spec)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            result = RunResult.from_dict(payload)
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            # Unreadable, or parseable JSON of the wrong shape: a miss.
            self.misses += 1
            return None
        if payload.get("repro_version") != _repro_version():
            # Computed by a different simulator revision: the spec may hash
            # the same, but the numbers could be stale.  Treat as a miss so
            # the point is re-simulated and the entry rewritten.
            self.misses += 1
            return None
        if payload.get("device_schema_version") != DEVICE_SCHEMA_VERSION:
            # Devices were assembled under different construction rules
            # (belt-and-braces beside the schema-versioned cache key, for
            # entries whose filename was produced by other means).
            self.misses += 1
            return None
        if payload.get("fabric_schema_version") != FABRIC_SCHEMA_VERSION:
            # Fabric timing semantics changed since this entry was written.
            self.misses += 1
            return None
        if payload.get("protocol_schema_version") != PROTOCOL_SCHEMA_VERSION:
            # Coherence transition rules changed since this entry was written.
            self.misses += 1
            return None
        if result.spec.spec_hash() != spec.spec_hash():
            # Hash collision in the filename or a hand-edited entry.
            self.misses += 1
            return None
        self.hits += 1
        result.cached = True
        return result

    def put(self, result: RunResult) -> str:
        """Persist ``result``; returns the file path written."""
        os.makedirs(self.directory, exist_ok=True)
        path = self.path_for(result.spec)
        payload = result.to_dict()
        payload["repro_version"] = _repro_version()
        payload["device_schema_version"] = DEVICE_SCHEMA_VERSION
        payload["fabric_schema_version"] = FABRIC_SCHEMA_VERSION
        payload["protocol_schema_version"] = PROTOCOL_SCHEMA_VERSION
        # Write-rename so a crashed run never leaves a torn JSON file.
        fd, tmp_path = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return path

    def clear(self) -> int:
        """Remove every cache entry; returns the number deleted."""
        removed = 0
        try:
            names = os.listdir(self.directory)
        except OSError:
            return 0
        for name in names:
            if name.endswith(".json"):
                try:
                    os.unlink(os.path.join(self.directory, name))
                    removed += 1
                except OSError:
                    pass
        return removed

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}

    def __repr__(self) -> str:
        return f"<ResultCache {self.directory!r} hits={self.hits} misses={self.misses}>"
