"""On-disk JSON result cache keyed by experiment-spec hash.

Each cached point is one small JSON file ``<kind>-<key>.json`` under the
cache directory, so repeated figure regeneration skips the simulation
entirely.  The key mixes the spec's own hash with the device-registry
schema version (:data:`repro.ni.registry.DEVICE_SCHEMA_VERSION`) and the
fabric-registry schema version
(:data:`repro.network.registry.FABRIC_SCHEMA_VERSION`) and the coherence
protocol schema version
(:data:`repro.coherence.protocols.PROTOCOL_SCHEMA_VERSION`): a spec only
*names* its device, fabric and protocol, so when the rules that assemble
a device — or time a fabric, or transition a cache — change, every cached
sweep result silently computed under the old rules must stop matching.  Corrupt or stale-schema entries
are treated as misses and rewritten; the cache is safe to delete at any
time.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, Optional

from repro.api.results import RunResult
from repro.api.spec import ExperimentSpec
from repro.coherence.protocols import PROTOCOL_SCHEMA_VERSION
from repro.network.registry import FABRIC_SCHEMA_VERSION
from repro.ni.registry import DEVICE_SCHEMA_VERSION

#: Default cache location (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"


def _repro_version() -> str:
    """The simulator version entries are stamped with (lazy import: the
    top-level package imports this module)."""
    from repro import __version__

    return __version__


def encode_entry(result: RunResult) -> Dict:
    """``result`` as a cache-entry payload, stamped with every schema version
    the entry's validity depends on.

    Kinds that opt in via the kind registry (traffic, replay) additionally
    carry the workload schema stamp; legacy kinds do not grow the field, so
    their entries stay byte-identical to pre-registry ones.
    """
    from repro.api.kinds import folds_workload_schema, workload_schema_version

    payload = result.to_dict()
    payload["repro_version"] = _repro_version()
    payload["device_schema_version"] = DEVICE_SCHEMA_VERSION
    payload["fabric_schema_version"] = FABRIC_SCHEMA_VERSION
    payload["protocol_schema_version"] = PROTOCOL_SCHEMA_VERSION
    if folds_workload_schema(result.spec.kind):
        payload["workload_schema_version"] = workload_schema_version()
    return payload


def entry_is_current(payload: Dict) -> bool:
    """Whether an entry payload was written under the live schema versions.

    ``repro_version`` guards against a different simulator revision: the spec
    may hash the same, but the numbers could be stale.  The schema stamps are
    belt-and-braces beside the schema-versioned cache key, for entries whose
    filename was produced by other means.
    """
    from repro.api.kinds import folds_workload_schema, workload_schema_version

    current = (
        payload.get("repro_version") == _repro_version()
        and payload.get("device_schema_version") == DEVICE_SCHEMA_VERSION
        and payload.get("fabric_schema_version") == FABRIC_SCHEMA_VERSION
        and payload.get("protocol_schema_version") == PROTOCOL_SCHEMA_VERSION
    )
    if not current:
        return False
    spec_payload = payload.get("spec")
    kind = spec_payload.get("kind") if isinstance(spec_payload, dict) else None
    if folds_workload_schema(kind):
        return payload.get("workload_schema_version") == workload_schema_version()
    return True


def decode_entry(payload: Dict, spec: Optional[ExperimentSpec] = None) -> Optional[RunResult]:
    """Decode a cache-entry payload into a :class:`RunResult`, or ``None``.

    ``None`` means the entry must be treated as a miss: the payload has the
    wrong shape, was written under stale schema versions, or (when ``spec``
    is given) records a different spec — a hash collision in the filename or
    a hand-edited entry.
    """
    try:
        result = RunResult.from_dict(payload)
    except (ValueError, KeyError, TypeError, AttributeError):
        return None
    if not entry_is_current(payload):
        return None
    if spec is not None and result.spec.spec_hash() != spec.spec_hash():
        return None
    return result


def read_entry(path: str) -> Optional[Dict]:
    """The JSON payload at ``path``, or ``None`` if unreadable/torn."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def write_entry_atomic(path: str, payload: Dict) -> bytes:
    """Serialise ``payload`` to ``path`` via tempfile + ``os.replace``.

    The write-rename means a crashed or racing writer never leaves a torn
    JSON file: concurrent writers of the same key each land a complete
    entry, last rename wins.  Returns the exact bytes written, so callers
    can derive content digests (ETags) without re-reading the file.
    """
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    data = json.dumps(payload, sort_keys=True).encode("utf-8")
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return data


class ResultCache:
    """A directory of memoised :class:`RunResult` records."""

    def __init__(self, directory: str = DEFAULT_CACHE_DIR):
        self.directory = directory
        self.hits = 0
        self.misses = 0
        #: Entries written through this instance (surfaced by the service
        #: store's ``stats()``; plain cache ``stats()`` stays hits/misses).
        self.stores = 0

    def cache_key(self, spec: ExperimentSpec) -> str:
        """Spec hash widened with the device, fabric and protocol schema
        versions — plus, for kinds whose results depend on how workloads
        are *generated* (traffic, replay), the workload schema version and
        any per-spec token (a trace-file digest).  Legacy kinds get the
        exact historic key."""
        from repro.api.kinds import cache_suffix

        payload = (
            f"{spec.spec_hash()}:device-schema-{DEVICE_SCHEMA_VERSION}"
            f":fabric-schema-{FABRIC_SCHEMA_VERSION}"
            f":protocol-schema-{PROTOCOL_SCHEMA_VERSION}"
            f"{cache_suffix(spec)}"
        )
        return hashlib.sha256(payload.encode("ascii")).hexdigest()

    def path_for(self, spec: ExperimentSpec) -> str:
        return os.path.join(self.directory, f"{spec.kind}-{self.cache_key(spec)}.json")

    def get(self, spec: ExperimentSpec) -> Optional[RunResult]:
        """The cached result for ``spec``, or None on a miss."""
        payload = read_entry(self.path_for(spec))
        result = decode_entry(payload, spec) if payload is not None else None
        if result is None:
            self.misses += 1
            return None
        self.hits += 1
        result.cached = True
        return result

    def put(self, result: RunResult) -> str:
        """Persist ``result``; returns the file path written."""
        path = self.path_for(result.spec)
        write_entry_atomic(path, encode_entry(result))
        self.stores += 1
        return path

    def clear(self) -> int:
        """Remove every cache entry; returns the number deleted."""
        removed = 0
        try:
            names = os.listdir(self.directory)
        except OSError:
            return 0
        for name in names:
            if name.endswith(".json"):
                try:
                    os.unlink(os.path.join(self.directory, name))
                    removed += 1
                except OSError:
                    pass
        return removed

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}

    def __repr__(self) -> str:
        return f"<ResultCache {self.directory!r} hits={self.hits} misses={self.misses}>"
