"""Canonical sweeps for the paper's evaluation, expressed as specs.

These builders turn the device/bus/size axes of Figures 6–8 into
:class:`~repro.api.spec.SweepSpec` point lists, and provide the derived
views (speedups over the NI2w/memory baseline, bus-occupancy reductions)
computed from a :class:`~repro.api.results.ResultSet`.  Both the
``repro.experiments`` figure generators and the benchmark suite build on
them, so "a new experiment" is a new spec list — not a new script.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api.results import ResultSet
from repro.api.spec import ExperimentSpec, SpecError, SweepSpec

#: The NI2w-on-the-memory-bus configuration every speedup is relative to.
BASELINE_CONFIG: Tuple[str, str] = ("NI2w", "memory")


def latency_sweep(
    configs: Sequence[Tuple[str, str]],
    sizes: Sequence[int],
    iterations: int = 30,
    warmup: Optional[int] = None,
    snarfing: bool = False,
    name: str = "latency",
) -> SweepSpec:
    """Figure-6-style sweep: round-trip latency over (device, bus) × size."""
    points = [
        ExperimentSpec(
            kind="latency",
            device=device,
            bus=bus,
            message_bytes=size,
            iterations=iterations,
            warmup=warmup,
            snarfing=snarfing,
        )
        for device, bus in configs
        for size in sizes
    ]
    return SweepSpec.explicit(points, name=name)


def bandwidth_sweep(
    configs: Sequence[Tuple[str, str]],
    sizes: Sequence[int],
    messages: int = 100,
    warmup: Optional[int] = None,
    snarfing: bool = False,
    name: str = "bandwidth",
) -> SweepSpec:
    """Figure-7-style sweep: streaming bandwidth over (device, bus) × size."""
    points = [
        ExperimentSpec(
            kind="bandwidth",
            device=device,
            bus=bus,
            message_bytes=size,
            messages=messages,
            warmup=warmup,
            snarfing=snarfing,
        )
        for device, bus in configs
        for size in sizes
    ]
    return SweepSpec.explicit(points, name=name)


def macro_sweep(
    workloads: Sequence[str],
    configs: Sequence[Tuple[str, str]],
    num_nodes: int = 16,
    scale: float = 1.0,
    workload_kwargs: Optional[Mapping[str, Mapping[str, Any]]] = None,
    include_baseline: bool = True,
    name: str = "macro",
) -> SweepSpec:
    """Figure-8-style sweep: workloads × (device, bus) macrobenchmark runs.

    ``workload_kwargs`` maps workload name to that workload's constructor
    overrides.  When ``include_baseline`` is set, the NI2w/memory baseline
    is prepended per workload (deduplicated by the runner if it already
    appears among ``configs``).
    """
    per_workload = dict(workload_kwargs or {})
    points: List[ExperimentSpec] = []
    for workload in workloads:
        kwargs = dict(per_workload.get(workload, {}))
        all_configs = list(configs)
        if include_baseline and BASELINE_CONFIG not in all_configs:
            all_configs = [BASELINE_CONFIG] + all_configs
        for device, bus in all_configs:
            points.append(
                ExperimentSpec(
                    kind="macro",
                    device=device,
                    bus=bus,
                    num_nodes=num_nodes,
                    workload=workload,
                    scale=scale,
                    workload_kwargs=kwargs,
                )
            )
    return SweepSpec.explicit(points, name=name)


def engine_sweep(
    workloads: Sequence[str],
    configs: Sequence[Tuple[str, str]],
    num_nodes: int = 8,
    scale: float = 0.25,
    workload_kwargs: Optional[Mapping[str, Mapping[str, Any]]] = None,
    name: str = "engine",
) -> SweepSpec:
    """Kernel-throughput sweep: workloads × (device, bus), kind="engine".

    Each point runs the macro workload while profiling the simulation
    kernel; metrics are events/sec and scheduling-structure statistics.
    The metrics are wall-clock measurements, so run these points without
    the on-disk result cache.
    """
    per_workload = dict(workload_kwargs or {})
    points: List[ExperimentSpec] = []
    for workload in workloads:
        kwargs = dict(per_workload.get(workload, {}))
        for device, bus in configs:
            points.append(
                ExperimentSpec(
                    kind="engine",
                    device=device,
                    bus=bus,
                    num_nodes=num_nodes,
                    workload=workload,
                    scale=scale,
                    workload_kwargs=kwargs,
                )
            )
    return SweepSpec.explicit(points, name=name)


#: Device-name template per taxonomy family, used by
#: :func:`device_space_sweep` (``{n}`` is the exposed size).
DEVICE_FAMILIES: Dict[str, str] = {
    "NIw": "NI{n}w",      # uncached, word-exposed (CM-5/Alewife style)
    "NI": "NI{n}",        # uncached, block-exposed, implicit pointers
    "NIQ": "NI{n}Q",      # uncached, explicit pointers (*T-NG style)
    "CNI": "CNI{n}",      # cachable device registers
    "CNIQ": "CNI{n}Q",    # device-homed cachable queues
    "CNIQm": "CNI{n}Qm",  # memory-homed receive queues
}


def device_space_sweep(
    kind: str = "bandwidth",
    families: Sequence[str] = ("NIQ", "CNIQ"),
    sizes: Sequence[int] = (4, 16, 64, 128, 512),
    bus: str = "memory",
    workload: Optional[str] = None,
    name: str = "device_space",
    **point_overrides: Any,
) -> SweepSpec:
    """A sweep across the *generative* device space of the taxonomy.

    Where the figure sweeps compare the paper's five point designs, this
    preset scales whole families — by default queue-size scaling 4 → 512
    blocks for both the uncoherent ``NI{n}Q`` and coherent ``CNI{n}Q``
    explicit-queue families.  ``families`` takes keys of
    :data:`DEVICE_FAMILIES`, ``sizes`` the exposed sizes (blocks, or words
    for ``NIw``).  Every generated name is validated against the device
    registry when the sweep expands, so illegal points (e.g. a 6-block
    queue) fail fast with a :class:`~repro.ni.taxonomy.TaxonomyError`.

    ``kind`` selects the measurement as usual; macro sweeps need a
    ``workload``.  Extra keyword arguments become
    :class:`~repro.api.spec.ExperimentSpec` field overrides shared by all
    points.
    """
    unknown = set(families) - set(DEVICE_FAMILIES)
    if unknown:
        raise SpecError(
            f"unknown device families {sorted(unknown)}; "
            f"choose from {sorted(DEVICE_FAMILIES)}"
        )
    if workload is not None:
        point_overrides.setdefault("workload", workload)
    points = [
        ExperimentSpec(
            kind=kind,
            device=DEVICE_FAMILIES[family].format(n=size),
            bus=bus,
            **point_overrides,
        )
        for family in families
        for size in sizes
    ]
    return SweepSpec.explicit(points, name=name)


#: Fabrics the scalability preset compares by default: the paper's ideal
#: model against a contended 2D mesh (auto-shaped per node count).
SCALABILITY_FABRICS: Tuple[str, ...] = ("ideal", "mesh")

#: Node counts of the scalability sweep: the paper's 16-node machine
#: bracketed from 4 to 64 nodes.
SCALABILITY_NODE_COUNTS: Tuple[int, ...] = (4, 8, 16, 32, 64)

#: The Figure-8 communication-bound macro trio (Table 3): one-to-all
#: broadcasts (gauss), bursty fine-grain updates (em3d) and hot-spot
#: request/reply traffic (appbt).
MACRO_TRIO: Tuple[str, ...] = ("gauss", "em3d", "appbt")

#: Device/bus points the network-axis presets compare by default: one
#: representative per taxonomy family — uncached words (NI2w), cachable
#: device registers (CNI4) and the best cachable queue (CNI16Qm).
FAMILY_CONFIGS: Tuple[Tuple[str, str], ...] = (
    ("NI2w", "memory"),
    ("CNI4", "memory"),
    ("CNI16Qm", "memory"),
)


def scalability_sweep(
    workloads: Sequence[str] = MACRO_TRIO,
    configs: Sequence[Tuple[str, str]] = (("CNI16Qm", "memory"),),
    node_counts: Sequence[int] = SCALABILITY_NODE_COUNTS,
    fabrics: Sequence[str] = SCALABILITY_FABRICS,
    scale: float = 1.0,
    workload_kwargs: Optional[Mapping[str, Mapping[str, Any]]] = None,
    include_baseline: bool = True,
    params: Optional[Mapping[str, Any]] = None,
    name: str = "scalability",
) -> SweepSpec:
    """Node-count scalability: the fig8 macro trio regenerated per scale.

    The paper's evaluation is pinned at 16 nodes on an idealized network;
    this preset asks the question its taxonomy begs — how do the device
    conclusions hold up as the machine grows?  Every ``fabric`` ×
    ``node count`` cell re-runs the macro workloads for each configuration
    (plus the NI2w/memory baseline when ``include_baseline`` is set, so
    per-cell speedups are computable via :func:`speedups` on the filtered
    subset).  Grid fabric names without explicit dims (``"mesh"``)
    auto-shape to each node count, which is what lets one sweep span
    4 → 64 nodes.  ``params`` adds machine-parameter overrides shared by
    all points (the fabric name is layered on top).
    """
    per_workload = dict(workload_kwargs or {})
    base_params = dict(params or {})
    all_configs = list(configs)
    if include_baseline and BASELINE_CONFIG not in all_configs:
        all_configs = [BASELINE_CONFIG] + all_configs
    points: List[ExperimentSpec] = []
    for fabric in fabrics:
        for num_nodes in node_counts:
            for workload in workloads:
                kwargs = dict(per_workload.get(workload, {}))
                for device, bus in all_configs:
                    points.append(
                        ExperimentSpec(
                            kind="macro",
                            device=device,
                            bus=bus,
                            num_nodes=num_nodes,
                            workload=workload,
                            scale=scale,
                            workload_kwargs=kwargs,
                            params={**base_params, "fabric": fabric},
                        )
                    )
    return SweepSpec.explicit(points, name=name)


#: Reference point for :func:`network_sensitivity_sweep`'s latency axis:
#: the paper's 100-cycle network with the default 8-cycle grid hop.
_REFERENCE_LATENCY = 100
_REFERENCE_HOP = 8


def network_sensitivity_sweep(
    workloads: Sequence[str] = ("gauss",),
    configs: Sequence[Tuple[str, str]] = FAMILY_CONFIGS,
    latencies: Sequence[int] = (25, 100, 400),
    fabrics: Sequence[str] = ("ideal", "xbar", "mesh"),
    num_nodes: int = 16,
    scale: float = 0.5,
    workload_kwargs: Optional[Mapping[str, Mapping[str, Any]]] = None,
    params: Optional[Mapping[str, Any]] = None,
    name: str = "network_sensitivity",
) -> SweepSpec:
    """Network sensitivity: latency × topology × device family.

    Sweeps how much each device family's advantage depends on the network
    the paper idealized.  The latency axis scales the whole network
    together: each value sets ``network_latency_cycles`` (the ideal/xbar
    wire latency) and scales ``fabric_hop_cycles`` proportionally from the
    100-cycle/8-cycle reference, so "a 4x slower network" means 4x on
    every fabric rather than only on the topology-free ones.
    """
    per_workload = dict(workload_kwargs or {})
    base_params = dict(params or {})
    points: List[ExperimentSpec] = []
    for fabric in fabrics:
        for latency in latencies:
            hop = max(1, round(_REFERENCE_HOP * latency / _REFERENCE_LATENCY))
            point_params = {
                **base_params,
                "fabric": fabric,
                "network_latency_cycles": latency,
                "fabric_hop_cycles": hop,
            }
            for workload in workloads:
                kwargs = dict(per_workload.get(workload, {}))
                for device, bus in configs:
                    points.append(
                        ExperimentSpec(
                            kind="macro",
                            device=device,
                            bus=bus,
                            num_nodes=num_nodes,
                            workload=workload,
                            scale=scale,
                            workload_kwargs=kwargs,
                            params=point_params,
                        )
                    )
    return SweepSpec.explicit(points, name=name)


#: Fault plans the chaos presets sweep by default: the paper-faithful
#: fault-free baseline plus the canonical 1 %-drop + reorder plan.
FAULT_PLANS: Tuple[str, ...] = ("zero", "lossy1")


def fault_sweep(
    workloads: Sequence[str] = ("gauss",),
    configs: Sequence[Tuple[str, str]] = (("CNI4Q", "memory"),),
    plans: Sequence[str] = FAULT_PLANS,
    seeds: Sequence[int] = (0,),
    fabric: str = "mesh",
    num_nodes: int = 16,
    scale: float = 1.0,
    workload_kwargs: Optional[Mapping[str, Mapping[str, Any]]] = None,
    params: Optional[Mapping[str, Any]] = None,
    name: str = "faults",
) -> SweepSpec:
    """Fault-parameterized macro sweep: workloads × configs × plans × seeds.

    Every point runs on a real topology (``fabric``, default mesh — fault
    injection on the ideal fabric exercises nothing interesting) with the
    named fault plan and seed.  Lossy plans automatically enable the
    reliable messaging layer so the workload can complete through
    retransmission; non-lossy plans (``zero``, ``jitter``) leave it off,
    keeping their results directly comparable to fault-free goldens.
    """
    from repro.faults import resolve_plan

    per_workload = dict(workload_kwargs or {})
    base_params = dict(params or {})
    points: List[ExperimentSpec] = []
    for plan in plans:
        lossy = resolve_plan(plan).is_lossy()
        for seed in seeds:
            point_params = {
                **base_params,
                "fabric": fabric,
                "faults": plan,
                "fault_seed": seed,
            }
            if lossy:
                point_params["reliable_messaging"] = True
            for workload in workloads:
                kwargs = dict(per_workload.get(workload, {}))
                for device, bus in configs:
                    points.append(
                        ExperimentSpec(
                            kind="macro",
                            device=device,
                            bus=bus,
                            num_nodes=num_nodes,
                            workload=workload,
                            scale=scale,
                            workload_kwargs=kwargs,
                            params=point_params,
                        )
                    )
    return SweepSpec.explicit(points, name=name)


#: Coherence protocols the kit ships (see :mod:`repro.coherence.protocols`):
#: the paper's MOESI baseline, the classic invalidate family, and the
#: home-node directory variant.  Plugin tables join a sweep by passing an
#: explicit ``protocols=`` list.
SHIPPED_PROTOCOLS: Tuple[str, ...] = ("moesi", "mesi", "msi", "illinois", "dir-msi")


def protocol_sweep(
    workloads: Sequence[str] = MACRO_TRIO,
    configs: Sequence[Tuple[str, str]] = (("CNI16Qm", "memory"),),
    protocols: Sequence[str] = SHIPPED_PROTOCOLS,
    num_nodes: int = 16,
    scale: float = 1.0,
    workload_kwargs: Optional[Mapping[str, Mapping[str, Any]]] = None,
    params: Optional[Mapping[str, Any]] = None,
    name: str = "protocols",
) -> SweepSpec:
    """Coherence-protocol axis: the fig8 macro trio per rule table.

    The paper fixes MOESI; this preset re-runs each macro workload ×
    configuration cell under every requested protocol table so the cost of
    the protocol itself (dirty sharing vs memory reflection, broadcast vs
    directory filtering) is directly comparable.  ``protocols`` accepts any
    registered table name — including plugin tables registered with
    :func:`repro.coherence.protocols.register_protocol` — and each name is
    validated when the sweep's points validate their machine parameters.
    ``params`` adds machine-parameter overrides shared by all points (the
    protocol name is layered on top).
    """
    per_workload = dict(workload_kwargs or {})
    base_params = dict(params or {})
    points: List[ExperimentSpec] = []
    for protocol in protocols:
        for workload in workloads:
            kwargs = dict(per_workload.get(workload, {}))
            for device, bus in configs:
                points.append(
                    ExperimentSpec(
                        kind="macro",
                        device=device,
                        bus=bus,
                        num_nodes=num_nodes,
                        workload=workload,
                        scale=scale,
                        workload_kwargs=kwargs,
                        params={**base_params, "protocol": protocol},
                    )
                )
    return SweepSpec.explicit(points, name=name)


def traffic_sweep(
    patterns: Optional[Sequence[str]] = None,
    configs: Sequence[Tuple[str, str]] = (BASELINE_CONFIG, ("CNI16Qm", "memory")),
    num_nodes: int = 16,
    scale: float = 1.0,
    workload_kwargs: Optional[Mapping[str, Mapping[str, Any]]] = None,
    params: Optional[Mapping[str, Any]] = None,
    name: str = "traffic",
) -> SweepSpec:
    """Synthetic-traffic axis: registered patterns × (device, bus).

    ``patterns`` defaults to every workload registered under the
    ``"traffic"`` and ``"fine-grain"`` tags — the synthetic generators
    (uniform, hotspot, transpose, bursty) plus the modern fine-grain
    patterns (allreduce, halo, psrpc, kv).  Each point runs
    ``kind="traffic"`` and reports network-centric metrics (delivered
    bandwidth, message rate, grid hop/contention totals) alongside the
    usual occupancies, so device and fabric choices can be compared under
    controlled load instead of a full application.
    """
    if patterns is None:
        import repro.traffic  # noqa: F401 — register the shipped patterns

        from repro.apps import workload_names

        patterns = workload_names("traffic") + workload_names("fine-grain")
    per_pattern = dict(workload_kwargs or {})
    base_params = dict(params or {})
    points: List[ExperimentSpec] = []
    for pattern in patterns:
        kwargs = dict(per_pattern.get(pattern, {}))
        for device, bus in configs:
            points.append(
                ExperimentSpec(
                    kind="traffic",
                    device=device,
                    bus=bus,
                    num_nodes=num_nodes,
                    workload=pattern,
                    scale=scale,
                    workload_kwargs=kwargs,
                    params=dict(base_params),
                )
            )
    return SweepSpec.explicit(points, name=name)


def speedups(
    results: ResultSet,
    workload: str,
    baseline: Tuple[str, str] = BASELINE_CONFIG,
) -> Dict[str, float]:
    """Per-config speedup over the baseline for one workload.

    Returns ``{"<device>@<bus>": speedup}`` from the macro results present
    in ``results``; raises ``KeyError`` if the baseline run is missing.
    """
    runs = results.filter(kind="macro", workload=workload)
    base_key = f"{baseline[0]}@{baseline[1]}"
    by_config = {r.spec.config: r.metrics["cycles"] for r in runs}
    if base_key not in by_config:
        raise KeyError(f"baseline run {base_key} missing for workload {workload!r}")
    base_cycles = by_config[base_key]
    return {
        config: (base_cycles / cycles if cycles > 0 else 0.0)
        for config, cycles in by_config.items()
    }


def occupancy_reductions(
    results: ResultSet,
    workload: str,
    baseline: Tuple[str, str] = BASELINE_CONFIG,
    metric: str = "memory_bus_occupancy",
) -> Dict[str, float]:
    """Fractional bus-occupancy reduction vs the baseline, per device.

    Only configurations on the baseline's bus are compared (occupancy on a
    different bus is not an apples-to-apples reduction).
    """
    runs = results.filter(kind="macro", workload=workload, bus=baseline[1])
    by_device = {r.spec.device: r.metrics[metric] for r in runs}
    if baseline[0] not in by_device:
        raise KeyError(f"baseline run {baseline[0]}@{baseline[1]} missing for {workload!r}")
    base = by_device[baseline[0]]
    out: Dict[str, float] = {}
    for device, occupancy in by_device.items():
        out[device] = 0.0 if base <= 0 else 1.0 - occupancy / base
    return out


def paper_tables() -> Dict[str, List[Dict[str, object]]]:
    """Tables 1–4 as structured rows, keyed ``"table1"`` … ``"table4"``."""
    from repro.experiments import tables

    return {
        "table1": tables.table1_device_summary(),
        "table2": tables.table2_bus_occupancy(),
        "table3": tables.table3_macrobenchmarks(),
        "table4": tables.table4_related_work(),
    }
