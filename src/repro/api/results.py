"""Structured experiment results: one record per point, sets with algebra.

:class:`RunResult` pairs a spec with the metrics the simulator produced for
it; :class:`ResultSet` is an ordered collection with filtering, pivoting
into figure panels, and lossless JSON (de)serialisation.  Together they
subsume the ad-hoc ``LatencyResult``/``BandwidthResult``/``MacroRunResult``
records the per-experiment modules still expose for compatibility.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence

from repro.api.spec import ExperimentSpec, SpecError

#: Schema version written into every serialised result document.
RESULTS_VERSION = 1

#: The headline metric reported per experiment kind when no explicit
#: ``value`` is requested from :meth:`ResultSet.pivot`.
PRIMARY_METRIC = {
    "latency": "round_trip_us",
    "bandwidth": "relative_bandwidth",
    "macro": "cycles",
}


@dataclass(eq=False)
class RunResult:
    """Outcome of running one :class:`ExperimentSpec`.

    ``metrics`` holds the kind-specific measurements (see
    :data:`PRIMARY_METRIC` for the headline key per kind).  ``elapsed_s``
    and ``cached`` describe *how* the result was obtained and are excluded
    from equality, hashing and the cache key.

    ``error`` is set (and ``metrics`` left empty) when the point could not
    be computed — the worker crashed, timed out, or the simulation raised —
    and every retry was exhausted.  Failed results flow through sweeps and
    batches like any other point so one sick spec cannot wedge its
    siblings, but they are never written to the result cache.
    """

    spec: ExperimentSpec
    metrics: Dict[str, float] = field(default_factory=dict)
    elapsed_s: float = 0.0
    cached: bool = False
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the point actually produced metrics."""
        return self.error is None

    @property
    def value(self) -> float:
        """The headline metric for this result's kind."""
        return self.metrics[PRIMARY_METRIC[self.spec.kind]]

    def get(self, key: str, default: Optional[float] = None) -> Optional[float]:
        return self.metrics.get(key, default)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RunResult):
            return NotImplemented
        return (
            self.spec == other.spec
            and self.metrics == other.metrics
            and self.error == other.error
        )

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "spec": self.spec.to_dict(),
            "metrics": dict(self.metrics),
            "elapsed_s": self.elapsed_s,
            "cached": self.cached,
        }
        if self.error is not None:
            # Only failed results carry the key, so documents written before
            # the field existed round-trip byte-identically.
            out["error"] = self.error
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        return cls(
            spec=ExperimentSpec.from_dict(data["spec"]),
            metrics=dict(data.get("metrics", {})),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
            cached=bool(data.get("cached", False)),
            error=data.get("error"),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        return cls.from_dict(json.loads(text))

    def __repr__(self) -> str:
        if self.error is not None:
            return f"<RunResult {self.spec.describe()} FAILED: {self.error}>"
        return f"<RunResult {self.spec.describe()} value={self.value:.4g}>"


def _spec_key(result: RunResult, name: str) -> Any:
    """Resolve a pivot/filter key against a result's spec (or ``config``)."""
    if name == "config":
        return result.spec.config
    if hasattr(result.spec, name):
        return getattr(result.spec, name)
    raise SpecError(f"unknown spec field {name!r}")


class ResultSet:
    """An ordered collection of :class:`RunResult` records."""

    def __init__(self, results: Optional[Sequence[RunResult]] = None):
        self.results: List[RunResult] = list(results or [])
        #: Cache/store traffic for the sweep that produced this set, filled
        #: in by :meth:`~repro.api.runner.SweepRunner.run` (``None`` when
        #: the set was built by hand or loaded from JSON).  Under ``--jobs``
        #: this already includes the worker processes' aggregated counters.
        self.cache_stats: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------
    # Collection protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[RunResult]:
        return iter(self.results)

    def __getitem__(self, index: int) -> RunResult:
        return self.results[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultSet):
            return NotImplemented
        return self.results == other.results

    def append(self, result: RunResult) -> None:
        self.results.append(result)

    def extend(self, results: "ResultSet | Sequence[RunResult]") -> None:
        self.results.extend(results)

    def merge(self, other: "ResultSet") -> "ResultSet":
        """A new set with the other's points appended, deduplicated by hash."""
        seen = {r.spec.spec_hash() for r in self.results}
        merged = list(self.results)
        merged.extend(r for r in other if r.spec.spec_hash() not in seen)
        return ResultSet(merged)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def filter(
        self,
        predicate: Optional[Callable[[RunResult], bool]] = None,
        **criteria: Any,
    ) -> "ResultSet":
        """Results whose spec fields match ``criteria`` (and ``predicate``).

        A criterion value may be a scalar (equality) or a collection
        (membership): ``results.filter(kind="latency", device=("NI2w",))``.
        """
        out = []
        for result in self.results:
            if predicate is not None and not predicate(result):
                continue
            ok = True
            for name, want in criteria.items():
                have = _spec_key(result, name)
                if isinstance(want, (list, tuple, set, frozenset)):
                    ok = have in want
                else:
                    ok = have == want
                if not ok:
                    break
            if ok:
                out.append(result)
        return ResultSet(out)

    def values(self, metric: Optional[str] = None) -> List[float]:
        if metric is None:
            return [r.value for r in self.results]
        return [r.metrics[metric] for r in self.results]

    def pivot(
        self,
        series: str = "config",
        x: str = "message_bytes",
        value: Optional[str] = None,
    ) -> Dict[Any, Dict[Any, float]]:
        """Reshape into ``{series_key: {x_key: metric}}`` figure panels.

        ``series``/``x`` name spec fields (or the synthetic ``"config"``
        key); ``value`` names a metric, defaulting to each result's
        headline metric.  Later results win on key collisions.
        """
        panel: Dict[Any, Dict[Any, float]] = {}
        for result in self.results:
            y = result.value if value is None else result.metrics[value]
            panel.setdefault(_spec_key(result, series), {})[_spec_key(result, x)] = y
        return panel

    def by_hash(self) -> Dict[str, RunResult]:
        return {r.spec.spec_hash(): r for r in self.results}

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "results_version": RESULTS_VERSION,
            "results": [r.to_dict() for r in self.results],
        }
        if self.cache_stats is not None:
            out["cache_stats"] = dict(self.cache_stats)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ResultSet":
        version = data.get("results_version", RESULTS_VERSION)
        if version != RESULTS_VERSION:
            raise SpecError(f"unsupported results_version {version!r}")
        out = cls([RunResult.from_dict(r) for r in data.get("results", [])])
        stats = data.get("cache_stats")
        if stats is not None:
            out.cache_stats = dict(stats)
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ResultSet":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "ResultSet":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def __repr__(self) -> str:
        kinds: Dict[str, int] = {}
        for result in self.results:
            kinds[result.spec.kind] = kinds.get(result.spec.kind, 0) + 1
        summary = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
        return f"<ResultSet {len(self.results)} results ({summary})>"
