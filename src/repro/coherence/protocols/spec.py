"""Declarative rule tables for bus-based cache-coherence protocols.

A :class:`ProtocolSpec` captures everything :class:`~repro.coherence.cache.
CoherentCache` needs to drive its state machine — and everything
:mod:`repro.coherence.modelcheck` needs to *prove* the table safe — in one
table-shaped value:

* which :class:`~repro.common.types.CoherenceState` members the protocol
  uses, and which of them are *dirty* (must be written back on eviction)
  and *writable* (a processor store hits silently, without bus traffic),
* how a requester fills a block after each kind of bus transaction
  (ordered ``(condition, state)`` rules; the first matching condition
  wins — ``"memory_unshared"``, ``"unshared"`` or ``"always"``),
* how every ``(state, bus op)`` pair reacts to a snooped transaction
  (:class:`SnoopRule`: next state, data supply, shared assertion,
  memory reflection, or a protocol violation),
* the ``Unsafe`` predicates the model checker must prove unreachable,
  written as expressions over per-state cache counts (``"M >= 2"``).

The same table drives both the timing simulation and the reachability
checker, so "the protocol the checker verified" and "the protocol the
caches run" cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from repro.common.types import BusOp, CoherenceState


class ProtocolError(ValueError):
    """Raised for malformed or unknown protocol tables."""


#: Fill conditions a requester may test after its bus transaction, in the
#: vocabulary the model checker can also evaluate abstractly.
#:
#: ``"memory_unshared"``  data came from memory and no snooper asserted
#:                        shared (MOESI/MESI exclusive fill),
#: ``"unshared"``         no snooper asserted shared, regardless of the
#:                        data source (Illinois exclusive fill),
#: ``"always"``           unconditional (must terminate every fill list).
FILL_CONDITIONS = ("memory_unshared", "unshared", "always")

#: An ordered tuple of ``(condition, next_state)`` fill rules.
FillRules = Tuple[Tuple[str, CoherenceState], ...]


@dataclass(frozen=True)
class SnoopRule:
    """Reaction of one cached state to one snooped bus operation.

    ``forbidden`` marks a ``(state, op)`` pair that a correct protocol can
    never observe (e.g. a writeback snooped while we hold the block dirty:
    two dirty owners).  The cache raises
    :class:`~repro.coherence.cache.CacheError` if it fires; the model
    checker reports any reachable forbidden rule as a safety violation.
    """

    next_state: CoherenceState
    supplies_data: bool = False
    shared: bool = False
    #: The snooped transaction reflects our dirty data back to memory as a
    #: side effect (MESI/MSI M->S downgrades).  Timing-neutral; used by the
    #: dirty-data-loss tracking of the model checker and for statistics.
    writes_back: bool = False
    forbidden: Optional[str] = None


@dataclass(frozen=True)
class Unsafe:
    """A named safety predicate over per-state cache counts.

    ``expr`` is a python expression over the one-letter state names
    (``M``, ``O``, ``E``, ``S``) bound to the number of caches holding the
    block in that state, e.g. ``"M >= 2"`` or ``"M >= 1 and S + O >= 1"``.
    Keep thresholds at 2 or below and comparisons monotone (``>=``): the
    checker's counter abstraction tracks exact counts only up to its
    saturation bound.
    """

    name: str
    expr: str


@dataclass(frozen=True)
class ProtocolSpec:
    """One coherence protocol as a declarative rule table."""

    name: str
    description: str = ""
    #: States the protocol uses (must include INVALID).
    states: Tuple[CoherenceState, ...] = (
        CoherenceState.INVALID,
        CoherenceState.SHARED,
        CoherenceState.MODIFIED,
    )
    #: States that hold data newer than the block's home.
    dirty_states: FrozenSet[CoherenceState] = frozenset({CoherenceState.MODIFIED})
    #: States a store hits silently (no bus transaction).
    writable_states: FrozenSet[CoherenceState] = frozenset({CoherenceState.MODIFIED})
    #: Requester fill after a READ_SHARED miss.
    read_fill: FillRules = (("always", CoherenceState.SHARED),)
    #: Silent store-hit transitions, keyed by current state.  Must cover at
    #: least every writable state (e.g. MESI's silent E->M).
    write_hit_next: Dict[CoherenceState, CoherenceState] = field(
        default_factory=lambda: {CoherenceState.MODIFIED: CoherenceState.MODIFIED}
    )
    #: Requester fill after an UPGRADE from a valid (non-writable) state,
    #: and after the full-block-write UPGRADE from INVALID.
    write_upgrade_fill: FillRules = (("always", CoherenceState.MODIFIED),)
    #: Requester fill after a write miss.
    write_miss_fill: FillRules = (("always", CoherenceState.MODIFIED),)
    #: Bus operation a write miss issues.
    write_miss_op: BusOp = BusOp.READ_EXCLUSIVE
    #: Reactions to snooped transactions; missing ``(state, op)`` pairs
    #: leave the state unchanged and answer nothing.
    snoop_rules: Dict[Tuple[CoherenceState, BusOp], SnoopRule] = field(default_factory=dict)
    #: Home-node directory protocol: the interconnect consults only the
    #: block's recorded owner/sharers instead of broadcasting the snoop.
    directory: bool = False
    #: Protocol-specific safety predicates, on top of the checker's
    #: built-in writer-exclusivity and dirty-data-loss invariants.
    unsafe: Tuple[Unsafe, ...] = ()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> "ProtocolSpec":
        """Structural validation; raises :class:`ProtocolError`."""
        if not self.name:
            raise ProtocolError("protocol needs a non-empty name")
        states = set(self.states)
        if CoherenceState.INVALID not in states:
            raise ProtocolError(f"{self.name}: states must include INVALID")
        if len(states) < 2:
            raise ProtocolError(f"{self.name}: needs at least one valid state")
        for label, subset in (
            ("dirty_states", self.dirty_states),
            ("writable_states", self.writable_states),
        ):
            extra = set(subset) - states
            if extra:
                raise ProtocolError(f"{self.name}: {label} {sorted(s.value for s in extra)} "
                                    f"not in states")
            if CoherenceState.INVALID in subset:
                raise ProtocolError(f"{self.name}: INVALID cannot be in {label}")
        missing = set(self.writable_states) - set(self.write_hit_next)
        if missing:
            raise ProtocolError(
                f"{self.name}: writable states {sorted(s.value for s in missing)} "
                f"lack a write_hit_next entry"
            )
        for label, rules in (
            ("read_fill", self.read_fill),
            ("write_upgrade_fill", self.write_upgrade_fill),
            ("write_miss_fill", self.write_miss_fill),
        ):
            self._check_fill(label, rules, states)
        for (state, op), rule in self.snoop_rules.items():
            if state not in states or state is CoherenceState.INVALID:
                raise ProtocolError(f"{self.name}: snoop rule on invalid state {state!r}")
            if not isinstance(op, BusOp):
                raise ProtocolError(f"{self.name}: snoop rule keyed by non-BusOp {op!r}")
            if rule.next_state not in states:
                raise ProtocolError(
                    f"{self.name}: snoop rule ({state.value}, {op.value}) -> "
                    f"{rule.next_state!r} leaves the state set"
                )
        for state, nxt in self.write_hit_next.items():
            if state not in states or nxt not in states:
                raise ProtocolError(f"{self.name}: write_hit_next {state!r}->{nxt!r} "
                                    f"leaves the state set")
        if self.directory:
            # The directory infers the requester's membership from the bus
            # op alone (fills happen after the transaction completes), so
            # directory tables must fill deterministically: S on reads,
            # M on writes — i.e. MSI-shaped.
            for label, rules, want in (
                ("read_fill", self.read_fill, CoherenceState.SHARED),
                ("write_upgrade_fill", self.write_upgrade_fill, CoherenceState.MODIFIED),
                ("write_miss_fill", self.write_miss_fill, CoherenceState.MODIFIED),
            ):
                if rules != (("always", want),):
                    raise ProtocolError(
                        f"{self.name}: directory protocols need unconditional "
                        f"{label}=(('always', {want.value!r}),); got {rules!r}"
                    )
        for predicate in self.unsafe:
            self._compile_unsafe(predicate)
        return self

    def _check_fill(self, label: str, rules: FillRules, states) -> None:
        if not rules:
            raise ProtocolError(f"{self.name}: {label} must have at least one rule")
        for condition, state in rules:
            if condition not in FILL_CONDITIONS:
                raise ProtocolError(
                    f"{self.name}: {label} condition {condition!r} not one of "
                    f"{FILL_CONDITIONS}"
                )
            if state not in states or state is CoherenceState.INVALID:
                raise ProtocolError(f"{self.name}: {label} fills illegal state {state!r}")
        if rules[-1][0] != "always":
            raise ProtocolError(f"{self.name}: {label} must end with an 'always' rule")

    def _compile_unsafe(self, predicate: Unsafe):
        """Compile one Unsafe expression; raises ProtocolError if malformed."""
        try:
            code = compile(predicate.expr, f"<unsafe:{predicate.name}>", "eval")
        except SyntaxError as exc:
            raise ProtocolError(
                f"{self.name}: unsafe predicate {predicate.name!r} does not "
                f"parse: {exc}"
            ) from exc
        letters = {state.value for state in self.states if state is not CoherenceState.INVALID}
        unknown = set(code.co_names) - letters
        if unknown:
            raise ProtocolError(
                f"{self.name}: unsafe predicate {predicate.name!r} references "
                f"{sorted(unknown)}; only state letters {sorted(letters)} are bound"
            )
        return code

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def valid_states(self) -> Tuple[CoherenceState, ...]:
        return tuple(s for s in self.states if s is not CoherenceState.INVALID)

    def describe(self) -> str:
        kind = "directory" if self.directory else "snooping"
        letters = "".join(s.value for s in self.states)
        return f"{self.name}: {letters} ({kind}) — {self.description}"

    def __repr__(self) -> str:
        return f"<ProtocolSpec {self.name} states={''.join(s.value for s in self.states)}>"
