"""Registry of coherence-protocol rule tables.

Mirrors the device registry (:mod:`repro.ni.registry`) and the fabric
registry (:mod:`repro.network.registry`): built-in tables register at
import, plugins register at runtime under their spec's name, and
:data:`PROTOCOL_SCHEMA_VERSION` is folded into the result-cache key so
cached sweep results computed under older transition rules stop matching
when the rules change.

Plugins use the plain call or the decorator form::

    register_protocol(my_spec)

    @register_protocol
    def dragon() -> ProtocolSpec:
        return ProtocolSpec(name="dragon", ...)

The decorator registers the *built* spec and rebinds the function name to
it, so ``dragon`` is the :class:`ProtocolSpec` afterwards.
"""

from __future__ import annotations

import functools
from typing import Callable, Dict, Tuple, Union

from repro.coherence.protocols.spec import ProtocolError, ProtocolSpec

#: Bump when ProtocolSpec semantics or any built-in table changes in a way
#: that alters simulated behaviour; stale cached results stop matching.
PROTOCOL_SCHEMA_VERSION = 1

_BUILTIN: Dict[str, ProtocolSpec] = {}  # repro: allow[MUTSTATE] import-time protocol plugin registry
_REGISTRY: Dict[str, ProtocolSpec] = {}  # repro: allow[MUTSTATE] import-time protocol plugin registry


def register_protocol(
    spec: Union[ProtocolSpec, Callable[[], ProtocolSpec], None] = None,
    *,
    replace: bool = False,
):
    """Register a protocol table under ``spec.name``.

    Accepts a :class:`ProtocolSpec` directly, or decorates a zero-argument
    builder function (the spec it returns is registered and returned).
    ``replace=True`` allows shadowing an existing name; built-ins shadowed
    this way are restored by :func:`unregister_protocol`.
    """
    if spec is None:
        return functools.partial(register_protocol, replace=replace)
    if not isinstance(spec, ProtocolSpec):
        if not callable(spec):
            raise ProtocolError(f"register_protocol expects a ProtocolSpec, got {spec!r}")
        built = spec()
        if not isinstance(built, ProtocolSpec):
            raise ProtocolError(
                f"@register_protocol builder {spec!r} returned {built!r}, "
                f"not a ProtocolSpec"
            )
        return register_protocol(built, replace=replace)
    spec.validate()
    if spec.name in _REGISTRY and not replace:
        raise ProtocolError(
            f"protocol {spec.name!r} is already registered "
            f"(pass replace=True to shadow it)"
        )
    _REGISTRY[spec.name] = spec
    return spec


def _register_builtin(spec: ProtocolSpec) -> ProtocolSpec:
    spec.validate()
    _BUILTIN[spec.name] = spec
    _REGISTRY[spec.name] = spec
    return spec


def unregister_protocol(name: str) -> None:
    """Remove a registered protocol; shadowed built-ins are restored."""
    if name not in _REGISTRY:
        raise ProtocolError(f"protocol {name!r} is not registered")
    if name in _BUILTIN:
        _REGISTRY[name] = _BUILTIN[name]
    else:
        del _REGISTRY[name]


def protocol_spec(name: str) -> ProtocolSpec:
    """The registered table for ``name``; raises :class:`ProtocolError`."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ProtocolError(
            f"unknown coherence protocol {name!r}; registered: {known}"
        ) from None


def available_protocols() -> Tuple[ProtocolSpec, ...]:
    """Every registered table, sorted by name."""
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def is_builtin(name: str) -> bool:
    return name in _BUILTIN and _REGISTRY.get(name) is _BUILTIN[name]
