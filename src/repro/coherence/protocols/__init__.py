"""Pluggable coherence-protocol kit: declarative rule tables + registry.

``CoherentCache`` drives every state transition from the active
:class:`ProtocolSpec` (selected by ``MachineParams.protocol``), and
:mod:`repro.coherence.modelcheck` exhaustively verifies the same tables'
safety invariants.  See the README's "Coherence protocols" section for the
rule-table grammar and the plugin how-to.
"""

from repro.coherence.protocols.registry import (
    PROTOCOL_SCHEMA_VERSION,
    available_protocols,
    is_builtin,
    protocol_spec,
    register_protocol,
    unregister_protocol,
)
from repro.coherence.protocols.spec import (
    FILL_CONDITIONS,
    ProtocolError,
    ProtocolSpec,
    SnoopRule,
    Unsafe,
)

# Importing the tables module registers the built-in protocols.
from repro.coherence.protocols import tables as _tables  # noqa: F401  (registration side effect)

__all__ = [
    "PROTOCOL_SCHEMA_VERSION",
    "FILL_CONDITIONS",
    "ProtocolError",
    "ProtocolSpec",
    "SnoopRule",
    "Unsafe",
    "available_protocols",
    "is_builtin",
    "protocol_spec",
    "register_protocol",
    "unregister_protocol",
]
