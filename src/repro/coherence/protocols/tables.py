"""The shipped protocol tables: MOESI, MESI, MSI, Illinois and dir-msi.

The MOESI table transcribes the transitions that were hardwired into
:class:`~repro.coherence.cache.CoherentCache` before the protocol kit
existed; ``tests/test_device_golden.py`` pins it bit-identical to that
implementation.  The other snooping tables are the classic write-invalidate
family from Sweazey & Smith / Papamarcos & Patel, and ``dir-msi`` is the
MSI table flagged for home-node directory filtering (the interconnect
consults the recorded owner/sharer set instead of broadcasting).
"""

from __future__ import annotations

from repro.coherence.protocols.registry import _register_builtin
from repro.coherence.protocols.spec import ProtocolSpec, SnoopRule, Unsafe
from repro.common.types import BusOp, CoherenceState

I = CoherenceState.INVALID
S = CoherenceState.SHARED
E = CoherenceState.EXCLUSIVE
O = CoherenceState.OWNED  # noqa: E741 - the canonical MOESI letter
M = CoherenceState.MODIFIED

RS = BusOp.READ_SHARED
RE = BusOp.READ_EXCLUSIVE
UP = BusOp.UPGRADE
WB = BusOp.WRITEBACK

_TWO_DIRTY = "snooped writeback of a block we own dirty"


def _invalidate_on_writes(*states):
    """READ_EXCLUSIVE / UPGRADE reactions shared by the invalidate-based
    tables: every valid copy drops to INVALID; dirty states supply the data
    on a READ_EXCLUSIVE (the requester needs it), upgrades carry no data."""
    rules = {}
    for state in states:
        dirty = state in (M, O)
        rules[(state, RE)] = SnoopRule(I, supplies_data=dirty)
        rules[(state, UP)] = SnoopRule(I)
    return rules


MOESI = _register_builtin(ProtocolSpec(
    name="moesi",
    description="five-state write-invalidate with dirty sharing (paper baseline)",
    states=(I, S, E, O, M),
    dirty_states=frozenset({M, O}),
    writable_states=frozenset({M, E}),
    read_fill=(("memory_unshared", E), ("always", S)),
    write_hit_next={M: M, E: M},
    snoop_rules={
        # A snooped read demotes M to O (dirty sharing: memory stays stale,
        # we keep supplying), E to S; dirty holders supply the data.
        (M, RS): SnoopRule(O, supplies_data=True, shared=True),
        (O, RS): SnoopRule(O, supplies_data=True, shared=True),
        (E, RS): SnoopRule(S, supplies_data=True, shared=True),
        (S, RS): SnoopRule(S, shared=True),
        **_invalidate_on_writes(M, O, E, S),
        (M, WB): SnoopRule(M, forbidden=_TWO_DIRTY),
        (O, WB): SnoopRule(O, forbidden=_TWO_DIRTY),
    },
    unsafe=(
        Unsafe("two modified owners", "M >= 2"),
        Unsafe("two dirty-sharing owners", "O >= 2"),
        Unsafe("modified beside other copies", "M >= 1 and S + E + O >= 1"),
    ),
))


MESI = _register_builtin(ProtocolSpec(
    name="mesi",
    description="four-state write-invalidate; dirty data reflects to memory on sharing",
    states=(I, S, E, M),
    dirty_states=frozenset({M}),
    writable_states=frozenset({M, E}),
    read_fill=(("memory_unshared", E), ("always", S)),
    write_hit_next={M: M, E: M},
    snoop_rules={
        # No OWNED state: a snooped read of our M copy writes the data back
        # to memory as it supplies it, and everyone ends up SHARED clean.
        (M, RS): SnoopRule(S, supplies_data=True, shared=True, writes_back=True),
        (E, RS): SnoopRule(S, supplies_data=True, shared=True),
        (S, RS): SnoopRule(S, shared=True),
        **_invalidate_on_writes(M, E, S),
        (M, WB): SnoopRule(M, forbidden=_TWO_DIRTY),
    },
    unsafe=(
        Unsafe("two modified owners", "M >= 2"),
        Unsafe("modified beside other copies", "M >= 1 and S + E >= 1"),
    ),
))


MSI = _register_builtin(ProtocolSpec(
    name="msi",
    description="three-state write-invalidate; every fill is SHARED",
    states=(I, S, M),
    dirty_states=frozenset({M}),
    writable_states=frozenset({M}),
    read_fill=(("always", S),),
    write_hit_next={M: M},
    snoop_rules={
        (M, RS): SnoopRule(S, supplies_data=True, shared=True, writes_back=True),
        (S, RS): SnoopRule(S, shared=True),
        **_invalidate_on_writes(M, S),
        (M, WB): SnoopRule(M, forbidden=_TWO_DIRTY),
    },
    unsafe=(
        Unsafe("two modified owners", "M >= 2"),
        Unsafe("modified beside shared copies", "M >= 1 and S >= 1"),
    ),
))


ILLINOIS = _register_builtin(ProtocolSpec(
    name="illinois",
    description="MESI variant: cache-to-cache supply from clean copies, "
                "exclusive fill whenever no snooper asserts shared",
    states=(I, S, E, M),
    dirty_states=frozenset({M}),
    writable_states=frozenset({M, E}),
    # Illinois decides E vs S purely from the shared line: data may come
    # cache-to-cache and the fill is still EXCLUSIVE if nobody shares.
    read_fill=(("unshared", E), ("always", S)),
    write_hit_next={M: M, E: M},
    snoop_rules={
        (M, RS): SnoopRule(S, supplies_data=True, shared=True, writes_back=True),
        (E, RS): SnoopRule(S, supplies_data=True, shared=True),
        # The distinguishing Illinois feature: clean SHARED copies also
        # supply (one responder wins arbitration on the real bus).
        (S, RS): SnoopRule(S, supplies_data=True, shared=True),
        **_invalidate_on_writes(M, E, S),
        (M, WB): SnoopRule(M, forbidden=_TWO_DIRTY),
    },
    unsafe=(
        Unsafe("two modified owners", "M >= 2"),
        Unsafe("modified beside other copies", "M >= 1 and S + E >= 1"),
    ),
))


DIR_MSI = _register_builtin(ProtocolSpec(
    name="dir-msi",
    description="MSI with a home-node directory: owner/sharer lookups "
                "replace broadcast snoops",
    states=(I, S, M),
    dirty_states=frozenset({M}),
    writable_states=frozenset({M}),
    read_fill=(("always", S),),
    write_hit_next={M: M},
    snoop_rules={
        (M, RS): SnoopRule(S, supplies_data=True, shared=True, writes_back=True),
        (S, RS): SnoopRule(S, shared=True),
        **_invalidate_on_writes(M, S),
        (M, WB): SnoopRule(M, forbidden=_TWO_DIRTY),
    },
    directory=True,
    unsafe=(
        Unsafe("two modified owners", "M >= 2"),
        Unsafe("modified beside shared copies", "M >= 1 and S >= 1"),
    ),
))
