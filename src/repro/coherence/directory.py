"""Home-node directory for directory-filtered coherence protocols.

Under a snooping protocol every attached agent observes every coherent
transaction.  A directory protocol (``ProtocolSpec.directory=True``, e.g.
``dir-msi``) instead keeps, per block, the recorded *owner* (last agent to
take the block exclusively) and *sharer set* (agents that filled it
shared), and the interconnect consults only those agents plus the block's
home.  This trades a ``directory_lookup_cycles`` occupancy penalty per
transaction for snoop traffic that no longer scales with the number of
attached agents.

The directory is deliberately conservative and self-healing:

* Silent local drops (clean evictions, ``invalidate_block``) leave stale
  entries behind; they are pruned lazily the next time the block is looked
  up, by probing the recorded agent's actual state.  Consulting a stale
  holder would be harmless (its snoop finds nothing), so pruning is an
  optimisation, not a correctness requirement.
* The home agent is always consulted — it never caches, its ``snoop`` only
  keeps statistics (memory) or is a no-op (device home agents), and this
  keeps memory-side counters identical to the broadcast protocols.

Directory tables are restricted by :meth:`ProtocolSpec.validate` to
MSI-shaped fills, so the requester's new membership is implied by the bus
op alone: READ_SHARED adds a sharer, READ_EXCLUSIVE/UPGRADE installs an
owner, WRITEBACK removes the writer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.common.types import BusOp, BusTransaction, CoherenceState


class _DirEntry:
    __slots__ = ("owner", "sharers")

    def __init__(self) -> None:
        self.owner: Optional[object] = None
        self.sharers: Set[object] = set()


class HomeDirectory:
    """Per-interconnect owner/sharer bookkeeping for directory protocols."""

    def __init__(self) -> None:
        self._entries: Dict[int, _DirEntry] = {}

    # ------------------------------------------------------------------
    # Lookup (before the snoop phase)
    # ------------------------------------------------------------------
    def holders(self, txn: BusTransaction, home: object) -> List[object]:
        """The agents to consult for ``txn``: live recorded holders + home.

        Recorded holders whose cache no longer has the block (silent clean
        eviction or a device-internal invalidate) are pruned here instead
        of being consulted.
        """
        consulted: List[object] = []
        entry = self._entries.get(txn.block_address)
        if entry is not None:
            initiator = txn.initiator
            owner = entry.owner
            if owner is not None:
                if _stale(owner, txn.block_address):
                    entry.owner = None
                elif owner is not initiator:
                    consulted.append(owner)
            if entry.sharers:
                stale = None
                for agent in entry.sharers:
                    if _stale(agent, txn.block_address):
                        if stale is None:
                            stale = []
                        stale.append(agent)
                    elif agent is not initiator and agent is not entry.owner:
                        consulted.append(agent)
                if stale:
                    entry.sharers.difference_update(stale)
        if home is not txn.initiator:
            consulted.append(home)
        return consulted

    # ------------------------------------------------------------------
    # Record (after the snoop phase)
    # ------------------------------------------------------------------
    def record(self, txn: BusTransaction) -> None:
        """Fold one completed transaction into the owner/sharer state."""
        op = txn.op
        entry = self._entries.get(txn.block_address)
        if entry is None:
            entry = self._entries[txn.block_address] = _DirEntry()
        initiator = txn.initiator
        if op is BusOp.READ_SHARED:
            # A consulted owner demoted itself to SHARED (and reflected its
            # dirty data home); it is a plain sharer now, as is the requester.
            if entry.owner is not None:
                entry.sharers.add(entry.owner)
                entry.owner = None
            entry.sharers.add(initiator)
        elif op is BusOp.READ_EXCLUSIVE or op is BusOp.UPGRADE:
            # Every consulted holder invalidated itself.
            entry.sharers.clear()
            entry.owner = initiator
        elif op is BusOp.WRITEBACK:
            if entry.owner is initiator:
                entry.owner = None
            entry.sharers.discard(initiator)

    # ------------------------------------------------------------------
    # Introspection (tests)
    # ------------------------------------------------------------------
    def entry(self, block_address: int):
        """(owner, frozenset of sharers) recorded for a block, or None."""
        entry = self._entries.get(block_address)
        if entry is None:
            return None
        return entry.owner, frozenset(entry.sharers)

    def __len__(self) -> int:
        return len(self._entries)


def _stale(agent: object, block_address: int) -> bool:
    probe = getattr(agent, "probe_state", None)
    if probe is None:
        return False
    return probe(block_address) is CoherenceState.INVALID
