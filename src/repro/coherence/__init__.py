"""Snooping/directory coherence substrate: buses, caches, main memory.

The protocol state machine itself lives in declarative rule tables
(:mod:`repro.coherence.protocols`); :mod:`repro.coherence.modelcheck`
exhaustively proves every registered table's safety invariants.
"""

from repro.coherence.bus import BusError, NodeInterconnect, NACK_BACKOFF_CYCLES
from repro.coherence.cache import CacheError, CoherentCache, MainMemory
from repro.coherence.directory import HomeDirectory
from repro.coherence.protocols import (
    PROTOCOL_SCHEMA_VERSION,
    ProtocolError,
    ProtocolSpec,
    SnoopRule,
    Unsafe,
    available_protocols,
    protocol_spec,
    register_protocol,
    unregister_protocol,
)

__all__ = [
    "NodeInterconnect",
    "BusError",
    "NACK_BACKOFF_CYCLES",
    "CoherentCache",
    "CacheError",
    "MainMemory",
    "HomeDirectory",
    "PROTOCOL_SCHEMA_VERSION",
    "ProtocolError",
    "ProtocolSpec",
    "SnoopRule",
    "Unsafe",
    "available_protocols",
    "protocol_spec",
    "register_protocol",
    "unregister_protocol",
]
