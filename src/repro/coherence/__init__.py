"""MOESI snooping-coherence substrate: buses, caches, main memory."""

from repro.coherence.bus import BusError, NodeInterconnect, NACK_BACKOFF_CYCLES
from repro.coherence.cache import CacheError, CoherentCache, MainMemory

__all__ = [
    "NodeInterconnect",
    "BusError",
    "NACK_BACKOFF_CYCLES",
    "CoherentCache",
    "CacheError",
    "MainMemory",
]
