"""Exhaustive safety checker for coherence-protocol rule tables.

For one cache block, the global coherence state of an N-cache machine is
"how many caches hold the block in each state, and is memory's copy
current".  This module explores that space *exhaustively* for a
:class:`~repro.coherence.protocols.ProtocolSpec` under a counter
abstraction and proves (or refutes, with a counterexample trace) that the
table's ``Unsafe`` predicates and a set of built-in data-integrity
invariants are unreachable.

Abstraction
-----------

* A configuration is a vector of per-state cache counts plus one
  ``memory_stale`` bit ("some cache holds data newer than memory's").
  Invalid caches form an unbounded pool, so the proof covers machines of
  *every* size, not one N.
* Counts saturate at a bound (2 by default, raised automatically to the
  largest threshold any ``Unsafe`` predicate mentions): a saturated count
  means "that many or more".  Removing a cache from a saturated count
  branches to both possible abstract values, which makes the abstraction a
  sound over-approximation — if the checker proves a predicate
  unreachable, no concrete execution of any size can reach it.
* One transition is one *atomic* protocol event: a read/write miss, an
  ownership upgrade, a full-block-write upgrade, a silent store hit, an
  eviction (with writeback when dirty), or a data snarf.  Every holder's
  reaction comes from the table's snoop rules, exactly the rules
  :class:`~repro.coherence.cache.CoherentCache` executes — the guard-
  validated bus transactions of :mod:`repro.coherence.bus` make the
  concrete decide-arbitrate-react sequence atomic too, so the abstraction
  matches the implementation's granularity.

Built-in invariants (checked for every table, on top of ``spec.unsafe``):

* no reachable transaction triggers a rule marked ``forbidden``,
* memory never supplies data while its copy is stale (dirty-data loss:
  some cache wrote, nobody supplied or reflected, and a later miss reads
  the stale memory copy),
* a silent store hit never lands in a state the protocol does not track
  as dirty (the write would be invisible to everyone).

Directory tables are checked with the same broadcast semantics: the
directory only *filters* which agents are consulted, and every agent whose
state a transaction would change is by construction a recorded holder, so
the reachable per-block state space is identical.

CLI::

    python -m repro.coherence.modelcheck moesi          # one table
    python -m repro.coherence.modelcheck --all          # every registered
    python -m repro.coherence.modelcheck --self-test    # prove the checker
                                                        # rejects broken tables
"""

from __future__ import annotations

import argparse
import sys
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.coherence.protocols import (
    ProtocolError,
    ProtocolSpec,
    available_protocols,
    protocol_spec,
)
from repro.common.types import BusOp, CoherenceState

#: Default saturation bound for per-state counts ("2" = {0, 1, >=2}).
DEFAULT_CAP = 2


@dataclass(frozen=True)
class Violation:
    """One refuted safety property, with a counterexample trace."""

    name: str
    #: Event labels from the all-invalid initial configuration.
    trace: Tuple[str, ...]

    def describe(self) -> str:
        steps = "\n".join(f"    {i + 1}. {step}" for i, step in enumerate(self.trace))
        return f"{self.name}:\n{steps}" if self.trace else self.name


@dataclass(frozen=True)
class CheckResult:
    """Outcome of exhaustively checking one protocol table."""

    protocol: str
    ok: bool
    configs_explored: int
    cap: int
    violations: Tuple[Violation, ...] = ()

    def describe(self) -> str:
        if self.ok:
            return (
                f"{self.protocol}: SAFE — {self.configs_explored} reachable "
                f"configurations, counts saturated at {self.cap}"
            )
        lines = [
            f"{self.protocol}: UNSAFE — {len(self.violations)} "
            f"violated propert{'y' if len(self.violations) == 1 else 'ies'} "
            f"({self.configs_explored} configurations explored)"
        ]
        for violation in self.violations:
            lines.append("  " + violation.describe().replace("\n", "\n  "))
        return "\n".join(lines)


class ModelCheckError(RuntimeError):
    """Raised when the search cannot complete (blow-up guard)."""


# A configuration: (per-valid-state counts, memory_stale).
_Config = Tuple[Tuple[int, ...], bool]


class _Checker:
    def __init__(self, spec: ProtocolSpec, max_configs: int):
        self.spec = spec
        self.max_configs = max_configs
        self.states: Tuple[CoherenceState, ...] = spec.valid_states
        self.index: Dict[CoherenceState, int] = {s: i for i, s in enumerate(self.states)}
        self.dirty = frozenset(self.index[s] for s in spec.dirty_states)
        self.cap = self._pick_cap()
        self.predicates = [
            (u.name, compile(u.expr, f"<unsafe:{u.name}>", "eval")) for u in spec.unsafe
        ]
        # Snarf target (see CoherentCache.snoop): an invalid frame picks up
        # READ_SHARED / WRITEBACK data flying by and becomes SHARED.
        self.snarf_index: Optional[int] = self.index.get(CoherenceState.SHARED)
        self.violations: List[Violation] = []
        self._violated: set = set()

    # ------------------------------------------------------------------
    def _pick_cap(self) -> int:
        cap = DEFAULT_CAP
        for predicate in self.spec.unsafe:
            code = compile(predicate.expr, "<cap-scan>", "eval")
            for const in code.co_consts:
                if isinstance(const, int) and not isinstance(const, bool):
                    cap = max(cap, const)
        return cap

    def _sat(self, value: int) -> int:
        return value if value < self.cap else self.cap

    def _dec(self, counts: Tuple[int, ...], idx: int) -> List[Tuple[int, ...]]:
        """Remove one cache from state ``idx``; a saturated count branches
        to both abstract successors ("exactly cap-1" and "still >= cap")."""
        value = counts[idx]
        out = list(counts)
        out[idx] = value - 1
        if value == self.cap:
            return [tuple(out), counts]
        return [tuple(out)]

    # ------------------------------------------------------------------
    # Transition construction
    # ------------------------------------------------------------------
    def _react(
        self, counts: Tuple[int, ...], op: BusOp
    ) -> Tuple[Tuple[int, ...], bool, bool, bool, Optional[str]]:
        """Apply every holder's snoop rule for ``op`` simultaneously.

        Returns (new counts, supplies, shared, wrote_back, forbidden_name).
        """
        rules = self.spec.snoop_rules
        moved = list(counts)
        supplies = shared = wrote_back = False
        forbidden: Optional[str] = None
        transfers = []
        for i, state in enumerate(self.states):
            if counts[i] == 0:
                continue
            rule = rules.get((state, op))
            if rule is None:
                continue
            if rule.forbidden is not None and forbidden is None:
                forbidden = f"forbidden reaction ({state.value}, {op.value}): {rule.forbidden}"
            supplies = supplies or rule.supplies_data
            shared = shared or rule.shared
            if rule.writes_back and i in self.dirty:
                wrote_back = True
            if rule.next_state is not state:
                # INVALID holders rejoin the unbounded pool (no index).
                transfers.append((i, self.index.get(rule.next_state), counts[i]))
        for src, dst, amount in transfers:
            moved[src] -= amount
            if dst is not None:
                moved[dst] = self._sat(moved[dst] + amount)
        return tuple(moved), supplies, shared, wrote_back, forbidden

    def _fill_state(self, rules, memory_supplied: bool, shared: bool) -> CoherenceState:
        for condition, state in rules:
            if condition == "always":
                return state
            if condition == "memory_unshared" and memory_supplied and not shared:
                return state
            if condition == "unshared" and not shared:
                return state
        raise ProtocolError(f"{self.spec.name}: fill rules exhausted")  # validated away

    def _transactions(self, config: _Config):
        """Successor (label, config, violation) triples for one configuration.

        ``violation`` names a data-integrity invariant the transition itself
        breaks (forbidden reaction, stale read); the successor is still
        produced so its trace can be reported.
        """
        counts, stale = config
        spec = self.spec
        out = []

        def txn(label, base_counts, op, fill_rules, write_intent, requester_label):
            reacted, supplies, shared, wrote_back, forbidden = self._react(base_counts, op)
            violation = forbidden
            memory_supplied = not supplies
            data_fetch = op is BusOp.READ_SHARED or op is BusOp.READ_EXCLUSIVE
            if violation is None and data_fetch and memory_supplied and stale:
                violation = "stale data served from memory"
            source = "memory" if memory_supplied else "a cache"

            def emit(shared_now, suffix, extra_snarf):
                fill = self._fill_state(fill_rules, memory_supplied, shared_now)
                fill_idx = self.index[fill]
                filled = list(reacted)
                filled[fill_idx] = self._sat(filled[fill_idx] + 1)
                if extra_snarf:
                    filled[self.snarf_index] = self._sat(filled[self.snarf_index] + 1)
                new_stale = stale and not wrote_back
                if write_intent and fill_idx in self.dirty:
                    new_stale = True
                full_label = (
                    f"{label}: {requester_label} -> {fill.value}"
                    f" ({op.value}, data from {source}"
                    f"{', shared' if shared_now else ''}"
                    f"{', reflected to memory' if wrote_back else ''}{suffix})"
                )
                out.append((full_label, (tuple(filled), new_stale), violation))

            emit(shared, "", False)
            # Data snarfing: an invalid frame with a matching stale tag may
            # also pick the block up during this transaction.  The snarfer
            # answers SnoopResponse(shared=True), so the requester sees the
            # line shared and its fill condition changes accordingly.
            if (
                self.snarf_index is not None
                and op in (BusOp.READ_SHARED, BusOp.WRITEBACK)
            ):
                emit(True, ", snarfed into S", True)

        # 1/2/3: misses and full-block writes by a cache from the invalid pool.
        txn("read miss", counts, BusOp.READ_SHARED, spec.read_fill, False, "I")
        txn("write miss", counts, spec.write_miss_op, spec.write_miss_fill, True, "I")
        txn("full-block write", counts, BusOp.UPGRADE, spec.write_upgrade_fill, True, "I")

        for i, state in enumerate(self.states):
            if counts[i] == 0:
                continue
            # 4: ownership upgrade by a holder whose state cannot absorb the
            # store silently (both the write_block and write_block_full paths).
            if state not in spec.writable_states:
                for base in self._dec(counts, i):
                    txn(
                        f"upgrade from {state.value}", base, BusOp.UPGRADE,
                        spec.write_upgrade_fill, True, state.value,
                    )
            # 5: silent store hit.
            next_state = spec.write_hit_next.get(state)
            if state in spec.writable_states and next_state is not None:
                violation = None
                if self.index[next_state] not in self.dirty:
                    violation = (
                        f"silent write in {state.value} lands in non-dirty "
                        f"{next_state.value} (write invisible to memory)"
                    )
                moved = list(counts)
                moved[i] -= 1
                if counts[i] == self.cap:
                    bases = [tuple(moved), counts]
                else:
                    bases = [tuple(moved)]
                ni = self.index[next_state]
                for base in bases:
                    filled = list(base)
                    filled[ni] = self._sat(filled[ni] + 1)
                    out.append(
                        (
                            f"silent write {state.value} -> {next_state.value}",
                            (tuple(filled), True),
                            violation,
                        )
                    )
            # 6: eviction / explicit flush.
            if i in self.dirty:
                for base in self._dec(counts, i):
                    reacted, _supplies, _shared, _wb, forbidden = self._react(
                        base, BusOp.WRITEBACK
                    )
                    snarf_targets = [(reacted, "")]
                    if self.snarf_index is not None:
                        snarfed = list(reacted)
                        snarfed[self.snarf_index] = self._sat(
                            snarfed[self.snarf_index] + 1
                        )
                        snarf_targets.append((tuple(snarfed), " + snarf into S"))
                    for new_counts, suffix in snarf_targets:
                        out.append(
                            (
                                f"evict dirty {state.value} (writeback){suffix}",
                                (new_counts, False),
                                forbidden,
                            )
                        )
            else:
                for base in self._dec(counts, i):
                    out.append((f"evict clean {state.value} (silent)", (base, stale), None))
        return out

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def run(self) -> CheckResult:
        initial: _Config = (tuple(0 for _ in self.states), False)
        # config -> (parent config, event label); initial maps to None.
        visited: Dict[_Config, Optional[Tuple[_Config, str]]] = {initial: None}
        frontier = deque([initial])
        explored = 0
        while frontier:
            config = frontier.popleft()
            explored += 1
            if explored > self.max_configs:
                raise ModelCheckError(
                    f"{self.spec.name}: exceeded {self.max_configs} configurations"
                )
            self._check_predicates(config, visited)
            for label, successor, violation in self._transactions(config):
                fresh = successor not in visited
                if fresh:
                    visited[successor] = (config, label)
                    frontier.append(successor)
                if violation is not None:
                    self._record(violation, self._trace(config, visited) + (label,))
                    continue
        return CheckResult(
            protocol=self.spec.name,
            ok=not self.violations,
            configs_explored=explored,
            cap=self.cap,
            violations=tuple(self.violations),
        )

    def _check_predicates(self, config: _Config, visited) -> None:
        counts, _stale = config
        bindings = {state.value: counts[i] for i, state in enumerate(self.states)}
        env = {"__builtins__": {}}
        for name, code in self.predicates:
            if name in self._violated:
                continue
            if eval(code, env, bindings):  # noqa: S307 - validated state letters only
                self._record(name, self._trace(config, visited))

    def _record(self, name: str, trace: Tuple[str, ...]) -> None:
        if name in self._violated:
            return
        self._violated.add(name)
        self.violations.append(Violation(name=name, trace=trace))

    @staticmethod
    def _trace(config: _Config, visited) -> Tuple[str, ...]:
        steps: List[str] = []
        cursor = config
        while True:
            parent = visited[cursor]
            if parent is None:
                break
            cursor, label = parent
            steps.append(label)
        return tuple(reversed(steps))


def check_protocol(
    protocol: Union[str, ProtocolSpec], max_configs: int = 500_000
) -> CheckResult:
    """Exhaustively check one protocol table; see the module docstring."""
    spec = protocol if isinstance(protocol, ProtocolSpec) else protocol_spec(protocol)
    spec.validate()
    return _Checker(spec, max_configs).run()


def check_all(max_configs: int = 500_000) -> List[CheckResult]:
    """Check every registered protocol (built-ins and plugins)."""
    return [check_protocol(spec, max_configs) for spec in available_protocols()]


# ----------------------------------------------------------------------
# Self-test: deliberately broken tables the checker must reject
# ----------------------------------------------------------------------
def _broken_tables():
    """(description, spec, expected-substring) triples for --self-test.

    Each is the MSI table with one deliberate bug; the checker must refute
    each one (and name the right property), or the checker itself is broken.
    """
    from dataclasses import replace

    msi = protocol_spec("msi")
    S, M = CoherenceState.SHARED, CoherenceState.MODIFIED
    RS, RE, UP = BusOp.READ_SHARED, BusOp.READ_EXCLUSIVE, BusOp.UPGRADE

    def with_rules(**changes):
        rules = dict(msi.snoop_rules)
        for (state, op), rule in changes.pop("snoop_rules").items():
            if rule is None:
                rules.pop((state, op))
            else:
                rules[(state, op)] = rule
        return replace(msi, name=changes.pop("name"), snoop_rules=rules, **changes)

    from repro.coherence.protocols import SnoopRule

    return [
        (
            "writer does not invalidate sharers",
            with_rules(name="msi-broken-no-invalidate",
                       snoop_rules={(S, RE): None, (S, UP): None}),
            "modified beside shared copies",
        ),
        (
            "snooped read of M neither supplies nor reflects",
            with_rules(name="msi-broken-silent-downgrade",
                       snoop_rules={(M, RS): SnoopRule(S)}),
            "stale data served from memory",
        ),
        (
            "second writer leaves the first one modified",
            with_rules(name="msi-broken-two-writers",
                       snoop_rules={(M, RE): SnoopRule(M, supplies_data=True)}),
            "two modified owners",
        ),
    ]


def _run_self_test(max_configs: int, verbose: bool) -> int:
    failures = 0
    for description, spec, expected in _broken_tables():
        result = check_protocol(spec, max_configs)
        names = [v.name for v in result.violations]
        caught = any(expected in name for name in names)
        status = "rejected" if caught else "MISSED"
        print(f"  {spec.name} ({description}): {status}")
        if verbose and result.violations:
            for violation in result.violations:
                print("    " + violation.describe().replace("\n", "\n    "))
        if not caught:
            failures += 1
            print(f"    expected a violation matching {expected!r}, got {names}")
    if failures:
        print(f"self-test FAILED: {failures} broken table(s) not rejected")
        return 1
    print("self-test passed: every broken table rejected")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.coherence.modelcheck",
        description="Exhaustive reachability safety checker for coherence "
                    "protocol rule tables.",
    )
    parser.add_argument("protocols", nargs="*", help="protocol names to check")
    parser.add_argument("--all", action="store_true", help="check every registered table")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the checker rejects deliberately broken tables")
    parser.add_argument("--verbose", action="store_true",
                        help="print counterexample traces and per-table detail")
    parser.add_argument("--max-configs", type=int, default=500_000,
                        help="abort if the search exceeds this many configurations")
    args = parser.parse_args(argv)

    if args.self_test:
        return _run_self_test(args.max_configs, args.verbose)
    if args.all:
        names = [spec.name for spec in available_protocols()]
    else:
        names = args.protocols
    if not names:
        parser.error("give protocol names, --all or --self-test")

    failures = 0
    for name in names:
        try:
            result = check_protocol(name, args.max_configs)
        except ProtocolError as exc:
            print(f"{name}: ERROR — {exc}")
            failures += 1
            continue
        print(result.describe())
        if not result.ok:
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
