"""Direct-mapped snooping cache with a MOESI write-invalidate protocol.

The same class models both the 256 KB processor cache and the small device
caches inside coherent network interfaces; only the geometry and the agent
kind differ.  Caches track coherence state per block — the reproduction does
not model data contents, because functional message payloads travel through
the NI device queues as Python objects and only hit/miss behaviour and the
resulting bus traffic matter for the paper's results.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.common.addrmap import AddressMap
from repro.common.params import MachineParams
from repro.common.types import (
    AgentKind,
    BusKind,
    BusOp,
    BusTransaction,
    CoherenceState,
    SnoopResponse,
)
from repro.coherence.bus import NodeInterconnect
from repro.sim import Counter, Simulator


class CacheError(RuntimeError):
    """Raised on cache protocol violations."""


class _BlockEntry:
    """One direct-mapped cache frame."""

    __slots__ = ("tag", "state")

    def __init__(self) -> None:
        self.tag: Optional[int] = None
        self.state = CoherenceState.INVALID

    def matches(self, tag: int) -> bool:
        return self.tag == tag and self.state is not CoherenceState.INVALID

    def tag_matches(self, tag: int) -> bool:
        """Tag match regardless of validity (used for data snarfing)."""
        return self.tag == tag


class CoherentCache:
    """A direct-mapped, write-allocate MOESI cache attached to a node bus."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        interconnect: NodeInterconnect,
        params: MachineParams,
        addrmap: AddressMap,
        size_bytes: int,
        agent_kind: AgentKind = AgentKind.PROCESSOR,
        bus_kind: BusKind = BusKind.MEMORY,
        snarfing: bool = False,
    ):
        if size_bytes % params.cache_block_bytes != 0:
            raise CacheError("cache size must be a whole number of blocks")
        self.sim = sim
        self.name = name
        self.interconnect = interconnect
        self.params = params
        self.addrmap = addrmap
        self.agent_kind = agent_kind
        self.bus_kind = bus_kind
        self.snarfing = snarfing
        self.block_bytes = params.cache_block_bytes
        self.num_sets = size_bytes // self.block_bytes
        # Frames are allocated lazily on first touch: building a 2048-set
        # cache per node per experiment point is pure construction overhead
        # for the (common) runs that touch a fraction of the sets.
        self._sets: List[Optional[_BlockEntry]] = [None] * self.num_sets
        self.stats = Counter()
        # Hot-path constants (one attribute load instead of a params chase).
        self._hit_cycles = params.cache_hit_cycles
        self._miss_tail_cycles = self._miss_extra_cycles() + params.cache_hit_cycles
        self._counts = self.stats.raw
        #: Optional hook invoked (synchronously) after this cache snoops a
        #: transaction from another agent.  CNI devices use it to implement
        #: virtual polling.
        self.snoop_listener: Optional[Callable[[BusTransaction], None]] = None
        interconnect.attach(self)

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def _locate(self, block_addr: int) -> Tuple[int, int]:
        index = (block_addr // self.block_bytes) % self.num_sets
        tag = block_addr // (self.block_bytes * self.num_sets)
        return index, tag

    def _block_base(self, index: int, tag: int) -> int:
        return (tag * self.num_sets + index) * self.block_bytes

    def _entry(self, index: int) -> _BlockEntry:
        """The frame at ``index``, allocating it on first touch."""
        entry = self._sets[index]
        if entry is None:
            entry = self._sets[index] = _BlockEntry()
        return entry

    def probe_state(self, address: int) -> CoherenceState:
        """Current coherence state of the block containing ``address``."""
        block = self.addrmap.block_address(address)
        index, tag = self._locate(block)
        entry = self._sets[index]
        if entry is not None and entry.matches(tag):
            return entry.state
        return CoherenceState.INVALID

    def resident_blocks(self) -> List[int]:
        """Addresses of all valid blocks (mainly for tests)."""
        blocks = []
        for index, entry in enumerate(self._sets):
            if entry is None:
                continue
            if entry.state is not CoherenceState.INVALID and entry.tag is not None:
                blocks.append(self._block_base(index, entry.tag))
        return blocks

    # ------------------------------------------------------------------
    # Home protocol (caches are never a home)
    # ------------------------------------------------------------------
    def is_home(self, address: int) -> bool:
        return False

    # ------------------------------------------------------------------
    # Processor-side operations (generators)
    # ------------------------------------------------------------------
    def read(self, address: int, size: int):
        """Read ``size`` bytes starting at ``address`` through the cache."""
        if not self.addrmap.is_cachable(address):
            raise CacheError(f"cached read of uncachable address {address:#x}")
        for block in self.addrmap.blocks_covering(address, size):
            yield from self.read_block(block)

    def write(self, address: int, size: int):
        """Write ``size`` bytes starting at ``address`` through the cache."""
        if not self.addrmap.is_cachable(address):
            raise CacheError(f"cached write of uncachable address {address:#x}")
        for block in self.addrmap.blocks_covering(address, size):
            yield from self.write_block(block)

    def read_block(self, block_addr: int):
        """Obtain a readable (S or better) copy of a single block."""
        block_bytes = self.block_bytes
        block_addr -= block_addr % block_bytes
        block_number = block_addr // block_bytes
        index = block_number % self.num_sets
        tag = block_number // self.num_sets
        entry = self._sets[index]
        if entry is None:
            entry = self._sets[index] = _BlockEntry()
        if entry.matches(tag):
            self._counts["read_hits"] += 1
            yield self._hit_cycles
            return
        self._counts["read_misses"] += 1
        yield from self._evict_if_needed(entry, index)
        txn = yield from self.interconnect.transaction(
            self, BusOp.READ_SHARED, block_addr, self.block_bytes
        )
        entry.tag = tag
        if txn.supplier_kind is AgentKind.MEMORY and not txn.shared:
            entry.state = CoherenceState.EXCLUSIVE
        else:
            entry.state = CoherenceState.SHARED
        yield self._miss_tail_cycles

    def write_block(self, block_addr: int):
        """Obtain write permission (M) for a single block."""
        block_bytes = self.block_bytes
        block_addr -= block_addr % block_bytes
        block_number = block_addr // block_bytes
        index = block_number % self.num_sets
        tag = block_number // self.num_sets
        entry = self._sets[index]
        if entry is None:
            entry = self._sets[index] = _BlockEntry()
        if entry.matches(tag):
            if entry.state is CoherenceState.MODIFIED:
                self._counts["write_hits"] += 1
                yield self._hit_cycles
                return
            if entry.state is CoherenceState.EXCLUSIVE:
                self._counts["write_hits"] += 1
                entry.state = CoherenceState.MODIFIED
                yield self._hit_cycles
                return
            # SHARED or OWNED: upgrade (invalidate other copies).
            self.stats.add("write_upgrades")
            yield from self.interconnect.transaction(
                self, BusOp.UPGRADE, block_addr, self.block_bytes
            )
            entry.state = CoherenceState.MODIFIED
            yield self.params.cache_hit_cycles
            return
        self.stats.add("write_misses")
        yield from self._evict_if_needed(entry, index)
        yield from self.interconnect.transaction(
            self, BusOp.READ_EXCLUSIVE, block_addr, self.block_bytes
        )
        entry.tag = tag
        entry.state = CoherenceState.MODIFIED
        yield self._miss_tail_cycles

    def _miss_extra_cycles(self) -> int:
        """Latency a miss sees beyond the bus occupancy (processor caches only)."""
        if self.agent_kind is AgentKind.PROCESSOR:
            return self.params.processor_miss_extra_cycles
        return 0

    def write_block_full(self, block_addr: int):
        """Obtain write permission for a block that will be written in full.

        Devices (and full-line store hardware) do not need the old contents
        of a block they are about to overwrite completely, so a miss costs
        only an address-phase invalidation rather than a data fetch.  This is
        how a CNI acquires write permission for queue blocks it is filling
        with an arriving message (paper Section 2.1/2.2).
        """
        block_addr = self.addrmap.block_address(block_addr)
        index, tag = self._locate(block_addr)
        entry = self._entry(index)
        if entry.matches(tag):
            if entry.state.is_writable():
                self._counts["write_hits"] += 1
                entry.state = CoherenceState.MODIFIED
                yield self._hit_cycles
                return
            self.stats.add("write_upgrades")
            yield from self.interconnect.transaction(
                self, BusOp.UPGRADE, block_addr, self.block_bytes
            )
            entry.state = CoherenceState.MODIFIED
            yield self.params.cache_hit_cycles
            return
        self.stats.add("write_misses_full_block")
        yield from self._evict_if_needed(entry, index)
        yield from self.interconnect.transaction(
            self, BusOp.UPGRADE, block_addr, self.block_bytes
        )
        entry.tag = tag
        entry.state = CoherenceState.MODIFIED
        yield self.params.cache_hit_cycles

    def flush_block(self, block_addr: int):
        """Write a dirty block back to its home and drop it (explicit flush)."""
        block_addr = self.addrmap.block_address(block_addr)
        index, tag = self._locate(block_addr)
        entry = self._sets[index]
        if entry is None or not entry.matches(tag):
            return
        if entry.state.is_dirty():
            self.stats.add("explicit_flushes")
            yield from self.interconnect.transaction(
                self, BusOp.WRITEBACK, block_addr, self.block_bytes
            )
        entry.state = CoherenceState.INVALID

    def invalidate_block(self, block_addr: int) -> None:
        """Locally drop a block without any bus traffic (device-internal use)."""
        block_addr = self.addrmap.block_address(block_addr)
        index, tag = self._locate(block_addr)
        entry = self._sets[index]
        if entry is not None and entry.matches(tag):
            entry.state = CoherenceState.INVALID

    def _evict_if_needed(self, entry: _BlockEntry, index: int):
        if entry.state is CoherenceState.INVALID or entry.tag is None:
            return
        victim_addr = self._block_base(index, entry.tag)
        if entry.state.is_dirty():
            self.stats.add("writebacks")
            yield from self.interconnect.transaction(
                self, BusOp.WRITEBACK, victim_addr, self.block_bytes
            )
        else:
            self.stats.add("clean_evictions")
        entry.state = CoherenceState.INVALID
        entry.tag = None

    # ------------------------------------------------------------------
    # Snooping
    # ------------------------------------------------------------------
    def snoop(self, txn: BusTransaction) -> Optional[SnoopResponse]:
        """Observe another agent's transaction.

        Returns ``None`` (which the bus treats exactly like an all-default
        :class:`SnoopResponse`) whenever this cache neither supplies data
        nor reports the block shared, so the common miss path allocates
        nothing.
        """
        op = txn.op
        if op is BusOp.UNCACHED_READ or op is BusOp.UNCACHED_WRITE:
            return None
        if not txn.cachable:
            return None
        block_number = txn.block_address // self.block_bytes
        index = block_number % self.num_sets
        tag = block_number // self.num_sets
        entry = self._sets[index]

        if entry is None or not entry.matches(tag):
            # Data snarfing (paper Section 5.1.2): pick up data flying by on
            # the bus when the tag matches an invalid frame.
            if (
                self.snarfing
                and entry is not None
                and entry.tag_matches(tag)
                and op in (BusOp.WRITEBACK, BusOp.READ_SHARED)
            ):
                entry.state = CoherenceState.SHARED
                self.stats.add("snarfed_blocks")
                self._notify_listener(txn)
                return SnoopResponse(shared=True)
            self._notify_listener(txn)
            return None

        response: Optional[SnoopResponse] = None
        if op is BusOp.READ_SHARED:
            supplies = False
            if entry.state is CoherenceState.MODIFIED:
                entry.state = CoherenceState.OWNED
                supplies = True
            elif entry.state is CoherenceState.OWNED:
                supplies = True
            elif entry.state is CoherenceState.EXCLUSIVE:
                entry.state = CoherenceState.SHARED
                supplies = True
            response = SnoopResponse(supplies_data=supplies, shared=True)
        elif op is BusOp.READ_EXCLUSIVE or op is BusOp.UPGRADE:
            if entry.state.is_dirty() and op is BusOp.READ_EXCLUSIVE:
                response = SnoopResponse(supplies_data=True)
            entry.state = CoherenceState.INVALID
            self.stats.add("snoop_invalidations")
        elif op is BusOp.WRITEBACK:
            # Another agent wrote the block back to its home; our copy (if
            # any) stays valid only if it was a clean shared copy.
            if entry.state.is_dirty():
                # Cannot happen in a correct MOESI protocol: two dirty owners.
                raise CacheError(
                    f"{self.name}: snooped writeback of a block we own dirty "
                    f"({txn.describe()})"
                )
        self._notify_listener(txn)
        return response

    def _notify_listener(self, txn: BusTransaction) -> None:
        if self.snoop_listener is not None:
            self.snoop_listener(txn)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def hit_rate(self) -> float:
        hits = self.stats.get("read_hits") + self.stats.get("write_hits")
        misses = self.stats.get("read_misses") + self.stats.get("write_misses")
        total = hits + misses
        return hits / total if total else 0.0

    def __repr__(self) -> str:
        return f"<CoherentCache {self.name} {self.num_sets} blocks on {self.bus_kind}>"


class MainMemory:
    """Main-memory home agent for the DRAM address range.

    Memory never initiates transactions; it supplies data when no cache owns
    a block and absorbs writebacks.  It can also be configured as the home
    for additional address ranges (the CNI16Qm queue pages are ordinary
    pinned DRAM pages, so they fall in the DRAM range already).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        interconnect: NodeInterconnect,
        params: MachineParams,
        addrmap: AddressMap,
    ):
        self.sim = sim
        self.name = name
        self.params = params
        self.addrmap = addrmap
        self.agent_kind = AgentKind.MEMORY
        self.bus_kind = BusKind.MEMORY
        self.stats = Counter()
        interconnect.attach(self)

    def is_home(self, address: int) -> bool:
        return self.addrmap.is_dram(address)

    def snoop(self, txn: BusTransaction) -> Optional[SnoopResponse]:
        if txn.home is self:  # equivalent to is_home(), without the range checks
            if txn.op is BusOp.WRITEBACK:
                self.stats.add("writebacks_accepted")
            elif txn.op in (BusOp.READ_SHARED, BusOp.READ_EXCLUSIVE):
                self.stats.add("reads_observed")
        return None  # memory never supplies ahead of a cache, never shares

    def __repr__(self) -> str:
        return f"<MainMemory {self.name}>"
