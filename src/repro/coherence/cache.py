"""Direct-mapped snooping cache driven by a declarative protocol table.

The same class models both the 256 KB processor cache and the small device
caches inside coherent network interfaces; only the geometry and the agent
kind differ.  Caches track coherence state per block — the reproduction does
not model data contents, because functional message payloads travel through
the NI device queues as Python objects and only hit/miss behaviour and the
resulting bus traffic matter for the paper's results.

Every state transition — fills, silent store hits, upgrades, evictions and
snoop reactions — comes from the :class:`~repro.coherence.protocols.
ProtocolSpec` selected by ``MachineParams.protocol`` (the paper's MOESI by
default).  The table is compiled once per protocol into dispatch dicts, so
the hot paths cost the same as the previously hardwired MOESI logic.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.coherence.bus import NodeInterconnect
from repro.coherence.protocols import ProtocolSpec, protocol_spec
from repro.common.addrmap import AddressMap
from repro.common.params import MachineParams
from repro.common.types import (
    AgentKind,
    BusKind,
    BusOp,
    BusTransaction,
    CoherenceState,
    SnoopResponse,
)
from repro.sim import Counter, Simulator


class CacheError(RuntimeError):
    """Raised on cache protocol violations."""


class _BlockEntry:
    """One direct-mapped cache frame."""

    __slots__ = ("tag", "state")

    def __init__(self) -> None:
        self.tag: Optional[int] = None
        self.state = CoherenceState.INVALID

    def matches(self, tag: int) -> bool:
        return self.tag == tag and self.state is not CoherenceState.INVALID

    def tag_matches(self, tag: int) -> bool:
        """Tag match regardless of validity (used for data snarfing)."""
        return self.tag == tag


# ----------------------------------------------------------------------
# Protocol-table compilation
# ----------------------------------------------------------------------
def _compile_fill(rules) -> Callable[[BusTransaction], CoherenceState]:
    """Turn ordered (condition, state) fill rules into one closure."""
    if len(rules) == 1:  # validated: the last (here only) rule is "always"
        state = rules[0][1]
        return lambda txn: state

    def _memory_unshared(txn: BusTransaction) -> bool:
        return txn.supplier_kind is AgentKind.MEMORY and not txn.shared

    def _unshared(txn: BusTransaction) -> bool:
        return not txn.shared

    conditions = {"memory_unshared": _memory_unshared, "unshared": _unshared}
    compiled = tuple(
        (None if condition == "always" else conditions[condition], state)
        for condition, state in rules
    )

    def fill(txn: BusTransaction) -> CoherenceState:
        for condition, state in compiled:
            if condition is None or condition(txn):
                return state
        raise CacheError("fill rules exhausted")  # unreachable: validated

    return fill


class _CompiledProtocol:
    """A :class:`ProtocolSpec` flattened into hot-path dispatch tables."""

    __slots__ = (
        "spec", "dirty", "writable", "write_hit_next", "read_fill",
        "upgrade_fill", "write_miss_fill", "write_miss_op", "snoop_table",
        "snarf_state",
    )

    def __init__(self, spec: ProtocolSpec):
        self.spec = spec
        self.dirty = frozenset(spec.dirty_states)
        self.writable = frozenset(spec.writable_states)
        self.write_hit_next = dict(spec.write_hit_next)
        self.read_fill = _compile_fill(spec.read_fill)
        self.upgrade_fill = _compile_fill(spec.write_upgrade_fill)
        self.write_miss_fill = _compile_fill(spec.write_miss_fill)
        self.write_miss_op = spec.write_miss_op
        #: (state, op) -> (next_state, response-or-None, forbidden, writes_back).
        #: Responses are shared immutable-by-convention instances; the bus
        #: only reads them, so one allocation per rule serves every snoop.
        self.snoop_table: Dict[tuple, tuple] = {}
        for key, rule in spec.snoop_rules.items():
            response = None
            if rule.supplies_data or rule.shared:
                response = SnoopResponse(rule.supplies_data, rule.shared)
            self.snoop_table[key] = (rule.next_state, response, rule.forbidden, rule.writes_back)
        self.snarf_state = (
            CoherenceState.SHARED if CoherenceState.SHARED in spec.states else None
        )


#: Compiled engines memoised per protocol name; re-registering a name (the
#: plugin ``replace=True`` path) produces a different spec object and
#: recompiles.
_ENGINE_CACHE: Dict[str, Tuple[ProtocolSpec, _CompiledProtocol]] = {}  # repro: allow[MUTSTATE] memo keyed by protocol spec identity, machine-free


def _engine_for(name: str) -> _CompiledProtocol:
    spec = protocol_spec(name)
    cached = _ENGINE_CACHE.get(name)
    if cached is not None and cached[0] is spec:
        return cached[1]
    engine = _CompiledProtocol(spec)
    _ENGINE_CACHE[name] = (spec, engine)
    return engine


class CoherentCache:
    """A direct-mapped, write-allocate coherent cache attached to a node bus."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        interconnect: NodeInterconnect,
        params: MachineParams,
        addrmap: AddressMap,
        size_bytes: int,
        agent_kind: AgentKind = AgentKind.PROCESSOR,
        bus_kind: BusKind = BusKind.MEMORY,
        snarfing: bool = False,
    ):
        if size_bytes % params.cache_block_bytes != 0:
            raise CacheError("cache size must be a whole number of blocks")
        self.sim = sim
        self.name = name
        self.interconnect = interconnect
        self.params = params
        self.addrmap = addrmap
        self.agent_kind = agent_kind
        self.bus_kind = bus_kind
        self.snarfing = snarfing
        self.block_bytes = params.cache_block_bytes
        self.num_sets = size_bytes // self.block_bytes
        # Frames are allocated lazily on first touch: building a 2048-set
        # cache per node per experiment point is pure construction overhead
        # for the (common) runs that touch a fraction of the sets.
        self._sets: List[Optional[_BlockEntry]] = [None] * self.num_sets
        self.stats = Counter()
        # The active protocol table, compiled into dispatch dicts.
        engine = _engine_for(params.protocol)
        self.protocol: ProtocolSpec = engine.spec
        self._dirty = engine.dirty
        self._writable = engine.writable
        self._write_hit_next = engine.write_hit_next
        self._read_fill = engine.read_fill
        self._upgrade_fill = engine.upgrade_fill
        self._write_miss_fill = engine.write_miss_fill
        self._write_miss_op = engine.write_miss_op
        self._snoop_table = engine.snoop_table
        self._snarf_state = engine.snarf_state
        # Hot-path constants (one attribute load instead of a params chase).
        self._hit_cycles = params.cache_hit_cycles
        self._miss_tail_cycles = self._miss_extra_cycles() + params.cache_hit_cycles
        self._counts = self.stats.raw
        #: Optional hook invoked (synchronously) after this cache snoops a
        #: transaction from another agent.  CNI devices use it to implement
        #: virtual polling.
        self.snoop_listener: Optional[Callable[[BusTransaction], None]] = None
        interconnect.attach(self)

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def _locate(self, block_addr: int) -> Tuple[int, int]:
        index = (block_addr // self.block_bytes) % self.num_sets
        tag = block_addr // (self.block_bytes * self.num_sets)
        return index, tag

    def _block_base(self, index: int, tag: int) -> int:
        return (tag * self.num_sets + index) * self.block_bytes

    def _entry(self, index: int) -> _BlockEntry:
        """The frame at ``index``, allocating it on first touch."""
        entry = self._sets[index]
        if entry is None:
            entry = self._sets[index] = _BlockEntry()
        return entry

    def probe_state(self, address: int) -> CoherenceState:
        """Current coherence state of the block containing ``address``."""
        block = self.addrmap.block_address(address)
        index, tag = self._locate(block)
        entry = self._sets[index]
        if entry is not None and entry.matches(tag):
            return entry.state
        return CoherenceState.INVALID

    def resident_blocks(self) -> List[int]:
        """Addresses of all valid blocks (mainly for tests)."""
        blocks = []
        for index, entry in enumerate(self._sets):
            if entry is None:
                continue
            if entry.state is not CoherenceState.INVALID and entry.tag is not None:
                blocks.append(self._block_base(index, entry.tag))
        return blocks

    # ------------------------------------------------------------------
    # Home protocol (caches are never a home)
    # ------------------------------------------------------------------
    def is_home(self, address: int) -> bool:
        return False

    # ------------------------------------------------------------------
    # Processor-side operations (generators)
    # ------------------------------------------------------------------
    def read(self, address: int, size: int):
        """Read ``size`` bytes starting at ``address`` through the cache."""
        if not self.addrmap.is_cachable(address):
            raise CacheError(f"cached read of uncachable address {address:#x}")
        for block in self.addrmap.blocks_covering(address, size):
            yield from self.read_block(block)

    def write(self, address: int, size: int):
        """Write ``size`` bytes starting at ``address`` through the cache."""
        if not self.addrmap.is_cachable(address):
            raise CacheError(f"cached write of uncachable address {address:#x}")
        for block in self.addrmap.blocks_covering(address, size):
            yield from self.write_block(block)

    def read_block(self, block_addr: int):
        """Obtain a readable (S or better) copy of a single block."""
        block_bytes = self.block_bytes
        block_addr -= block_addr % block_bytes
        block_number = block_addr // block_bytes
        index = block_number % self.num_sets
        tag = block_number // self.num_sets
        entry = self._sets[index]
        if entry is None:
            entry = self._sets[index] = _BlockEntry()
        if entry.matches(tag):
            self._counts["read_hits"] += 1
            yield self._hit_cycles
            return
        self._counts["read_misses"] += 1
        yield from self._evict_if_needed(entry, index)
        txn = yield from self.interconnect.transaction(
            self, BusOp.READ_SHARED, block_addr, self.block_bytes
        )
        entry.tag = tag
        entry.state = self._read_fill(txn)
        self._counts["state_transitions"] += 1
        yield self._miss_tail_cycles

    def write_block(self, block_addr: int):
        """Obtain write permission for a single block."""
        block_bytes = self.block_bytes
        block_addr -= block_addr % block_bytes
        block_number = block_addr // block_bytes
        index = block_number % self.num_sets
        tag = block_number // self.num_sets
        entry = self._sets[index]
        if entry is None:
            entry = self._sets[index] = _BlockEntry()
        if entry.matches(tag):
            next_state = self._write_hit_next.get(entry.state)
            if next_state is not None:
                # Silent store hit (M stays M, MESI-style E->M, ...).
                self._counts["write_hits"] += 1
                if next_state is not entry.state:
                    entry.state = next_state
                    self._counts["state_transitions"] += 1
                yield self._hit_cycles
                return
            # Valid but not silently writable: upgrade (invalidate others).
            # The guard re-validates our copy at bus-grant time — if a
            # concurrent transaction invalidated it while we arbitrated, the
            # upgrade would claim ownership of data we no longer hold, so it
            # aborts and the write falls back to a full write miss.
            self.stats.add("write_upgrades")
            txn = yield from self.interconnect.transaction(
                self, BusOp.UPGRADE, block_addr, self.block_bytes,
                guard=lambda: entry.matches(tag),
            )
            if txn is not None:
                next_state = self._upgrade_fill(txn)
                if next_state is not entry.state:
                    entry.state = next_state
                    self._counts["state_transitions"] += 1
                yield self.params.cache_hit_cycles
                return
            self._counts["upgrade_races"] += 1
        else:
            self.stats.add("write_misses")
        yield from self._evict_if_needed(entry, index)
        txn = yield from self.interconnect.transaction(
            self, self._write_miss_op, block_addr, self.block_bytes
        )
        entry.tag = tag
        entry.state = self._write_miss_fill(txn)
        self._counts["state_transitions"] += 1
        yield self._miss_tail_cycles

    def _miss_extra_cycles(self) -> int:
        """Latency a miss sees beyond the bus occupancy (processor caches only)."""
        if self.agent_kind is AgentKind.PROCESSOR:
            return self.params.processor_miss_extra_cycles
        return 0

    def write_block_full(self, block_addr: int):
        """Obtain write permission for a block that will be written in full.

        Devices (and full-line store hardware) do not need the old contents
        of a block they are about to overwrite completely, so a miss costs
        only an address-phase invalidation rather than a data fetch.  This is
        how a CNI acquires write permission for queue blocks it is filling
        with an arriving message (paper Section 2.1/2.2).
        """
        block_addr = self.addrmap.block_address(block_addr)
        index, tag = self._locate(block_addr)
        entry = self._entry(index)
        if entry.matches(tag):
            if entry.state in self._writable:
                self._counts["write_hits"] += 1
                next_state = self._write_hit_next[entry.state]
                if next_state is not entry.state:
                    entry.state = next_state
                    self._counts["state_transitions"] += 1
                yield self._hit_cycles
                return
            self.stats.add("write_upgrades")
            txn = yield from self.interconnect.transaction(
                self, BusOp.UPGRADE, block_addr, self.block_bytes,
                guard=lambda: entry.matches(tag),
            )
            if txn is not None:
                next_state = self._upgrade_fill(txn)
                if next_state is not entry.state:
                    entry.state = next_state
                    self._counts["state_transitions"] += 1
                yield self.params.cache_hit_cycles
                return
            self._counts["upgrade_races"] += 1
        else:
            self.stats.add("write_misses_full_block")
        yield from self._evict_if_needed(entry, index)
        txn = yield from self.interconnect.transaction(
            self, BusOp.UPGRADE, block_addr, self.block_bytes
        )
        entry.tag = tag
        entry.state = self._upgrade_fill(txn)
        self._counts["state_transitions"] += 1
        yield self.params.cache_hit_cycles

    def flush_block(self, block_addr: int):
        """Write a dirty block back to its home and drop it (explicit flush)."""
        block_addr = self.addrmap.block_address(block_addr)
        index, tag = self._locate(block_addr)
        entry = self._sets[index]
        if entry is None or not entry.matches(tag):
            return
        if entry.state in self._dirty:
            txn = yield from self.interconnect.transaction(
                self, BusOp.WRITEBACK, block_addr, self.block_bytes,
                guard=lambda: entry.state in self._dirty,
            )
            if txn is not None:
                self.stats.add("explicit_flushes")
            else:
                # Invalidated while arbitrating: the data is no longer ours
                # to write back (the new owner carries it).
                self._counts["flush_races"] += 1
        if entry.state is not CoherenceState.INVALID:
            entry.state = CoherenceState.INVALID
            self._counts["state_transitions"] += 1

    def invalidate_block(self, block_addr: int) -> None:
        """Locally drop a block without any bus traffic (device-internal use)."""
        block_addr = self.addrmap.block_address(block_addr)
        index, tag = self._locate(block_addr)
        entry = self._sets[index]
        if entry is not None and entry.matches(tag):
            entry.state = CoherenceState.INVALID
            self._counts["state_transitions"] += 1

    def _evict_if_needed(self, entry: _BlockEntry, index: int):
        if entry.state is CoherenceState.INVALID or entry.tag is None:
            # Clear any stale tag before the frame is refilled.  An
            # invalidated frame keeps its tag so data snarfing can
            # resurrect the block — but once a miss starts repurposing the
            # frame, a snarf during the refill's bus wait would claim a
            # block this cache is about to overwrite (a stale hit reported
            # to the requester).  See tests/test_protocols.py.
            entry.tag = None
            return
        victim_addr = self._block_base(index, entry.tag)
        if entry.state in self._dirty:
            # Guarded like the explicit flush: if a snooped invalidation
            # takes the block while we wait for the bus, the new owner holds
            # the only dirty copy and our writeback must not happen (it
            # would look like two dirty owners to the new owner's snooper).
            txn = yield from self.interconnect.transaction(
                self, BusOp.WRITEBACK, victim_addr, self.block_bytes,
                guard=lambda: entry.state in self._dirty,
            )
            if txn is not None:
                self.stats.add("writebacks")
            else:
                self._counts["writeback_races"] += 1
        else:
            self.stats.add("clean_evictions")
        if entry.state is not CoherenceState.INVALID:
            entry.state = CoherenceState.INVALID
            self._counts["state_transitions"] += 1
        entry.tag = None

    # ------------------------------------------------------------------
    # Snooping
    # ------------------------------------------------------------------
    def snoop(self, txn: BusTransaction) -> Optional[SnoopResponse]:
        """Observe another agent's transaction.

        Returns ``None`` (which the bus treats exactly like an all-default
        :class:`SnoopResponse`) whenever this cache neither supplies data
        nor reports the block shared, so the common miss path allocates
        nothing.  The reaction itself is a table lookup on the active
        protocol's ``(state, op)`` snoop rules.
        """
        op = txn.op
        if op is BusOp.UNCACHED_READ or op is BusOp.UNCACHED_WRITE:
            return None
        if not txn.cachable:
            return None
        block_number = txn.block_address // self.block_bytes
        index = block_number % self.num_sets
        tag = block_number // self.num_sets
        entry = self._sets[index]

        if entry is None or not entry.matches(tag):
            # Data snarfing (paper Section 5.1.2): pick up data flying by on
            # the bus when an *invalid* frame still carries the matching
            # tag.  The invalid-state check is explicit — a bare tag match
            # would also cover valid frames, which never reach this branch
            # but would make the guard silently wrong if the enclosing
            # condition ever changed.
            if (
                self.snarfing
                and entry is not None
                and entry.state is CoherenceState.INVALID
                and entry.tag == tag
                and self._snarf_state is not None
                and op in (BusOp.WRITEBACK, BusOp.READ_SHARED)
            ):
                entry.state = self._snarf_state
                self.stats.add("snarfed_blocks")
                self._counts["state_transitions"] += 1
                self._notify_listener(txn)
                return SnoopResponse(shared=True)
            self._notify_listener(txn)
            return None

        action = self._snoop_table.get((entry.state, op))
        if action is None:
            self._notify_listener(txn)
            return None
        next_state, response, forbidden, writes_back = action
        if forbidden is not None:
            raise CacheError(f"{self.name}: {forbidden} ({txn.describe()})")
        counts = self._counts
        if next_state is not entry.state:
            entry.state = next_state
            counts["state_transitions"] += 1
            counts["snoop_transitions"] += 1
            if next_state is CoherenceState.INVALID:
                counts["snoop_invalidations"] += 1
        if writes_back:
            counts["snoop_writebacks"] += 1
        self._notify_listener(txn)
        return response

    def _notify_listener(self, txn: BusTransaction) -> None:
        if self.snoop_listener is not None:
            self.snoop_listener(txn)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def hit_rate(self) -> float:
        hits = self.stats.get("read_hits") + self.stats.get("write_hits")
        misses = self.stats.get("read_misses") + self.stats.get("write_misses")
        total = hits + misses
        return hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"<CoherentCache {self.name} {self.num_sets} blocks "
            f"({self.protocol.name}) on {self.bus_kind}>"
        )


class MainMemory:
    """Main-memory home agent for the DRAM address range.

    Memory never initiates transactions; it supplies data when no cache owns
    a block and absorbs writebacks.  It can also be configured as the home
    for additional address ranges (the CNI16Qm queue pages are ordinary
    pinned DRAM pages, so they fall in the DRAM range already).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        interconnect: NodeInterconnect,
        params: MachineParams,
        addrmap: AddressMap,
    ):
        self.sim = sim
        self.name = name
        self.params = params
        self.addrmap = addrmap
        self.agent_kind = AgentKind.MEMORY
        self.bus_kind = BusKind.MEMORY
        self.stats = Counter()
        interconnect.attach(self)

    def is_home(self, address: int) -> bool:
        return self.addrmap.is_dram(address)

    def snoop(self, txn: BusTransaction) -> Optional[SnoopResponse]:
        if txn.home is self:  # equivalent to is_home(), without the range checks
            if txn.op is BusOp.WRITEBACK:
                self.stats.add("writebacks_accepted")
            elif txn.op in (BusOp.READ_SHARED, BusOp.READ_EXCLUSIVE):
                self.stats.add("reads_observed")
        return None  # memory never supplies ahead of a cache, never shares

    def __repr__(self) -> str:
        return f"<MainMemory {self.name}>"
