"""Snooping bus interconnect for one node.

A node has a coherent memory bus and, optionally, a coherent I/O bus behind
an I/O bridge (paper Section 4.1).  Both buses support a single outstanding
transaction.  Table-2 occupancies for the I/O bus already include the
corresponding memory-bus occupancy, so a transaction that involves an
I/O-bus agent holds *both* buses for the I/O occupancy period.

The I/O bridge behaviour follows the paper: when transactions are initiated
simultaneously on the two buses, the I/O-side transaction is NACKed and
retried (with the retry guaranteed to make progress).  We model the NACK as
an explicit backoff penalty plus a deadlock-free ordered re-acquisition of
the two buses.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.common.addrmap import AddressMap
from repro.common.params import MachineParams
from repro.common.types import AgentKind, BusKind, BusOp, BusTransaction, SnoopResponse
from repro.sim import Acquire, Counter, Delay, Resource, Simulator

#: Cycles an I/O-side initiator waits after being NACKed by the bridge.
NACK_BACKOFF_CYCLES = 20


class BusError(RuntimeError):
    """Raised for protocol violations on the bus."""


class NodeInterconnect:
    """The coherent buses of a single node plus the snooping agent set."""

    def __init__(
        self,
        sim: Simulator,
        params: MachineParams,
        addrmap: AddressMap,
        name: str = "node",
        with_io_bus: bool = False,
        with_cache_bus: bool = False,
    ):
        self.sim = sim
        self.params = params
        self.addrmap = addrmap
        self.name = name
        self.membus = Resource(sim, name=f"{name}.membus")
        self.iobus: Optional[Resource] = (
            Resource(sim, name=f"{name}.iobus") if with_io_bus else None
        )
        self.cachebus: Optional[Resource] = (
            Resource(sim, name=f"{name}.cachebus") if with_cache_bus else None
        )
        self._agents: List[object] = []
        self.stats = Counter()
        self.nack_count = 0

    # ------------------------------------------------------------------
    # Agent registration
    # ------------------------------------------------------------------
    def attach(self, agent: object) -> None:
        """Attach a snooping agent (cache, memory controller or NI device).

        Agents must expose ``name``, ``agent_kind``, ``bus_kind``,
        ``snoop(txn) -> SnoopResponse`` and ``is_home(address) -> bool``.
        """
        for attr in ("agent_kind", "bus_kind", "snoop", "is_home"):
            if not hasattr(agent, attr):
                raise BusError(f"agent {agent!r} lacks required attribute {attr!r}")
        self._agents.append(agent)

    def detach(self, agent: object) -> None:
        self._agents.remove(agent)

    @property
    def agents(self) -> Iterable[object]:
        return tuple(self._agents)

    def home_agent(self, address: int) -> object:
        for agent in self._agents:
            if agent.is_home(address):
                return agent
        raise BusError(f"no home agent for address {address:#x} on {self.name}")

    # ------------------------------------------------------------------
    # Bus selection
    # ------------------------------------------------------------------
    def _buses_for(self, txn: BusTransaction, home: object) -> tuple:
        """Return (bus_kind_for_timing, resources_to_hold)."""
        initiator_bus = getattr(txn.initiator, "bus_kind", BusKind.MEMORY)
        home_bus = home.bus_kind
        involved = {initiator_bus, home_bus}
        if BusKind.CACHE in involved:
            # NI on the dedicated cache bus: private fast path between the
            # processor and the NI that does not occupy the memory bus.
            resources = [self.cachebus] if self.cachebus is not None else []
            return BusKind.CACHE, resources
        if BusKind.IO in involved:
            if self.iobus is None:
                raise BusError(f"{self.name} has no I/O bus but agent requires one")
            return BusKind.IO, [self.membus, self.iobus]
        return BusKind.MEMORY, [self.membus]

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def transaction(
        self,
        initiator: object,
        op: BusOp,
        address: int,
        size: int,
    ):
        """Perform one bus transaction.  Generator; returns the transaction.

        The snoop phase runs while the bus is held; every attached agent
        other than the initiator gets to observe (and update its state for)
        the transaction.  The data supplier and resulting occupancy are
        resolved from the snoop responses and the paper's Table 2.
        """
        txn = BusTransaction(
            op=op,
            address=address,
            size=size,
            initiator=initiator,
            initiator_kind=getattr(initiator, "agent_kind", AgentKind.PROCESSOR),
            issue_time=self.sim.now,
        )
        home = self.home_agent(address)
        timing_bus, resources = self._buses_for(txn, home)

        # --- Arbitration -------------------------------------------------
        io_side_initiator = getattr(initiator, "bus_kind", BusKind.MEMORY) is BusKind.IO
        if io_side_initiator and self.membus in resources:
            # The I/O bridge NACKs the I/O-side transaction if the memory bus
            # is busy at the moment the transaction is initiated.
            if not self.membus.try_acquire_now():
                self.nack_count += 1
                self.stats.add("bridge_nacks")
                yield Delay(NACK_BACKOFF_CYCLES)
                yield Acquire(self.membus)
            # Memory bus is now held; take the I/O bus in order.
            if self.iobus is not None and self.iobus in resources:
                yield Acquire(self.iobus)
            held = [r for r in resources if r is not None]
        else:
            held = []
            for resource in resources:
                if resource is None:
                    continue
                yield Acquire(resource)
                held.append(resource)

        try:
            # --- Snoop phase --------------------------------------------
            for agent in self._agents:
                if agent is initiator:
                    continue
                response = agent.snoop(txn)
                if response is None:
                    continue
                if response.supplies_data and txn.supplier is None:
                    txn.supplier = agent
                    txn.supplier_kind = agent.agent_kind
                if response.shared:
                    txn.shared = True
            if txn.supplier is None and op in (BusOp.READ_SHARED, BusOp.READ_EXCLUSIVE):
                txn.supplier = home
                txn.supplier_kind = home.agent_kind
                txn.data_from_memory = home.agent_kind is AgentKind.MEMORY
            if op in (BusOp.UNCACHED_READ, BusOp.UNCACHED_WRITE):
                txn.supplier = home
                txn.supplier_kind = home.agent_kind

            # --- Occupancy ------------------------------------------------
            occupancy = self.params.occupancy(
                op,
                timing_bus,
                txn.initiator_kind,
                txn.supplier_kind,
                data_from_memory=txn.data_from_memory,
            )
            self.stats.add(f"txn_{op.value}")
            self.stats.add(f"txn_on_{timing_bus.value}")
            self.stats.add("txn_total")
            self.stats.add("occupancy_cycles", occupancy)
            if self.membus in held:
                self.stats.add("membus_occupancy_cycles", occupancy)
            if self.iobus is not None and self.iobus in held:
                self.stats.add("iobus_occupancy_cycles", occupancy)
            yield Delay(occupancy)
        finally:
            for resource in reversed(held):
                resource.release()
        return txn

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    def memory_bus_occupancy(self) -> int:
        """Total cycles of memory-bus occupancy accumulated so far."""
        return self.stats.get("membus_occupancy_cycles")

    def io_bus_occupancy(self) -> int:
        return self.stats.get("iobus_occupancy_cycles")
