"""Snooping bus interconnect for one node.

A node has a coherent memory bus and, optionally, a coherent I/O bus behind
an I/O bridge (paper Section 4.1).  Both buses support a single outstanding
transaction.  Table-2 occupancies for the I/O bus already include the
corresponding memory-bus occupancy, so a transaction that involves an
I/O-bus agent holds *both* buses for the I/O occupancy period.

The I/O bridge behaviour follows the paper: when transactions are initiated
simultaneously on the two buses, the I/O-side transaction is NACKed and
retried (with the retry guaranteed to make progress).  We model the NACK as
an explicit backoff penalty plus a deadlock-free ordered re-acquisition of
the two buses.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.common.addrmap import AddressMap
from repro.common.params import MachineParams
from repro.common.types import AgentKind, BusKind, BusOp, BusTransaction
from repro.sim import Counter, Resource, Simulator

#: Cycles an I/O-side initiator waits after being NACKed by the bridge.
NACK_BACKOFF_CYCLES = 20

#: Per-op / per-bus stat keys, precomputed once instead of formatted on
#: every transaction (the bus transaction path is the simulator's hottest).
_TXN_OP_KEY = {op: f"txn_{op.value}" for op in BusOp}  # repro: allow[MUTSTATE] constant per-op stat-key table, built once at import
_TXN_BUS_KEY = {bus: f"txn_on_{bus.value}" for bus in BusKind}  # repro: allow[MUTSTATE] constant per-bus stat-key table, built once at import


class BusError(RuntimeError):
    """Raised for protocol violations on the bus."""


class NodeInterconnect:
    """The coherent buses of a single node plus the snooping agent set."""

    def __init__(
        self,
        sim: Simulator,
        params: MachineParams,
        addrmap: AddressMap,
        name: str = "node",
        with_io_bus: bool = False,
        with_cache_bus: bool = False,
    ):
        self.sim = sim
        self.params = params
        self.addrmap = addrmap
        self.name = name
        self.membus = Resource(sim, name=f"{name}.membus")
        self.iobus: Optional[Resource] = (
            Resource(sim, name=f"{name}.iobus") if with_io_bus else None
        )
        self.cachebus: Optional[Resource] = (
            Resource(sim, name=f"{name}.cachebus") if with_cache_bus else None
        )
        self._agents: List[object] = []
        #: Memoised per-initiator snooper lists (everyone but the initiator),
        #: keyed by id(initiator); cleared on attach/detach.
        self._snoopers_cache: dict = {}
        #: Memoised address -> (home agent, block address, cachable) lookups
        #: (cleared on attach/detach).
        self._addr_cache: dict = {}
        #: Memoised Table-2 occupancy lookups, keyed by
        #: (op, timing bus, initiator kind, supplier kind, data_from_memory).
        self._occupancy_cache: dict = {}
        # Preallocated (timing_bus, resources) pairs: the resource lists are
        # only ever iterated by transaction(), never mutated, so every
        # transaction can share them instead of allocating its own.
        self._mem_buses = (BusKind.MEMORY, [self.membus])
        self._io_buses = (
            (BusKind.IO, [self.membus, self.iobus]) if self.iobus is not None else None
        )
        self._cache_buses = (
            (BusKind.CACHE, [self.cachebus]) if self.cachebus is not None else None
        )
        # Home-node directory, when the active protocol asks for one.  The
        # default protocol short-circuits so the common path never imports
        # the protocol kit from here.
        self.directory = None
        self._dir_lookup_cycles = 0
        if params.protocol != "moesi":
            from repro.coherence.protocols import protocol_spec

            if protocol_spec(params.protocol).directory:
                from repro.coherence.directory import HomeDirectory

                self.directory = HomeDirectory()
                self._dir_lookup_cycles = params.directory_lookup_cycles
        self.stats = Counter()
        self.nack_count = 0
        #: Optional observer called once per completed transaction, while
        #: the buses are still held: ``access_probe(txn, timing_bus)``.
        #: The partition-safety conflict detector (repro.analysis) installs
        #: one to record per-cycle bus/directory footprints; the default
        #: ``None`` keeps the hot path to a single attribute test.
        self.access_probe = None

    # ------------------------------------------------------------------
    # Agent registration
    # ------------------------------------------------------------------
    def attach(self, agent: object) -> None:
        """Attach a snooping agent (cache, memory controller or NI device).

        Agents must expose ``name``, ``agent_kind``, ``bus_kind``,
        ``snoop(txn) -> SnoopResponse`` and ``is_home(address) -> bool``.
        """
        for attr in ("agent_kind", "bus_kind", "snoop", "is_home"):
            if not hasattr(agent, attr):
                raise BusError(f"agent {agent!r} lacks required attribute {attr!r}")
        self._agents.append(agent)
        self._addr_cache.clear()
        self._snoopers_cache.clear()

    def detach(self, agent: object) -> None:
        self._agents.remove(agent)
        self._addr_cache.clear()
        self._snoopers_cache.clear()

    @property
    def agents(self) -> Iterable[object]:
        return tuple(self._agents)

    def home_agent(self, address: int) -> object:
        return self._addr_info(address)[0]

    def _addr_info(self, address: int) -> tuple:
        """(home agent, block address, cachable) for ``address``, memoised."""
        info = self._addr_cache.get(address)
        if info is not None:
            return info
        addrmap = self.addrmap
        for agent in self._agents:
            if agent.is_home(address):
                block_address = address - (address % addrmap.block_bytes)
                info = (agent, block_address, addrmap.is_cachable(block_address))
                self._addr_cache[address] = info
                return info
        raise BusError(f"no home agent for address {address:#x} on {self.name}")

    # ------------------------------------------------------------------
    # Bus selection
    # ------------------------------------------------------------------
    def _buses_for(self, txn: BusTransaction, home: object) -> tuple:
        """Return (bus_kind_for_timing, resources_to_hold)."""
        initiator_bus = getattr(txn.initiator, "bus_kind", BusKind.MEMORY)
        home_bus = home.bus_kind
        if initiator_bus is BusKind.CACHE or home_bus is BusKind.CACHE:
            # NI on the dedicated cache bus: private fast path between the
            # processor and the NI that does not occupy the memory bus.
            if self._cache_buses is None:
                # An empty resource list here would let cache-bus
                # transactions run with no mutual exclusion at all.
                raise BusError(f"{self.name} has no cache bus but agent requires one")
            return self._cache_buses
        if initiator_bus is BusKind.IO or home_bus is BusKind.IO:
            if self._io_buses is None:
                raise BusError(f"{self.name} has no I/O bus but agent requires one")
            return self._io_buses
        return self._mem_buses

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def transaction(
        self,
        initiator: object,
        op: BusOp,
        address: int,
        size: int,
        guard=None,
    ):
        """Perform one bus transaction.  Generator; returns the transaction.

        The snoop phase runs while the bus is held; every attached agent
        other than the initiator gets to observe (and update its state for)
        the transaction.  The data supplier and resulting occupancy are
        resolved from the snoop responses and the paper's Table 2.  Under a
        directory protocol the broadcast is replaced by a lookup of the
        block's recorded owner/sharers (plus its home).

        ``guard``, if given, is re-evaluated once the buses are held but
        before anything is snooped.  If it returns falsy the transaction
        aborts — buses are released, no agent observes anything, and the
        generator returns ``None`` instead of the transaction.  Caches use
        this to make decide-then-arbitrate sequences (writeback of a dirty
        victim, an upgrade from a valid copy) atomic: a concurrent
        transaction can invalidate the premise during the bus wait, and the
        stale request must then not appear on the bus at all.
        """
        home, block_address, cachable = self._addr_info(address)
        # Positional construction: this runs for every bus transaction.
        txn = BusTransaction(
            op,
            address,
            size,
            initiator,
            getattr(initiator, "agent_kind", AgentKind.PROCESSOR),
            self.sim._now,
            block_address,
            cachable,
            home,
        )
        initiator_bus = getattr(initiator, "bus_kind", BusKind.MEMORY)
        if initiator_bus is BusKind.MEMORY and home.bus_kind is BusKind.MEMORY:
            timing_bus, resources = self._mem_buses
        else:
            timing_bus, resources = self._buses_for(txn, home)

        # ``held`` records exactly what has been acquired so far; the
        # ``finally`` below releases that set and nothing else, so an
        # exception at any yield point (NACK backoff, a bus wait, the snoop
        # phase) can neither leak a bus nor release one we never owned.
        held = []
        try:
            # --- Arbitration ---------------------------------------------
            io_side_initiator = initiator_bus is BusKind.IO
            if io_side_initiator and self.membus in resources:
                # The I/O bridge NACKs the I/O-side transaction if the memory
                # bus is busy at the moment the transaction is initiated.
                if self.membus.try_acquire_now():
                    held.append(self.membus)
                else:
                    self.nack_count += 1
                    self.stats.add("bridge_nacks")
                    yield NACK_BACKOFF_CYCLES
                    yield self.membus
                    held.append(self.membus)
                # Memory bus is now held; take the I/O bus in order.
                if self.iobus is not None and self.iobus in resources:
                    yield self.iobus
                    held.append(self.iobus)
            else:
                for resource in resources:
                    if resource is None:
                        continue
                    yield resource
                    held.append(resource)

            # --- Guard ----------------------------------------------------
            if guard is not None and not guard():
                self.stats.add("txn_aborted")
                return None

            # --- Snoop phase ----------------------------------------------
            if op is BusOp.UNCACHED_READ or op is BusOp.UNCACHED_WRITE:
                # Uncached register accesses terminate at the home device:
                # caches and memory ignore them without any state change, so
                # only the home's snoop hook can have an effect.
                if home is not initiator:
                    home.snoop(txn)
                txn.supplier = home
                txn.supplier_kind = home.agent_kind
            else:
                directory = self.directory
                if directory is not None and cachable:
                    snoopers = directory.holders(txn, home)
                    counts = self.stats.raw
                    counts["dir_lookups"] += 1
                    counts["dir_agents_consulted"] += len(snoopers)
                else:
                    snoopers = self._snoopers_cache.get(id(initiator))
                    if snoopers is None:
                        snoopers = [agent for agent in self._agents if agent is not initiator]
                        if len(snoopers) != len(self._agents):
                            # Attached initiators are kept alive by _agents,
                            # so their id() cannot be recycled while cached.
                            # An unattached initiator gets no cache entry.
                            self._snoopers_cache[id(initiator)] = snoopers
                for agent in snoopers:
                    response = agent.snoop(txn)
                    if response is None:
                        continue
                    if response.supplies_data and txn.supplier is None:
                        txn.supplier = agent
                        txn.supplier_kind = agent.agent_kind
                    if response.shared:
                        txn.shared = True
                if txn.supplier is None and (
                    op is BusOp.READ_SHARED or op is BusOp.READ_EXCLUSIVE
                ):
                    txn.supplier = home
                    txn.supplier_kind = home.agent_kind
                    txn.data_from_memory = home.agent_kind is AgentKind.MEMORY
                if directory is not None and cachable:
                    directory.record(txn)

            # --- Occupancy ------------------------------------------------
            occ_key = (op, timing_bus, txn.initiator_kind, txn.supplier_kind, txn.data_from_memory)
            occupancy = self._occupancy_cache.get(occ_key)
            if occupancy is None:
                occupancy = self.params.occupancy(
                    op,
                    timing_bus,
                    txn.initiator_kind,
                    txn.supplier_kind,
                    data_from_memory=txn.data_from_memory,
                )
                if self.directory is not None and cachable:
                    # The home consults its owner/sharer state before the
                    # data phase; the occupancy cache is per-interconnect,
                    # so folding the penalty into the memoised value is safe.
                    occupancy += self._dir_lookup_cycles
                self._occupancy_cache[occ_key] = occupancy
            if self.access_probe is not None:
                self.access_probe(txn, timing_bus)
            counts = self.stats.raw
            counts[_TXN_OP_KEY[op]] += 1
            counts[_TXN_BUS_KEY[timing_bus]] += 1
            counts["txn_total"] += 1
            counts["occupancy_cycles"] += occupancy
            if self.membus in held:
                counts["membus_occupancy_cycles"] += occupancy
            if self.iobus is not None and self.iobus in held:
                counts["iobus_occupancy_cycles"] += occupancy
            yield occupancy
        finally:
            while held:  # release in reverse acquisition order
                held.pop().release()
        return txn

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    def memory_bus_occupancy(self) -> int:
        """Total cycles of memory-bus occupancy accumulated so far."""
        return self.stats.get("membus_occupancy_cycles")

    def io_bus_occupancy(self) -> int:
        return self.stats.get("iobus_occupancy_cycles")
