"""Physical address-map helpers.

Each simulated node has a private physical address space split into three
regions:

* main memory (DRAM), home = the node's memory controller,
* device-homed coherent blocks (CDRs and device-homed CQs), home = the NI,
* uncached NI registers (status, control, FIFO data ports).

The network interface only ever shares addresses with its local processor,
so the same layout is reused on every node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.common.params import (
    DRAM_BASE,
    DRAM_SIZE,
    NI_HOMED_BASE,
    NI_HOMED_SIZE,
    NI_UNCACHED_BASE,
    NI_UNCACHED_SIZE,
    MachineParams,
)
from repro.common.types import AddressRange


@dataclass(frozen=True)
class AddressMap:
    """Node-local physical address map."""

    dram: AddressRange
    ni_homed: AddressRange
    ni_uncached: AddressRange
    block_bytes: int

    @classmethod
    def for_params(cls, params: MachineParams) -> "AddressMap":
        return cls(
            dram=AddressRange(DRAM_BASE, DRAM_BASE + DRAM_SIZE),
            ni_homed=AddressRange(NI_HOMED_BASE, NI_HOMED_BASE + NI_HOMED_SIZE),
            ni_uncached=AddressRange(NI_UNCACHED_BASE, NI_UNCACHED_BASE + NI_UNCACHED_SIZE),
            block_bytes=params.cache_block_bytes,
        )

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def is_dram(self, address: int) -> bool:
        return self.dram.contains(address)

    def is_ni_homed(self, address: int) -> bool:
        return self.ni_homed.contains(address)

    def is_uncached(self, address: int) -> bool:
        return self.ni_uncached.contains(address)

    def is_cachable(self, address: int) -> bool:
        return self.is_dram(address) or self.is_ni_homed(address)

    # ------------------------------------------------------------------
    # Block arithmetic
    # ------------------------------------------------------------------
    def block_address(self, address: int) -> int:
        """Round an address down to its cache-block base."""
        return address - (address % self.block_bytes)

    def block_offset(self, address: int) -> int:
        return address % self.block_bytes

    def blocks_covering(self, address: int, size: int) -> Iterator[int]:
        """Yield the block base addresses touched by [address, address+size)."""
        if size <= 0:
            return
        first = self.block_address(address)
        last = self.block_address(address + size - 1)
        block = first
        while block <= last:
            yield block
            block += self.block_bytes


class RegionAllocator:
    """Simple bump allocator for carving buffers out of an address region."""

    def __init__(self, region: AddressRange, block_bytes: int):
        self._region = region
        self._block_bytes = block_bytes
        self._next = region.start

    def allocate(self, size: int, align_to_block: bool = True) -> int:
        """Allocate ``size`` bytes; returns the base address."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        if align_to_block and self._next % self._block_bytes:
            self._next += self._block_bytes - (self._next % self._block_bytes)
        base = self._next
        if base + size > self._region.end:
            raise MemoryError(
                f"region exhausted: need {size} bytes at {base:#x}, "
                f"region ends at {self._region.end:#x}"
            )
        self._next = base + size
        return base

    def allocate_blocks(self, num_blocks: int) -> int:
        return self.allocate(num_blocks * self._block_bytes, align_to_block=True)

    @property
    def bytes_remaining(self) -> int:
        return self._region.end - self._next
