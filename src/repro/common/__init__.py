"""Shared parameters, enums and address-map utilities."""

from repro.common.addrmap import AddressMap, RegionAllocator
from repro.common.params import DEFAULT_PARAMS, MachineParams, ParameterError
from repro.common.types import (
    AddressRange,
    AgentKind,
    BusKind,
    BusOp,
    BusTransaction,
    CoherenceState,
    NetworkMessage,
    SnoopResponse,
)

__all__ = [
    "MachineParams",
    "DEFAULT_PARAMS",
    "ParameterError",
    "AddressMap",
    "RegionAllocator",
    "AddressRange",
    "AgentKind",
    "BusKind",
    "BusOp",
    "BusTransaction",
    "CoherenceState",
    "NetworkMessage",
    "SnoopResponse",
]
