"""Machine parameters for the simulated system.

All timing constants come from Section 4.1 and Table 2 of the paper:

* 16 nodes, 200 MHz dual-issue SPARC processors,
* 100 MHz multiplexed coherent memory bus, 50 MHz multiplexed coherent I/O
  bus, both with a single outstanding transaction,
* 256 KB direct-mapped processor cache with 64-byte blocks,
* fixed 256-byte network messages with a 12-byte header, 100-cycle network
  latency, and a 4-message per-destination hardware sliding window.

Table 2 occupancies are expressed in *processor cycles* and, for the I/O
bus, already include the corresponding memory-bus occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.common.types import AgentKind, BusKind, BusOp


class ParameterError(ValueError):
    """Raised for invalid machine parameter combinations."""


#: Physical address map.  Each node has its own private physical address
#: space (nodes never address each other's memory directly; only the network
#: connects them), so one map serves every node.
DRAM_BASE = 0x0000_0000
DRAM_SIZE = 0x1000_0000           # 256 MB of main memory
NI_HOMED_BASE = 0x8000_0000       # device-homed CDR / CQ blocks
NI_HOMED_SIZE = 0x0100_0000
NI_UNCACHED_BASE = 0x9000_0000    # uncached NI status / control / FIFO registers
NI_UNCACHED_SIZE = 0x0010_0000


@dataclass(frozen=True)
class MachineParams:
    """Tunable description of the simulated machine."""

    # Processor and caches
    processor_mhz: int = 200
    cache_block_bytes: int = 64
    processor_cache_bytes: int = 256 * 1024
    cache_hit_cycles: int = 1

    # Network (Section 4.1)
    num_nodes: int = 16
    network_message_bytes: int = 256
    network_header_bytes: int = 12
    network_latency_cycles: int = 100
    sliding_window: int = 4

    # Interconnect fabric (grammar in :mod:`repro.network.fabricspec`).
    # ``"ideal"`` is the paper's fixed-latency, topology-free model; other
    # values select topology-aware models from the fabric registry —
    # ``"xbar"`` (per-port serialization), ``"mesh"``/``"torus"`` (2D grid
    # with dimension-order routing; bare names derive a near-square shape
    # from ``num_nodes``, ``"mesh4x4"`` pins it).
    fabric: str = "ideal"
    #: Router + wire latency per grid hop (mesh/torus), processor cycles.
    fabric_hop_cycles: int = 8

    # Coherence protocol (rule tables in :mod:`repro.coherence.protocols`).
    # ``"moesi"`` is the paper's five-state snooping protocol; the kit also
    # ships ``"mesi"``, ``"msi"``, ``"illinois"`` and the home-node
    # directory variant ``"dir-msi"``.  Plugins register additional tables
    # with :func:`repro.coherence.protocols.register_protocol`.
    protocol: str = "moesi"
    #: Directory lookup latency added to each coherent transaction's bus
    #: occupancy under a directory protocol (the home consults its
    #: owner/sharer state before the data phase).
    directory_lookup_cycles: int = 8
    #: Link/port bandwidth used for serialization by the topology-aware
    #: fabrics (a 256+12-byte message at 8 B/cycle streams for 34 cycles).
    fabric_link_bytes_per_cycle: int = 8

    # Uncached accesses are performed 8 bytes (one double word) at a time.
    uncached_access_bytes: int = 8

    # Table 2 occupancies (processor cycles).
    uncached_load_cycles: Dict[BusKind, int] = field(
        default_factory=lambda: {BusKind.CACHE: 4, BusKind.MEMORY: 28, BusKind.IO: 48}
    )
    uncached_store_cycles: Dict[BusKind, int] = field(
        default_factory=lambda: {BusKind.CACHE: 4, BusKind.MEMORY: 12, BusKind.IO: 32}
    )
    cache_to_cache_from_cni_cycles: Dict[BusKind, int] = field(
        default_factory=lambda: {BusKind.MEMORY: 42, BusKind.IO: 76}
    )
    cache_to_cache_to_cni_cycles: Dict[BusKind, int] = field(
        default_factory=lambda: {BusKind.MEMORY: 42, BusKind.IO: 62}
    )
    memory_to_cache_cycles: Dict[BusKind, int] = field(
        default_factory=lambda: {BusKind.MEMORY: 42, BusKind.IO: 76}
    )
    #: Address-only invalidation / upgrade transactions (not listed in
    #: Table 2; modelled as a short address-phase-only transaction).
    invalidation_cycles: Dict[BusKind, int] = field(
        default_factory=lambda: {BusKind.CACHE: 4, BusKind.MEMORY: 10, BusKind.IO: 30}
    )
    #: Writeback of a dirty 64-byte block to its home.
    writeback_cycles: Dict[BusKind, int] = field(
        default_factory=lambda: {BusKind.CACHE: 42, BusKind.MEMORY: 42, BusKind.IO: 62}
    )
    #: Processor-to-processor cache-to-cache transfer (used only for the
    #: bandwidth normalization constant of Figure 7).
    cache_to_cache_proc_cycles: Dict[BusKind, int] = field(
        default_factory=lambda: {BusKind.CACHE: 42, BusKind.MEMORY: 42, BusKind.IO: 76}
    )

    # Memory barrier cost (flush the store buffer before the NI sees a store).
    memory_barrier_cycles: int = 6

    #: Processor overhead per 8-byte word moved through uncached device
    #: registers (user-buffer load/store, address generation, loop control).
    uncached_word_processing_cycles: int = 6
    #: Processor cycles to copy one cache block between a user buffer and a
    #: CDR/CQ block (8 double-word loads plus 8 stores on a dual-issue core).
    block_copy_cycles: int = 20
    #: Extra latency a *processor* cache miss sees beyond the bus occupancy
    #: (arbitration, snoop resolution, critical-word delivery).  The paper's
    #: 230 ns cache-to-cache transfer corresponds to roughly this much on top
    #: of the 42-cycle bus occupancy.  Device caches pipeline their accesses
    #: and are not charged this latency.
    processor_miss_extra_cycles: int = 25
    #: Extra latency an uncached *load* sees beyond its bus occupancy: the
    #: processor stalls for arbitration plus the device's response, which the
    #: Table-2 occupancy alone does not cover.  Uncached stores retire
    #: through the store buffer and see no extra stall.
    uncached_load_extra_cycles: Dict[BusKind, int] = field(
        default_factory=lambda: {BusKind.CACHE: 2, BusKind.MEMORY: 15, BusKind.IO: 25}
    )

    # Fault injection (grammar in :mod:`repro.faults.plan`).  ``""`` — the
    # default — means no faults: the machine uses the selected fabric
    # directly.  A non-empty name (e.g. ``"lossy1"``, ``"drop=0.01"``)
    # resolves against the fault-plan registry and wraps the fabric in a
    # deterministic :class:`repro.faults.fabric.FaultyFabric`.
    faults: str = ""
    #: Seed for the fault-decision RNG streams (mixed with link endpoints
    #: and a per-link message counter; independent of workload seeds).
    fault_seed: int = 0

    #: End-to-end reliable messaging (sequence numbers, ack/timeout/
    #: retransmit, duplicate suppression) in the messaging layer.  Required
    #: for workloads to complete under lossy fault plans; off by default
    #: because the e2e acks are real messages that change cycle counts.
    reliable_messaging: bool = False
    #: Base retransmission timeout (processor cycles); doubled per attempt
    #: up to ``max_retransmits`` (capped exponential backoff).  The default
    #: covers the *software* round trip — the receiver only acks when its
    #: program polls, which can be tens of thousands of cycles after
    #: delivery — so a short (hardware-RTT-scale) value here causes
    #: spurious retransmission storms.
    retransmit_timeout_cycles: int = 25_000
    #: Give up (raise) after this many retransmissions of one fragment.
    max_retransmits: int = 12

    # Optional global features
    data_snarfing: bool = False

    #: Elide steady busy-poll spins into event-driven blocking waits (see
    #: :mod:`repro.sim.spinwait`).  Bit-identical to spinning — simulated
    #: cycles, bus occupancies and device counters do not change — but the
    #: kernel executes far fewer events on poll-heavy runs.  The off path
    #: is preserved for A/B measurement, like the legacy kernel.
    spin_elision: bool = True

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def cycle_ns(self) -> float:
        return 1000.0 / self.processor_mhz

    @property
    def network_payload_bytes(self) -> int:
        """User payload capacity of one network message."""
        return self.network_message_bytes - self.network_header_bytes

    @property
    def blocks_per_network_message(self) -> int:
        return (self.network_message_bytes + self.cache_block_bytes - 1) // self.cache_block_bytes

    @property
    def processor_cache_blocks(self) -> int:
        return self.processor_cache_bytes // self.cache_block_bytes

    def cycles_to_us(self, cycles: float) -> float:
        return cycles * self.cycle_ns / 1000.0

    def bytes_per_cycle_to_mbps(self, bytes_per_cycle: float) -> float:
        """Convert bytes/processor-cycle to MB/s (decimal megabytes)."""
        return bytes_per_cycle * self.processor_mhz  # bytes/us == MB/s

    def max_local_cq_bandwidth_mbps(self) -> float:
        """Analytic maximum bandwidth of a local CQ between two processors.

        The paper normalizes Figure 7 against the bandwidth two processors on
        the same coherent memory bus can sustain (144 MB/s for their
        parameters).  Per 64-byte block that transfer costs a
        read-for-ownership with a cache-to-cache data supply (sender) plus a
        read miss with a cache-to-cache supply (receiver).
        """
        per_block = (
            self.cache_to_cache_proc_cycles[BusKind.MEMORY]
            + self.processor_miss_extra_cycles
            + self.invalidation_cycles[BusKind.MEMORY]
            + self.block_copy_cycles
        )
        return self.bytes_per_cycle_to_mbps(self.cache_block_bytes / per_block)

    # ------------------------------------------------------------------
    # Validation and variants
    # ------------------------------------------------------------------
    def validate(self) -> "MachineParams":
        if self.cache_block_bytes <= 0 or self.cache_block_bytes % 8 != 0:
            raise ParameterError("cache_block_bytes must be a positive multiple of 8")
        if self.processor_cache_bytes % self.cache_block_bytes != 0:
            raise ParameterError("processor cache size must be a whole number of blocks")
        if self.network_header_bytes >= self.network_message_bytes:
            raise ParameterError("network header must be smaller than the network message")
        if self.network_message_bytes % self.cache_block_bytes != 0:
            raise ParameterError("network message must be a whole number of cache blocks")
        if self.num_nodes < 1:
            raise ParameterError("num_nodes must be >= 1")
        if self.sliding_window < 1:
            raise ParameterError("sliding_window must be >= 1")
        if self.fabric_hop_cycles < 1:
            raise ParameterError("fabric_hop_cycles must be >= 1")
        if self.fabric_link_bytes_per_cycle < 1:
            raise ParameterError("fabric_link_bytes_per_cycle must be >= 1")
        if self.directory_lookup_cycles < 0:
            raise ParameterError("directory_lookup_cycles must be >= 0")
        if self.protocol != "moesi":
            # Lazy import, same reasoning as the fabric check below: the
            # default never pulls in the protocol kit at module import.
            from repro.coherence.protocols import protocol_spec

            spec = protocol_spec(self.protocol)
            if spec.directory and self.data_snarfing:
                raise ParameterError(
                    "data snarfing needs broadcast snoops; directory protocol "
                    f"{self.protocol!r} filters them (disable data_snarfing)"
                )
        if self.retransmit_timeout_cycles < 1:
            raise ParameterError("retransmit_timeout_cycles must be >= 1")
        if self.max_retransmits < 0:
            raise ParameterError("max_retransmits must be >= 0")
        if self.faults:
            # Lazy import, same reasoning as the fabric check below: the
            # default (no faults) never pulls in the fault-plan grammar.
            from repro.faults.plan import resolve_plan

            plan = resolve_plan(self.faults)
            if plan.is_lossy() and not self.reliable_messaging:
                raise ParameterError(
                    f"fault plan {self.faults!r} can lose or corrupt messages; "
                    "enable reliable_messaging so workloads can complete"
                )
        if self.fabric != "ideal":
            # Lazy import: the default short-circuits, so importing this
            # module (which validates DEFAULT_PARAMS) never pulls in the
            # fabric registry.  Non-default names are checked against the
            # registered kinds and the machine's node count, raising
            # FabricError with the offending grammar field named.
            from repro.network.registry import parse_fabric

            parse_fabric(self.fabric).validate_nodes(self.num_nodes)
        return self

    def with_overrides(self, **kwargs) -> "MachineParams":
        """Return a copy with the given fields replaced (and re-validated)."""
        return replace(self, **kwargs).validate()

    # ------------------------------------------------------------------
    # Table-2 occupancy lookup
    # ------------------------------------------------------------------
    def occupancy(
        self,
        op: BusOp,
        bus: BusKind,
        initiator_kind: AgentKind,
        supplier_kind: Optional[AgentKind] = None,
        data_from_memory: bool = False,
    ) -> int:
        """Bus occupancy in processor cycles for one transaction.

        The supplier/initiator kinds select the proper Table-2 row for
        cache-to-cache transfers (processor<->CNI direction matters on the
        I/O bus).
        """
        if op is BusOp.UNCACHED_READ:
            return self.uncached_load_cycles[bus]
        if op is BusOp.UNCACHED_WRITE:
            return self.uncached_store_cycles[bus]
        if op is BusOp.UPGRADE:
            return self.invalidation_cycles[bus]
        if op is BusOp.WRITEBACK:
            return self.writeback_cycles[bus]
        if op in (BusOp.READ_SHARED, BusOp.READ_EXCLUSIVE):
            if data_from_memory or supplier_kind is AgentKind.MEMORY or supplier_kind is None:
                return self.memory_to_cache_cycles.get(bus, self.memory_to_cache_cycles[BusKind.MEMORY])
            if supplier_kind is AgentKind.NI_DEVICE:
                # CNI supplies data to the processor (or bridge).
                return self.cache_to_cache_from_cni_cycles[bus]
            if initiator_kind is AgentKind.NI_DEVICE:
                # Processor cache supplies data to the CNI.
                return self.cache_to_cache_to_cni_cycles[bus]
            # processor <-> processor (only used by the normalization model)
            return self.cache_to_cache_proc_cycles[bus]
        raise ParameterError(f"no occupancy rule for {op!r} on {bus!r}")


DEFAULT_PARAMS = MachineParams().validate()
