"""Shared enumerations and small value types for the CNI reproduction."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class BusKind(enum.Enum):
    """Which bus a device is attached to (paper Section 4.1)."""

    #: Members are singletons: identity hashing (C slot) is equivalent to
    #: the default Enum name hash but much cheaper in enum-keyed dicts.
    __hash__ = object.__hash__

    CACHE = "cache"
    MEMORY = "memory"
    IO = "io"

    def __str__(self) -> str:  # nicer in reports
        return self.value


class CoherenceState(enum.Enum):
    """MOESI block states (Sweazey & Smith)."""

    __hash__ = object.__hash__

    MODIFIED = "M"
    OWNED = "O"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"

    def is_valid(self) -> bool:
        return self is not CoherenceState.INVALID

    def is_dirty(self) -> bool:
        return self in (CoherenceState.MODIFIED, CoherenceState.OWNED)

    def is_writable(self) -> bool:
        return self in (CoherenceState.MODIFIED, CoherenceState.EXCLUSIVE)


class BusOp(enum.Enum):
    """Bus transaction types on the snooping buses."""

    __hash__ = object.__hash__

    READ_SHARED = "read_shared"          # coherent read, requester wants S/E
    READ_EXCLUSIVE = "read_exclusive"    # coherent read-for-ownership
    UPGRADE = "upgrade"                  # invalidate others, requester has data
    WRITEBACK = "writeback"              # dirty block to its home
    UNCACHED_READ = "uncached_read"      # 8-byte uncached device register read
    UNCACHED_WRITE = "uncached_write"    # 8-byte uncached device register write


class AgentKind(enum.Enum):
    """What sort of agent sits behind a bus port (affects Table-2 timing)."""

    __hash__ = object.__hash__

    PROCESSOR = "processor"
    NI_DEVICE = "ni"
    MEMORY = "memory"
    BRIDGE = "bridge"


@dataclass(slots=True)
class BusTransaction:
    """A single bus transaction as seen by snoopers."""

    op: BusOp
    address: int
    size: int
    initiator: object
    initiator_kind: AgentKind
    issue_time: int = 0
    # Precomputed by the bus so each snooper doesn't redo address math:
    block_address: int = 0
    cachable: bool = False
    home: Optional[object] = None
    # Filled in during the snoop phase:
    supplier: Optional[object] = None
    supplier_kind: Optional[AgentKind] = None
    shared: bool = False
    data_from_memory: bool = False

    def describe(self) -> str:
        return f"{self.op.value}@0x{self.address:08x}[{self.size}]"


@dataclass(slots=True)
class SnoopResponse:
    """A snooper's answer to a bus transaction."""

    supplies_data: bool = False
    shared: bool = False


@dataclass(frozen=True)
class AddressRange:
    """A half-open [start, end) physical address range."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty address range [{self.start:#x}, {self.end:#x})")

    def contains(self, address: int) -> bool:
        return self.start <= address < self.end

    @property
    def size(self) -> int:
        return self.end - self.start

    def overlaps(self, other: "AddressRange") -> bool:
        return self.start < other.end and other.start < self.end


@dataclass(slots=True)
class NetworkMessage:
    """A fixed-size network message (256 bytes on the wire, 12-byte header).

    ``payload_bytes`` is the number of user bytes carried (<= payload
    capacity).  ``body`` optionally carries functional data used by
    workloads (handler name, arguments); the simulator never inspects it.
    """

    source: int
    dest: int
    payload_bytes: int
    seq: int = 0
    body: Tuple = field(default_factory=tuple)
    send_time: int = 0
    inject_time: int = 0
    deliver_time: int = 0
    is_ack: bool = False
    #: Set by the fault-injection layer when the payload was corrupted in
    #: flight; the end-to-end reliability layer discards such messages.
    corrupted: bool = False
    #: End-to-end sequence number stamped by the reliable messaging layer
    #: (-1 when reliability is off or the message is a control frame).
    e2e_seq: int = -1

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
