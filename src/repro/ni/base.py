"""Common infrastructure shared by all network-interface devices.

Every NI device exposes the same two-sided interface:

* **Processor side** — generator methods called from the local processor's
  simulation process (via the messaging layer): ``proc_try_send`` and
  ``proc_poll``.  These perform the loads, stores and coherent block
  accesses the paper charges to the processor.
* **Device side** — simulation processes owned by the device: an *injection*
  process that moves messages from the send interface into the network
  (respecting the hardware sliding window), and an *extraction* process that
  accepts arriving network messages into the receive interface and returns
  hardware acknowledgements.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Optional

from repro.common.addrmap import AddressMap, RegionAllocator
from repro.common.params import MachineParams
from repro.common.types import (
    AgentKind,
    BusKind,
    BusOp,
    BusTransaction,
    NetworkMessage,
    SnoopResponse,
)
from repro.coherence.bus import NodeInterconnect
from repro.network.fabric import AbstractFabric, SlidingWindow
from repro.sim import Counter, Signal, Simulator, start_process


class NIError(RuntimeError):
    """Raised for network-interface protocol violations."""


#: Cycles of internal device processing to launch/accept one network message
#: (header generation, CRC, routing decision).  Small compared to bus costs.
DEVICE_PROCESSING_CYCLES = 4


class DeviceHomeAgent:
    """Bus agent representing the NI device as the *home* of its own
    device-register and device-homed queue addresses.

    It also terminates uncached register reads/writes, forwarding them to the
    owning device's ``uncached_read``/``uncached_write`` hooks.
    """

    def __init__(self, device: "AbstractNI", name: str):
        self.device = device
        self.name = name
        self.agent_kind = AgentKind.NI_DEVICE
        self.bus_kind = device.bus_kind

    def is_home(self, address: int) -> bool:
        addrmap = self.device.addrmap
        return addrmap.is_ni_homed(address) or addrmap.is_uncached(address)

    def snoop(self, txn: BusTransaction) -> Optional[SnoopResponse]:
        if txn.home is self:  # only this device's own addresses can be registers
            if txn.op is BusOp.UNCACHED_READ and self.device.addrmap.is_uncached(txn.address):
                self.device.uncached_read(txn.address)
            elif txn.op is BusOp.UNCACHED_WRITE and self.device.addrmap.is_uncached(txn.address):
                self.device.uncached_write(txn.address)
        return None  # register accesses terminate here; nothing to report


class AbstractNI(abc.ABC):
    """Base class for the five evaluated network interfaces."""

    #: Taxonomy name, e.g. ``"CNI16Qm"``; set by subclasses.
    taxonomy_name = "NI"

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        params: MachineParams,
        addrmap: AddressMap,
        interconnect: NodeInterconnect,
        fabric: AbstractFabric,
        bus_kind: BusKind = BusKind.MEMORY,
        dram_allocator: Optional[RegionAllocator] = None,
    ):
        self.sim = sim
        self.node_id = node_id
        self.params = params
        self.addrmap = addrmap
        self.interconnect = interconnect
        self.fabric = fabric
        self.bus_kind = bus_kind
        self.agent_kind = AgentKind.NI_DEVICE
        self.name = f"node{node_id}.{self.taxonomy_name}"
        #: PDES partition this device belongs to (see Machine.partition_map
        #: and repro.analysis): the NI is node-owned; only the fabric's
        #: delivery callbacks cross into it from the outside.
        self.partition = f"node{node_id}"
        self.stats = Counter()
        self._counts = self.stats.raw
        #: words/blocks per payload size, memoised (messages repeat sizes).
        self._words_cache: dict = {}
        self._blocks_cache: dict = {}

        # Device address regions.
        self._homed_alloc = RegionAllocator(addrmap.ni_homed, params.cache_block_bytes)
        self._uncached_alloc = RegionAllocator(addrmap.ni_uncached, params.cache_block_bytes)
        self._dram_alloc: Optional[RegionAllocator] = dram_allocator

        # Network-side machinery.
        self.window = SlidingWindow(sim, params, node_id)
        self._net_in: "deque[NetworkMessage]" = deque()
        self._net_in_signal = Signal(sim, name=f"{self.name}.net-in")
        self._inject_signal = Signal(sim, name=f"{self.name}.inject")
        #: Message-arrival / spin-activity signal.  Fired whenever the local
        #: processor's blocking waits should re-examine the device: a message
        #: became visible through the receive interface, send-side space was
        #: freed, or (once the processor cache is bound) the processor cache
        #: snooped any bus transaction — the virtual-polling hook of the
        #: paper's coherent interfaces.  Spin-wait elision sleeps on this
        #: signal instead of busy-polling (see :mod:`repro.sim.spinwait`).
        self.arrival_signal = Signal(sim, name=f"{self.name}.arrival")
        fabric.attach(node_id, self._on_network_message, self.window.on_ack)

        self._uncached_load_extra = params.uncached_load_extra_cycles.get(bus_kind, 0)

        # The home agent makes the device answer for its own addresses.
        self.home_agent = DeviceHomeAgent(self, f"{self.name}.home")
        interconnect.attach(self.home_agent)

        self._processes_started = False

    # ------------------------------------------------------------------
    # Region allocation helpers for subclasses
    # ------------------------------------------------------------------
    def allocate_device_blocks(self, num_blocks: int) -> int:
        """Allocate device-homed coherent blocks (CDRs, device-homed CQs)."""
        return self._homed_alloc.allocate_blocks(num_blocks)

    def allocate_uncached_register(self) -> int:
        """Allocate one 8-byte uncached device register address."""
        return self._uncached_alloc.allocate(self.params.uncached_access_bytes, align_to_block=False)

    def set_dram_allocator(self, allocator: RegionAllocator) -> None:
        """Provide a main-memory allocator (used by memory-homed queues)."""
        self._dram_alloc = allocator

    def allocate_dram_blocks(self, num_blocks: int) -> int:
        if self._dram_alloc is None:
            raise NIError(f"{self.name}: no DRAM allocator configured")
        return self._dram_alloc.allocate_blocks(num_blocks)

    # ------------------------------------------------------------------
    # Device processes
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the device-side injection and extraction processes."""
        if self._processes_started:
            return
        self._processes_started = True
        start_process(self.sim, self._injection_process(), name=f"{self.name}.inject")
        start_process(self.sim, self._extraction_process(), name=f"{self.name}.extract")

    def _on_network_message(self, message: NetworkMessage) -> None:
        """Fabric delivery callback: queue the message for extraction."""
        self._net_in.append(message)
        self.stats.add("network_arrivals")
        self._net_in_signal.fire()

    def _wait_for_window(self, dest: int):
        """Generator: wait until the sliding window to ``dest`` has room."""
        while not self.window.can_send(dest):
            self.stats.add("window_stalls")
            yield self.window.slot_freed

    def _inject(self, message: NetworkMessage) -> None:
        """Reserve a window slot and put the message on the wire."""
        self.window.reserve(message.dest)
        self.stats.add("messages_injected")
        self.fabric.inject(message)

    def _ack(self, message: NetworkMessage) -> None:
        """Send the hardware acknowledgement for an accepted message."""
        if not message.is_ack:
            self.fabric.send_ack(self.node_id, message.source)
            self.stats.add("acks_returned")

    # ------------------------------------------------------------------
    # Abstract interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def proc_try_send(self, message: NetworkMessage):
        """Processor-side send of one network message.

        Generator.  Returns True if the message was handed to the NI, or
        False if the send interface is currently full (the messaging layer
        then drains incoming messages and retries, per the paper's
        deadlock-avoidance rule).
        """

    @abc.abstractmethod
    def proc_poll(self):
        """Processor-side poll of the receive interface.

        Generator.  Returns the next :class:`NetworkMessage` if one is
        available, otherwise ``None``.
        """

    @abc.abstractmethod
    def _injection_process(self):
        """Device-side process moving messages from the send interface into
        the network."""

    @abc.abstractmethod
    def _extraction_process(self):
        """Device-side process accepting network arrivals into the receive
        interface."""

    # ------------------------------------------------------------------
    # Uncached register hooks (overridden where needed)
    # ------------------------------------------------------------------
    def uncached_read(self, address: int) -> None:
        """Called when the processor reads an uncached device register."""

    def uncached_write(self, address: int) -> None:
        """Called when the processor writes an uncached device register."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def wire_bytes(self, message: NetworkMessage) -> int:
        """Bytes of the network message actually written/read by software."""
        return self.params.network_header_bytes + message.payload_bytes

    def words_for(self, message: NetworkMessage) -> int:
        """Number of 8-byte uncached accesses needed to move the message."""
        payload = message.payload_bytes
        words = self._words_cache.get(payload)
        if words is None:
            width = self.params.uncached_access_bytes
            words = self._words_cache[payload] = (
                self.params.network_header_bytes + payload + width - 1
            ) // width
        return words

    def blocks_for(self, message: NetworkMessage) -> int:
        """Number of cache blocks the message occupies."""
        payload = message.payload_bytes
        blocks = self._blocks_cache.get(payload)
        if blocks is None:
            block = self.params.cache_block_bytes
            blocks = self._blocks_cache[payload] = (
                self.params.network_header_bytes + payload + block - 1
            ) // block
        return blocks

    def uncached_load(self, register: int):
        """Generator: one uncached 8-byte load from a device register.

        Besides the bus occupancy, the issuing processor stalls for the
        arbitration/response latency of the load (uncached loads cannot be
        buffered the way stores can).
        """
        self._counts["uncached_loads"] += 1
        yield from self.interconnect.transaction(
            self._processor_agent(), BusOp.UNCACHED_READ, register, self.params.uncached_access_bytes
        )
        yield self._uncached_load_extra

    def uncached_store(self, register: int):
        """Generator: one uncached 8-byte store to a device register."""
        self._counts["uncached_stores"] += 1
        yield from self.interconnect.transaction(
            self._processor_agent(), BusOp.UNCACHED_WRITE, register, self.params.uncached_access_bytes
        )

    def memory_barrier(self):
        """Generator: drain the processor store buffer."""
        yield self.params.memory_barrier_cycles

    def _processor_agent(self):
        """The agent on whose behalf processor-side uncached accesses run."""
        if self._proc_cache is None:
            raise NIError(f"{self.name}: processor cache not bound")
        return self._proc_cache

    # Set by the node assembly once the processor cache exists.
    _proc_cache = None

    def bind_processor_cache(self, cache) -> None:
        self._proc_cache = cache
        if self.params.spin_elision and self._has_elidable_port():
            # Virtual polling: any transaction the processor cache snoops can
            # invalidate a polled line, so it must wake sleeping spin-waiters.
            # Devices without an elidable port never sleep, so they skip the
            # per-snoop listener cost entirely.
            previous = cache.snoop_listener
            fire = self.arrival_signal.fire
            if previous is None:
                cache.snoop_listener = lambda txn: fire()
            else:
                def chained(txn, _previous=previous, _fire=fire):
                    _previous(txn)
                    _fire()

                cache.snoop_listener = chained

    def _has_elidable_port(self) -> bool:
        """Whether any port of this device supports spin-wait elision
        (mirrors the guard-eligibility check in the messaging layer)."""
        return bool(
            getattr(getattr(self, "recv_port", None), "elidable", False)
            or getattr(getattr(self, "send_port", None), "elidable", False)
        )

    def describe(self) -> str:
        return f"{self.taxonomy_name} on the {self.bus_kind.value} bus (node {self.node_id})"


class ComposedNI(AbstractNI):
    """A network interface assembled from one send port and one receive port.

    Device families (uncached-register, CDR, cachable-queue — see
    :mod:`repro.ni.primitives`) allocate their address layout, build their
    caches and queues, then attach the two ports; everything the abstract
    interface requires is pure delegation.  ``uncached_read``/``write``
    register hooks are fanned out to both ports, which ignore addresses
    that are not theirs.
    """

    def _attach_ports(self, send_port, recv_port) -> None:
        self.send_port = send_port
        self.recv_port = recv_port

    def proc_try_send(self, message: NetworkMessage):
        return self.send_port.proc_try_send(message)

    def proc_poll(self):
        return self.recv_port.proc_poll()

    def _injection_process(self):
        return self.send_port.injection_process()

    def _extraction_process(self):
        return self.recv_port.extraction_process()

    def uncached_read(self, address: int) -> None:
        self.send_port.uncached_read(address)
        self.recv_port.uncached_read(address)

    def uncached_write(self, address: int) -> None:
        self.send_port.uncached_write(address)
        self.recv_port.uncached_write(address)
