"""Network interface devices: the conventional NI2w and the coherent CNIs."""

from repro.ni.base import AbstractNI, DeviceHomeAgent, NIError, DEVICE_PROCESSING_CYCLES
from repro.ni.cni4 import CNI4
from repro.ni.cniq import CNI16Q, CNI512Q, CNI16Qm, CoherentQueueNI
from repro.ni.cq import CachableQueue, QueueError, SenseReverseQueue, sense_for_pass
from repro.ni.ni2w import NI2w
from repro.ni.taxonomy import (
    EVALUATED_DEVICES,
    DeviceInfo,
    NISpec,
    TaxonomyError,
    available_device_names,
    available_devices,
    classify_existing_machines,
    create_ni,
    device_class,
    parse_ni_name,
    register_device,
    validate_ni_kwargs,
)

__all__ = [
    "AbstractNI",
    "DeviceHomeAgent",
    "NIError",
    "DEVICE_PROCESSING_CYCLES",
    "NI2w",
    "CNI4",
    "CoherentQueueNI",
    "CNI16Q",
    "CNI512Q",
    "CNI16Qm",
    "CachableQueue",
    "SenseReverseQueue",
    "QueueError",
    "sense_for_pass",
    "NISpec",
    "TaxonomyError",
    "parse_ni_name",
    "create_ni",
    "device_class",
    "register_device",
    "available_devices",
    "available_device_names",
    "validate_ni_kwargs",
    "DeviceInfo",
    "classify_existing_machines",
    "EVALUATED_DEVICES",
]
