"""Network interface devices, assembled from composable primitives.

The three device *families* (:class:`UncachedNI`, :class:`CdrNI`,
:class:`CoherentQueueNI`) pair the send/receive port primitives of
:mod:`repro.ni.primitives` over the shared :class:`AbstractNI`
infrastructure; :mod:`repro.ni.registry` synthesizes a concrete device
class for any legal taxonomy name from them.
"""

from repro.ni.base import (
    AbstractNI,
    ComposedNI,
    DeviceHomeAgent,
    NIError,
    DEVICE_PROCESSING_CYCLES,
)
from repro.ni.cni4 import CNI4, CdrNI
from repro.ni.cniq import CNI16Q, CNI512Q, CNI16Qm, CoherentQueueNI
from repro.ni.cq import CachableQueue, QueueError, SenseReverseQueue, sense_for_pass
from repro.ni.ni2w import NI2w, UncachedNI
from repro.ni.registry import (
    DEVICE_SCHEMA_VERSION,
    GENERATIVE_SAMPLE,
    DeviceSpec,
    synthesized_class,
)
from repro.ni.taxonomy import (
    EVALUATED_DEVICES,
    DeviceInfo,
    NISpec,
    TaxonomyError,
    available_device_names,
    available_devices,
    classify_existing_machines,
    create_ni,
    device_class,
    parse_ni_name,
    register_device,
    unregister_device,
    validate_ni_kwargs,
)

__all__ = [
    "AbstractNI",
    "ComposedNI",
    "DeviceHomeAgent",
    "NIError",
    "DEVICE_PROCESSING_CYCLES",
    "NI2w",
    "UncachedNI",
    "CNI4",
    "CdrNI",
    "CoherentQueueNI",
    "CNI16Q",
    "CNI512Q",
    "CNI16Qm",
    "CachableQueue",
    "SenseReverseQueue",
    "QueueError",
    "sense_for_pass",
    "NISpec",
    "TaxonomyError",
    "parse_ni_name",
    "create_ni",
    "device_class",
    "register_device",
    "unregister_device",
    "available_devices",
    "available_device_names",
    "validate_ni_kwargs",
    "DeviceInfo",
    "DeviceSpec",
    "synthesized_class",
    "DEVICE_SCHEMA_VERSION",
    "GENERATIVE_SAMPLE",
    "classify_existing_machines",
    "EVALUATED_DEVICES",
]
