"""Cachable queues (CQs) — functional state and the sense-reverse protocol.

A cachable queue is a contiguous region of coherent cache blocks managed as
a circular queue of fixed-size entries (one network message per entry).
This module holds the *functional* queue state shared by the sender and
receiver; the *timing* of queue accesses (which cache does which coherent
block operation) lives with the NI devices and the processor-side code.

The paper's three optimizations are represented directly:

* **lazy pointers** — the sender keeps a conservative ``shadow`` copy of the
  receiver's head pointer and only re-reads the real head pointer when the
  shadow indicates a full queue;
* **message valid bits** — the receiver detects arrivals by examining the
  valid word of the entry at the head rather than reading the tail pointer;
* **sense reverse** — the encoding of "valid" alternates on each pass around
  the queue, so the receiver never needs to clear valid bits.

Internally the queue uses monotonic enqueue/dequeue counts, which are
exactly equivalent to the head/tail + sense-bit formulation of the paper's
Figures 4 and 5 (the equivalence is property-tested in the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.common.types import NetworkMessage


class QueueError(RuntimeError):
    """Raised for cachable-queue protocol violations."""


def sense_for_pass(pass_number: int) -> int:
    """Valid-bit encoding for a given pass around the queue.

    The paper encodes valid as 1 on odd passes and 0 on even passes; the
    first pass through the queue is pass 1 (odd), so it uses sense 1.
    """
    return pass_number % 2


@dataclass
class QueueEntry:
    """One slot of the circular queue (a message plus its written sense)."""

    message: Optional[NetworkMessage] = None
    sense: Optional[int] = None


class CachableQueue:
    """Functional state of one single-sender / single-receiver cachable queue."""

    def __init__(
        self,
        name: str,
        base_addr: int,
        num_blocks: int,
        blocks_per_entry: int,
        block_bytes: int,
        head_ptr_addr: int,
        tail_ptr_addr: int,
    ):
        if num_blocks <= 0 or blocks_per_entry <= 0:
            raise QueueError("queue and entry sizes must be positive")
        if num_blocks % blocks_per_entry != 0:
            raise QueueError(
                f"queue of {num_blocks} blocks is not a whole number of "
                f"{blocks_per_entry}-block entries"
            )
        self.name = name
        self.base_addr = base_addr
        self.num_blocks = num_blocks
        self.blocks_per_entry = blocks_per_entry
        self.block_bytes = block_bytes
        self.capacity = num_blocks // blocks_per_entry
        self.head_ptr_addr = head_ptr_addr
        self.tail_ptr_addr = tail_ptr_addr

        self.entries: List[QueueEntry] = [QueueEntry() for _ in range(self.capacity)]
        # Per-slot block-address prefixes, precomputed so the per-message
        # entry_block_addrs lookup allocates nothing.  The returned lists are
        # shared: callers iterate them, never mutate.
        self._entry_addr_prefixes: List[List[List[int]]] = []
        for slot in range(self.capacity):
            base = base_addr + slot * blocks_per_entry * block_bytes
            addrs = [base + i * block_bytes for i in range(blocks_per_entry)]
            self._entry_addr_prefixes.append(
                [addrs[:n] for n in range(1, blocks_per_entry + 1)]
            )
        #: Monotonic number of messages ever enqueued (sender-owned).
        self.tail_count = 0
        #: Monotonic number of messages ever dequeued (receiver-owned).
        self.head_count = 0
        #: The sender's lazy copy of ``head_count``.
        self.shadow_head_count = 0
        self.shadow_refreshes = 0
        self.max_occupancy = 0

    # ------------------------------------------------------------------
    # Index / sense arithmetic
    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return self.tail_count - self.head_count

    def head_index(self) -> int:
        return self.head_count % self.capacity

    def tail_index(self) -> int:
        return self.tail_count % self.capacity

    @property
    def sender_sense(self) -> int:
        """Sense the sender writes on its current pass (Figure 4)."""
        return sense_for_pass(self.tail_count // self.capacity + 1)

    @property
    def receiver_sense(self) -> int:
        """Sense the receiver expects on its current pass (Figure 5)."""
        return sense_for_pass(self.head_count // self.capacity + 1)

    # ------------------------------------------------------------------
    # State predicates
    # ------------------------------------------------------------------
    def empty(self) -> bool:
        return self.occupancy == 0

    def full(self) -> bool:
        return self.occupancy >= self.capacity

    def full_by_shadow(self) -> bool:
        """The sender's conservative full check against its shadow head."""
        return self.tail_count - self.shadow_head_count >= self.capacity

    def refresh_shadow(self) -> None:
        """Re-read the real head pointer (the caller pays the cache miss)."""
        self.shadow_head_count = self.head_count
        self.shadow_refreshes += 1

    def head_entry_valid(self) -> bool:
        """Receiver-visible validity of the entry at the head (valid word
        matches the receiver's current sense)."""
        entry = self.entries[self.head_index()]
        return entry.sense is not None and entry.sense == self.receiver_sense

    # ------------------------------------------------------------------
    # Queue operations (functional)
    # ------------------------------------------------------------------
    def enqueue(self, message: NetworkMessage) -> int:
        """Append a message; returns the slot index used."""
        if self.full():
            raise QueueError(f"{self.name}: enqueue on a full queue")
        slot = self.tail_index()
        self.entries[slot] = QueueEntry(message=message, sense=self.sender_sense)
        self.tail_count += 1
        self.max_occupancy = max(self.max_occupancy, self.occupancy)
        return slot

    def peek(self) -> Optional[NetworkMessage]:
        """The message at the head if the valid word matches, else None."""
        if not self.head_entry_valid():
            return None
        return self.entries[self.head_index()].message

    def dequeue(self) -> NetworkMessage:
        """Remove and return the message at the head.

        Sense reverse means the entry is *not* cleared; the stale sense value
        simply fails the validity check on the receiver's next pass.
        """
        message = self.peek()
        if message is None:
            raise QueueError(f"{self.name}: dequeue from an empty queue")
        self.head_count += 1
        return message

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def entry_base_addr(self, slot: int) -> int:
        if not 0 <= slot < self.capacity:
            raise QueueError(f"{self.name}: slot {slot} out of range")
        return self.base_addr + slot * self.blocks_per_entry * self.block_bytes

    def entry_block_addrs(self, slot: int, num_blocks: Optional[int] = None) -> List[int]:
        """Block addresses of an entry (optionally only its first blocks).

        Returns a precomputed shared list; callers must not mutate it.
        """
        count = self.blocks_per_entry if num_blocks is None else num_blocks
        if not 1 <= count <= self.blocks_per_entry:
            raise QueueError(
                f"{self.name}: entry spans {self.blocks_per_entry} blocks, asked for {count}"
            )
        if not 0 <= slot < self.capacity:
            raise QueueError(f"{self.name}: slot {slot} out of range")
        return self._entry_addr_prefixes[slot][count - 1]

    def valid_word_addr(self, slot: int) -> int:
        """Address of the block holding the entry's valid/sense word."""
        return self.entry_base_addr(slot)

    def all_block_addrs(self) -> List[int]:
        return [
            self.base_addr + i * self.block_bytes for i in range(self.num_blocks)
        ]

    def __repr__(self) -> str:
        return (
            f"<CachableQueue {self.name} cap={self.capacity} "
            f"occ={self.occupancy} head={self.head_count} tail={self.tail_count}>"
        )


# ----------------------------------------------------------------------
# Reference implementation of the paper's Figure 4 / Figure 5 pseudo-code
# ----------------------------------------------------------------------
@dataclass
class SenseReverseQueue:
    """A literal transcription of the sense-reverse enqueue/dequeue pseudo
    code (Figures 4 and 5), used to cross-check :class:`CachableQueue`.

    Entries store the written sense value; the valid word is the sense.
    """

    capacity: int
    head: int = 0
    tail: int = 0
    sender_sense: int = 1
    receiver_sense: int = 1
    slots: List[Optional[Tuple[object, int]]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise QueueError("capacity must be positive")
        if not self.slots:
            self.slots = [None] * self.capacity

    def is_full(self) -> bool:
        return self.tail == self.head and self.sender_sense != self.receiver_sense

    def is_empty(self) -> bool:
        slot = self.slots[self.head]
        return slot is None or slot[1] != self.receiver_sense

    def enqueue(self, item: object) -> bool:
        if self.is_full():
            return False
        self.slots[self.tail] = (item, self.sender_sense)
        self.tail = (self.tail + 1) % self.capacity
        if self.tail == 0:
            self.sender_sense ^= 1
        return True

    def dequeue(self) -> Optional[object]:
        if self.is_empty():
            return None
        item, _ = self.slots[self.head]
        self.head = (self.head + 1) % self.capacity
        if self.head == 0:
            self.receiver_sense ^= 1
        return item
