"""CQ-based coherent network interfaces: CNI16Q, CNI512Q and CNI16Qm.

Each direction (send and receive) is a cachable queue of 256-byte network
messages (4 cache blocks per entry).  The processor and the device
communicate purely through coherent block accesses plus one uncached
"message ready" store per send (paper Section 3):

* **send queue** (processor → device): the processor checks its lazy shadow
  of the device-written head pointer, writes the message blocks, bumps its
  private tail pointer and issues the uncached message-ready store.  The
  device pulls the blocks out of the processor cache and injects them.
* **receive queue** (device → processor): the device checks its lazy shadow
  of the processor-written head pointer, writes the message blocks (whole
  blocks, so misses cost only an invalidation) and commits the valid word
  last.  The processor polls the valid word of the head entry — a cache hit
  while the queue is empty — and reads the message blocks on arrival.

``CNI16Q`` and ``CNI512Q`` home both queues on the device; ``CNI16Qm`` homes
the receive queue in main memory with a 16-block device cache in front of
it, so bursts overflow smoothly to memory instead of backing up the network.
"""

from __future__ import annotations

from typing import Optional

from repro.coherence.cache import CoherentCache
from repro.common.types import AgentKind, NetworkMessage
from repro.ni.base import AbstractNI, DEVICE_PROCESSING_CYCLES, NIError
from repro.ni.cq import CachableQueue
from repro.sim import Signal


class CoherentQueueNI(AbstractNI):
    """Generic CQ-based CNI, parameterized by queue and device-cache sizes."""

    taxonomy_name = "CNIQ"

    def __init__(
        self,
        *args,
        send_queue_blocks: int = 16,
        recv_queue_blocks: int = 16,
        recv_cache_blocks: Optional[int] = None,
        recv_home: str = "device",
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if recv_home not in ("device", "memory"):
            raise NIError(f"unknown receive-queue home {recv_home!r}")
        self.recv_home = recv_home
        blocks_per_entry = self.params.blocks_per_network_message
        if send_queue_blocks % blocks_per_entry or recv_queue_blocks % blocks_per_entry:
            raise NIError("queue sizes must be whole network messages")
        if recv_cache_blocks is None:
            recv_cache_blocks = recv_queue_blocks
        block_bytes = self.params.cache_block_bytes

        # --- Address allocation ----------------------------------------
        send_base = self.allocate_device_blocks(send_queue_blocks)
        if recv_home == "device":
            recv_base = self.allocate_device_blocks(recv_queue_blocks)
        else:
            recv_base = self.allocate_dram_blocks(recv_queue_blocks)
        # Pointer blocks live in ordinary main memory (they are plain
        # cachable memory shared by processor and device).
        self.send_head_ptr_addr = self.allocate_dram_blocks(1)
        self.send_tail_ptr_addr = self.allocate_dram_blocks(1)
        self.recv_head_ptr_addr = self.allocate_dram_blocks(1)
        self.msg_ready_reg = self.allocate_uncached_register()

        # --- Functional queue state --------------------------------------
        self.send_q = CachableQueue(
            name=f"{self.name}.sendq",
            base_addr=send_base,
            num_blocks=send_queue_blocks,
            blocks_per_entry=blocks_per_entry,
            block_bytes=block_bytes,
            head_ptr_addr=self.send_head_ptr_addr,
            tail_ptr_addr=self.send_tail_ptr_addr,
        )
        self.recv_q = CachableQueue(
            name=f"{self.name}.recvq",
            base_addr=recv_base,
            num_blocks=recv_queue_blocks,
            blocks_per_entry=blocks_per_entry,
            block_bytes=block_bytes,
            head_ptr_addr=self.recv_head_ptr_addr,
            tail_ptr_addr=0,  # the device tail is internal device state
        )

        # --- Device caches ------------------------------------------------
        self.send_cache = CoherentCache(
            self.sim,
            f"{self.name}.send-cache",
            self.interconnect,
            self.params,
            self.addrmap,
            size_bytes=send_queue_blocks * block_bytes,
            agent_kind=AgentKind.NI_DEVICE,
            bus_kind=self.bus_kind,
        )
        self.recv_cache = CoherentCache(
            self.sim,
            f"{self.name}.recv-cache",
            self.interconnect,
            self.params,
            self.addrmap,
            size_bytes=recv_cache_blocks * block_bytes,
            agent_kind=AgentKind.NI_DEVICE,
            bus_kind=self.bus_kind,
        )
        self.ptr_cache = CoherentCache(
            self.sim,
            f"{self.name}.ptr-cache",
            self.interconnect,
            self.params,
            self.addrmap,
            size_bytes=4 * block_bytes,
            agent_kind=AgentKind.NI_DEVICE,
            bus_kind=self.bus_kind,
        )

        # --- Device-side signals ------------------------------------------
        self._send_ready_signal = Signal(self.sim, name=f"{self.name}.send-ready")
        self._recv_head_advanced = Signal(self.sim, name=f"{self.name}.head-advanced")

    # ------------------------------------------------------------------
    # Uncached register hooks
    # ------------------------------------------------------------------
    def uncached_write(self, address: int) -> None:
        if address == self.msg_ready_reg:
            self.stats.add("message_ready_signals")
            self._send_ready_signal.fire()

    # ------------------------------------------------------------------
    # Processor side
    # ------------------------------------------------------------------
    def proc_try_send(self, message: NetworkMessage):
        proc = self._processor_agent()
        sq = self.send_q
        # 1. Space check against the lazy shadow of the device-written head.
        #    The tail pointer and shadow live in the sender's private block.
        yield from proc.read_block(sq.tail_ptr_addr)
        if sq.full_by_shadow():
            self.stats.add("send_shadow_refreshes")
            yield from proc.read_block(sq.head_ptr_addr)
            sq.refresh_shadow()
            if sq.full_by_shadow():
                self.stats.add("send_full")
                return False
        # 2. Write the message into the queue entry, one block at a time,
        #    copying the data out of the user buffer.
        slot = sq.tail_index()
        for addr in sq.entry_block_addrs(slot, self.blocks_for(message)):
            yield from proc.write_block(addr)
            yield self.params.block_copy_cycles
        message.send_time = self.sim.now
        sq.enqueue(message)
        # 3. Bump the private tail pointer (cache hit).
        yield from proc.write_block(sq.tail_ptr_addr)
        # 4. Message-ready signal: one uncached store to the device.
        yield from self.uncached_store(self.msg_ready_reg)
        self.stats.add("messages_sent")
        return True

    def proc_poll(self):
        proc = self._processor_agent()
        rq = self.recv_q
        slot = rq.head_index()
        # 1. Examine the valid word of the head entry; hits in the cache
        #    while the queue is empty, misses when the device wrote a new
        #    message (the write invalidated our copy).
        yield from proc.read_block(rq.valid_word_addr(slot))
        self._counts["polls"] += 1
        message = rq.peek()
        if message is None:
            self._counts["empty_polls"] += 1
            return None
        # 2. Read the rest of the message blocks, copying each into the
        #    user-level buffer.
        yield self.params.block_copy_cycles
        for addr in rq.entry_block_addrs(slot, self.blocks_for(message))[1:]:
            yield from proc.read_block(addr)
            yield self.params.block_copy_cycles
        rq.dequeue()
        # 3. Advance the head pointer (receiver-private block, usually a hit).
        yield from proc.write_block(rq.head_ptr_addr)
        self._recv_head_advanced.fire()
        self.stats.add("messages_received")
        return message

    # ------------------------------------------------------------------
    # Device side
    # ------------------------------------------------------------------
    def _injection_process(self):
        sq = self.send_q
        while True:
            if sq.empty():
                yield self._send_ready_signal
                continue
            slot = sq.head_index()
            message = sq.entries[slot].message
            yield from self._wait_for_window(message.dest)
            # Pull the message blocks out of the processor cache.  Injection
            # is cut-through: once the first block has been read the message
            # starts down the wire and the remaining blocks stream behind it.
            blocks = sq.entry_block_addrs(slot, self.blocks_for(message))
            yield from self.send_cache.read_block(blocks[0])
            yield DEVICE_PROCESSING_CYCLES
            self._inject(message)
            for addr in blocks[1:]:
                yield from self.send_cache.read_block(addr)
            sq.dequeue()
            # Advance the device-written head pointer so the processor's
            # lazy shadow can eventually observe the free space.
            yield from self.ptr_cache.write_block(sq.head_ptr_addr)

    def _extraction_process(self):
        rq = self.recv_q
        while True:
            if not self._net_in:
                yield self._net_in_signal
                continue
            # Space check against the device's lazy shadow of the processor
            # head pointer.
            if rq.full_by_shadow():
                self.stats.add("recv_shadow_refreshes")
                yield from self.ptr_cache.read_block(rq.head_ptr_addr)
                rq.refresh_shadow()
                if rq.full_by_shadow():
                    # Receive queue genuinely full: back-pressure the network
                    # until the processor drains a message.
                    self.stats.add("recv_queue_full_stalls")
                    yield self._recv_head_advanced
                    continue
            message = self._net_in.popleft()
            slot = rq.tail_index()
            blocks = rq.entry_block_addrs(slot, self.blocks_for(message))
            # Write the message body first, then commit the valid word by
            # re-touching the first block (normally a device-cache hit).
            for addr in blocks:
                yield from self.recv_cache.write_block_full(addr)
            yield from self.recv_cache.write_block(blocks[0])
            yield DEVICE_PROCESSING_CYCLES
            rq.enqueue(message)
            self.stats.add("messages_accepted")
            self._ack(message)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def queue_occupancies(self) -> dict:
        return {
            "send": self.send_q.occupancy,
            "recv": self.recv_q.occupancy,
            "net_in": len(self._net_in),
        }


class CNI16Q(CoherentQueueNI):
    """16-block (4-message) device-homed cachable queues."""

    taxonomy_name = "CNI16Q"

    def __init__(self, *args, **kwargs):
        kwargs.setdefault("send_queue_blocks", 16)
        kwargs.setdefault("recv_queue_blocks", 16)
        kwargs.setdefault("recv_home", "device")
        super().__init__(*args, **kwargs)


class CNI512Q(CoherentQueueNI):
    """512-block (128-message) device-homed cachable queues."""

    taxonomy_name = "CNI512Q"

    def __init__(self, *args, **kwargs):
        kwargs.setdefault("send_queue_blocks", 512)
        kwargs.setdefault("recv_queue_blocks", 512)
        kwargs.setdefault("recv_home", "device")
        super().__init__(*args, **kwargs)


class CNI16Qm(CoherentQueueNI):
    """16-block device cache over a 512-block receive queue homed in memory.

    The receive queue pages are ordinary pinned main-memory pages, so when
    the device cache fills, older blocks are written back to memory and the
    queue keeps absorbing bursts instead of backing up the network.  (The
    paper only studies memory buffering on the receive side; the send queue
    is device-homed as in CNI16Q.)
    """

    taxonomy_name = "CNI16Qm"

    def __init__(self, *args, **kwargs):
        kwargs.setdefault("send_queue_blocks", 16)
        kwargs.setdefault("recv_queue_blocks", 512)
        kwargs.setdefault("recv_cache_blocks", 16)
        kwargs.setdefault("recv_home", "memory")
        super().__init__(*args, **kwargs)
