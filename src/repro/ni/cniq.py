"""The cachable-queue family: CNI16Q, CNI512Q, CNI16Qm and every CNI{n}Q[m].

Each direction (send and receive) is a cachable queue of 256-byte network
messages (4 cache blocks per entry).  The processor and the device
communicate purely through coherent block accesses plus one uncached
"message ready" store per send (paper Section 3):

* **send queue** (processor → device): the processor checks its lazy shadow
  of the device-written head pointer, writes the message blocks, bumps its
  private tail pointer and issues the uncached message-ready store.  The
  device pulls the blocks out of the processor cache and injects them.
* **receive queue** (device → processor): the device checks its lazy shadow
  of the processor-written head pointer, writes the message blocks (whole
  blocks, so misses cost only an invalidation) and commits the valid word
  last.  The processor polls the valid word of the head entry — a cache hit
  while the queue is empty — and reads the message blocks on arrival.

``CNI16Q`` and ``CNI512Q`` home both queues on the device; ``CNI16Qm``
homes the receive queue in main memory with a 16-block device cache in
front of it, so bursts overflow smoothly to memory instead of backing up
the network.  The mechanisms themselves (lazy pointers, valid words, sense
reverse) live in :mod:`repro.ni.primitives` and :mod:`repro.ni.cq`; this
module only decides the address layout and the queue/cache sizing.
"""

from __future__ import annotations

from typing import Optional

from repro.coherence.cache import CoherentCache
from repro.common.types import AgentKind
from repro.ni.base import ComposedNI, NIError
from repro.ni.cq import CachableQueue
from repro.ni.primitives import CqRecvPort, CqSendPort


class CoherentQueueNI(ComposedNI):
    """Generic CQ-based CNI, parameterized by queue and device-cache sizes."""

    taxonomy_name = "CNIQ"

    def __init__(
        self,
        *args,
        send_queue_blocks: int = 16,
        recv_queue_blocks: int = 16,
        recv_cache_blocks: Optional[int] = None,
        recv_home: str = "device",
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if recv_home not in ("device", "memory"):
            raise NIError(f"unknown receive-queue home {recv_home!r}")
        self.recv_home = recv_home
        blocks_per_entry = self.params.blocks_per_network_message
        if send_queue_blocks % blocks_per_entry or recv_queue_blocks % blocks_per_entry:
            raise NIError("queue sizes must be whole network messages")
        if recv_cache_blocks is None:
            recv_cache_blocks = recv_queue_blocks
        block_bytes = self.params.cache_block_bytes

        # --- Address allocation ----------------------------------------
        # Layout order is part of the device's observable behaviour (it
        # determines conflict misses), so it is decided here, not in ports.
        send_base = self.allocate_device_blocks(send_queue_blocks)
        if recv_home == "device":
            recv_base = self.allocate_device_blocks(recv_queue_blocks)
        else:
            recv_base = self.allocate_dram_blocks(recv_queue_blocks)
        # Pointer blocks live in ordinary main memory (they are plain
        # cachable memory shared by processor and device).
        self.send_head_ptr_addr = self.allocate_dram_blocks(1)
        self.send_tail_ptr_addr = self.allocate_dram_blocks(1)
        self.recv_head_ptr_addr = self.allocate_dram_blocks(1)
        self.msg_ready_reg = self.allocate_uncached_register()

        # --- Functional queue state --------------------------------------
        self.send_q = CachableQueue(
            name=f"{self.name}.sendq",
            base_addr=send_base,
            num_blocks=send_queue_blocks,
            blocks_per_entry=blocks_per_entry,
            block_bytes=block_bytes,
            head_ptr_addr=self.send_head_ptr_addr,
            tail_ptr_addr=self.send_tail_ptr_addr,
        )
        self.recv_q = CachableQueue(
            name=f"{self.name}.recvq",
            base_addr=recv_base,
            num_blocks=recv_queue_blocks,
            blocks_per_entry=blocks_per_entry,
            block_bytes=block_bytes,
            head_ptr_addr=self.recv_head_ptr_addr,
            tail_ptr_addr=0,  # the device tail is internal device state
        )

        # --- Device caches ------------------------------------------------
        self.send_cache = CoherentCache(
            self.sim,
            f"{self.name}.send-cache",
            self.interconnect,
            self.params,
            self.addrmap,
            size_bytes=send_queue_blocks * block_bytes,
            agent_kind=AgentKind.NI_DEVICE,
            bus_kind=self.bus_kind,
        )
        self.recv_cache = CoherentCache(
            self.sim,
            f"{self.name}.recv-cache",
            self.interconnect,
            self.params,
            self.addrmap,
            size_bytes=recv_cache_blocks * block_bytes,
            agent_kind=AgentKind.NI_DEVICE,
            bus_kind=self.bus_kind,
        )
        self.ptr_cache = CoherentCache(
            self.sim,
            f"{self.name}.ptr-cache",
            self.interconnect,
            self.params,
            self.addrmap,
            size_bytes=4 * block_bytes,
            agent_kind=AgentKind.NI_DEVICE,
            bus_kind=self.bus_kind,
        )

        self._attach_ports(
            CqSendPort(self, self.send_q, self.send_cache, self.ptr_cache, self.msg_ready_reg),
            CqRecvPort(self, self.recv_q, self.recv_cache, self.ptr_cache),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def queue_occupancies(self) -> dict:
        return {
            "send": self.send_q.occupancy,
            "recv": self.recv_q.occupancy,
            "net_in": len(self._net_in),
        }


class CNI16Q(CoherentQueueNI):
    """16-block (4-message) device-homed cachable queues."""

    taxonomy_name = "CNI16Q"

    def __init__(self, *args, **kwargs):
        kwargs.setdefault("send_queue_blocks", 16)
        kwargs.setdefault("recv_queue_blocks", 16)
        kwargs.setdefault("recv_home", "device")
        super().__init__(*args, **kwargs)


class CNI512Q(CoherentQueueNI):
    """512-block (128-message) device-homed cachable queues."""

    taxonomy_name = "CNI512Q"

    def __init__(self, *args, **kwargs):
        kwargs.setdefault("send_queue_blocks", 512)
        kwargs.setdefault("recv_queue_blocks", 512)
        kwargs.setdefault("recv_home", "device")
        super().__init__(*args, **kwargs)


class CNI16Qm(CoherentQueueNI):
    """16-block device cache over a 512-block receive queue homed in memory.

    The receive queue pages are ordinary pinned main-memory pages, so when
    the device cache fills, older blocks are written back to memory and the
    queue keeps absorbing bursts instead of backing up the network.  (The
    paper only studies memory buffering on the receive side; the send queue
    is device-homed as in CNI16Q.)
    """

    taxonomy_name = "CNI16Qm"

    def __init__(self, *args, **kwargs):
        kwargs.setdefault("send_queue_blocks", 16)
        kwargs.setdefault("recv_queue_blocks", 512)
        kwargs.setdefault("recv_cache_blocks", 16)
        kwargs.setdefault("recv_home", "memory")
        super().__init__(*args, **kwargs)
