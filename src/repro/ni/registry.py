"""Declarative device registry: any taxonomy point, assembled from primitives.

The paper's contribution is a *taxonomy*, not five devices — ``NI_iX`` /
``CNI_iX`` names span a whole generative space (Alewife's ``NI16w``,
*T-NG's ``NI128Q``, or unexplored points like ``CNI64Q``).  This module
turns any legal taxonomy name into a working device:

* :class:`DeviceSpec` is the declarative *build plan* derived from a parsed
  :class:`~repro.ni.taxonomy.NISpec` — which family implements the point
  (uncached registers, CDRs, or cachable queues), how the exposed region is
  sized, where the receive queue is homed, and the constructor defaults
  that realise it;
* :func:`synthesized_class` materialises the plan as a concrete
  :class:`~repro.ni.base.AbstractNI` subclass (memoised; picklable by
  reconstruction across processes, see :class:`_SynthesizedMeta`) so the
  rest of the stack — ``create_ni``, ``validate_ni_kwargs``,
  ``Machine.build`` — treats generated devices exactly like the five
  hand-registered paper devices;
* :data:`DEVICE_SCHEMA_VERSION` versions the construction semantics so the
  on-disk result cache can invalidate entries computed under older rules.

Sizing rules for generated devices (documented constants below):

* ``NI{n}w`` — n words exposed per direction; the hardware FIFO scales
  proportionally, anchored at the CM-5's 4 messages for 2 words
  (``fifo_messages = 2 * n``).
* ``NI{n}`` / ``NI{n}Q`` — an n-block queue holds ``n / 4`` messages
  (``Q`` adds explicit uncached pointer updates).
* ``CNI{n}`` — n CDR blocks per direction, used as ``n / 4`` implicit
  round-robin message slots.
* ``CNI{n}Q`` — n-block device-homed send and receive queues.
* ``CNI{n}Qm`` — n-block device cache over a memory-homed receive queue of
  ``32 * n`` blocks, anchored at the paper's CNI16Qm (16-block cache over a
  512-block queue).
"""

from __future__ import annotations

import abc
import copyreg
from dataclasses import dataclass
from typing import Dict, Tuple, Type

from repro.common.params import DEFAULT_PARAMS
from repro.ni.base import AbstractNI
from repro.ni.cni4 import CdrNI
from repro.ni.cniq import CoherentQueueNI
from repro.ni.ni2w import UncachedNI
from repro.ni.taxonomy import NISpec, TaxonomyError, parse_ni_name

#: Version of the device-construction semantics.  Bump whenever the way a
#: taxonomy name maps to a concrete device changes (new sizing rules, new
#: timing behaviour): cached experiment results keyed under an older
#: version are then invalidated by :mod:`repro.api.cache`.
DEVICE_SCHEMA_VERSION = 2

#: FIFO messages per exposed word for the ``NI{n}w`` family (CM-5 anchor:
#: NI2w buffers 4 messages behind its 2 exposed words).
WORDS_TO_FIFO_MESSAGES = 2

#: Receive-queue blocks per device-cache block for the ``CNI{n}Qm`` family
#: (paper anchor: CNI16Qm backs a 512-block memory-homed queue with a
#: 16-block device cache).
QM_RECV_QUEUE_FACTOR = 32


@dataclass(frozen=True)
class DeviceSpec:
    """Declarative build plan for one taxonomy point.

    ``family`` selects the implementing device family, ``defaults`` the
    constructor keywords that realise the point's sizing.  The plan is what
    :func:`synthesized_class` compiles; it is also useful on its own for
    tooling that wants to reason about the space without building devices.
    """

    name: str
    spec: NISpec
    family: str                      # "uncached" | "cdr" | "cq"
    pointers: str                    # "implicit" | "explicit"
    defaults: Tuple[Tuple[str, object], ...]

    #: Family name -> implementing base class.
    FAMILY_BASES = {
        "uncached": UncachedNI,
        "cdr": CdrNI,
        "cq": CoherentQueueNI,
    }

    @property
    def base_class(self) -> Type[AbstractNI]:
        return self.FAMILY_BASES[self.family]

    @property
    def ni_defaults(self) -> Dict[str, object]:
        return dict(self.defaults)

    def describe(self) -> str:
        opts = ", ".join(f"{k}={v}" for k, v in self.defaults)
        return f"{self.name}: {self.base_class.__name__}({opts})"

    # ------------------------------------------------------------------
    @classmethod
    def from_name(cls, name: str) -> "DeviceSpec":
        """Plan the device for a taxonomy name, or raise :class:`TaxonomyError`.

        Buildability is checked against the paper's default machine
        parameters (4 blocks per 256-byte network message); devices built
        with custom parameters re-validate at construction time.
        """
        spec = parse_ni_name(name)
        bpm = DEFAULT_PARAMS.blocks_per_network_message
        if spec.unit == "blocks" and spec.exposed_size % bpm:
            raise TaxonomyError(
                f"{name!r}: size {spec.exposed_size} blocks is not a whole "
                f"number of {bpm}-block network messages"
            )
        if not spec.coherent:
            if spec.unit == "words":
                fifo = max(1, WORDS_TO_FIFO_MESSAGES * spec.exposed_size)
                return cls(
                    name=spec.name, spec=spec, family="uncached", pointers="implicit",
                    defaults=(("fifo_messages", fifo),),
                )
            explicit = spec.queue == "Q"
            return cls(
                name=spec.name, spec=spec, family="uncached",
                pointers="explicit" if explicit else "implicit",
                defaults=(
                    ("queue_blocks", spec.exposed_size),
                    ("explicit_pointers", explicit),
                ),
            )
        # Coherent devices (block-exposed by grammar).
        if spec.queue is None:
            return cls(
                name=spec.name, spec=spec, family="cdr", pointers="implicit",
                defaults=(("cdr_blocks", spec.exposed_size),),
            )
        if spec.queue == "Qm":
            return cls(
                name=spec.name, spec=spec, family="cq", pointers="explicit",
                defaults=(
                    ("send_queue_blocks", spec.exposed_size),
                    ("recv_queue_blocks", QM_RECV_QUEUE_FACTOR * spec.exposed_size),
                    ("recv_cache_blocks", spec.exposed_size),
                    ("recv_home", "memory"),
                ),
            )
        return cls(
            name=spec.name, spec=spec, family="cq", pointers="explicit",
            defaults=(
                ("send_queue_blocks", spec.exposed_size),
                ("recv_queue_blocks", spec.exposed_size),
                ("recv_cache_blocks", spec.exposed_size),
                ("recv_home", "device"),
            ),
        )

    # ------------------------------------------------------------------
    def build_class(self) -> Type[AbstractNI]:
        """Compile the plan into a concrete device class.

        The generated class applies the plan's sizing as overridable
        defaults (``ni_kwargs`` still win), exactly the way the
        hand-written ``CNI16Q``-style subclasses pin their parents.
        """
        defaults = self.ni_defaults
        base = self.base_class

        # The uncached family sizes its FIFO through either of two
        # exclusive axes; a user override on one axis must suppress the
        # plan's default on the other, or the device would reject the
        # combination deep in node assembly.
        sizing_aliases = {"fifo_messages": "queue_blocks", "queue_blocks": "fifo_messages"}

        # The parameter MUST be named "self": constructor signatures are
        # introspected by taxonomy._allowed_ni_kwargs to decide which
        # ni_kwargs a device accepts, and only "self" is infrastructure.
        def __init__(self, *args, **kwargs):
            for key, value in defaults.items():
                if sizing_aliases.get(key) in kwargs:
                    continue
                kwargs.setdefault(key, value)
            base.__init__(self, *args, **kwargs)

        return _SynthesizedMeta(
            self.name,
            (base,),
            {
                "__init__": __init__,
                "__doc__": self.describe(),
                "__module__": __name__,
                "taxonomy_name": self.name,
                "device_spec": self,
            },
        )


class _SynthesizedMeta(abc.ABCMeta):
    """Metaclass marking generated device classes (see the copyreg hook).

    A synthesized class has no importable module attribute, so it pickles
    by *reconstruction*: the reducer registered below sends the taxonomy
    name and the receiving process re-synthesizes (memoised) the identical
    class.  Works across fresh processes, e.g. ``multiprocessing`` spawn
    workers.  ``copyreg`` is the hook because pickle routes class objects
    through ``save_global`` without ever consulting a metaclass
    ``__reduce__``; the dispatch-table lookup runs first.
    """


def _reduce_synthesized(cls: "_SynthesizedMeta"):
    return (synthesized_class, (cls.taxonomy_name,))


copyreg.pickle(_SynthesizedMeta, _reduce_synthesized)


_SYNTHESIZED: Dict[str, Type[AbstractNI]] = {}  # repro: allow[MUTSTATE] memo of synthesized device classes, machine-free


def synthesized_class(name: str) -> Type[AbstractNI]:
    """The (memoised) generated device class for a legal taxonomy name."""
    cls = _SYNTHESIZED.get(name)
    if cls is None:
        cls = _SYNTHESIZED[name] = DeviceSpec.from_name(name).build_class()
    return cls


#: Canonical sample of the generative space, used by
#: :func:`repro.ni.taxonomy.available_devices` to enumerate what the
#: registry can build beyond the explicitly registered devices.  The space
#: itself is unbounded; this ladder covers every family across the queue
#: sizes the paper sweeps (4 -> 512 blocks) plus the classified machines.
GENERATIVE_SAMPLE: Tuple[str, ...] = (
    # Word-exposed uncached NIs (CM-5, Alewife and larger windows).
    "NI2w", "NI4w", "NI16w", "NI32w",
    # Block-exposed uncached NIs, implicit and explicit pointers (*T-NG).
    "NI4", "NI16", "NI16Q", "NI32Q", "NI128Q", "NI512Q",
    # CDR devices.
    "CNI4", "CNI8", "CNI16", "CNI64",
    # Device-homed cachable queues.
    "CNI4Q", "CNI16Q", "CNI64Q", "CNI128Q", "CNI512Q",
    # Memory-homed receive queues.
    "CNI4Qm", "CNI16Qm", "CNI64Qm",
)
