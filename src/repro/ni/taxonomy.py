"""The NI/CNI taxonomy of Section 3 and a factory for the evaluated devices.

Device names follow the paper's notation ``NI_iX`` / ``CNI_iX``:

* the ``CNI`` prefix means the device participates in the coherence
  protocol (caches its NI queues), the ``NI`` prefix means it does not;
* ``i`` is the exposed queue size in cache blocks, or in 4-byte words when
  suffixed with ``w``;
* ``X`` is empty (no explicit queue pointers), ``Q`` (explicit memory-based
  queue homed on the device) or ``Qm`` (explicit queue homed in main
  memory).

Examples from the paper: the CM-5 NI is ``NI2w``, Alewife is ``NI16w``,
*T-NG is ``NI128Q`` and the four evaluated coherent devices are ``CNI4``,
``CNI16Q``, ``CNI512Q`` and ``CNI16Qm``.
"""

from __future__ import annotations

import inspect
import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Optional, Tuple, Type

from repro.ni.base import AbstractNI
from repro.ni.cni4 import CNI4
from repro.ni.cniq import CNI16Q, CNI512Q, CNI16Qm
from repro.ni.ni2w import NI2w


class TaxonomyError(ValueError):
    """Raised for malformed or unsupported taxonomy names.

    Error messages name the offending field of the ``NI_iX`` grammar
    (``prefix``, ``size``, ``unit`` or ``queue``) so callers can see *which*
    axis of the taxonomy a name violates.
    """


_NAME_PATTERN = re.compile(r"^(?P<prefix>C?NI)(?P<size>\d+)(?P<unit>w?)(?P<queue>Qm|Q)?$")
_NAME_PATTERN_LAX = re.compile(
    r"^(?P<prefix>C?NI)(?P<size>\d+)(?P<unit>w?)(?P<queue>Qm|Q)?$", re.IGNORECASE
)


@dataclass(frozen=True)
class NISpec:
    """Parsed form of a taxonomy name."""

    name: str
    coherent: bool
    exposed_size: int
    unit: str                   # "blocks" or "words"
    queue: Optional[str]        # None, "Q" or "Qm"

    @property
    def exposed_blocks(self) -> Optional[int]:
        """Exposed size in cache blocks (None when expressed in words)."""
        return self.exposed_size if self.unit == "blocks" else None

    @property
    def home(self) -> str:
        """Where the exposed queue is homed."""
        if self.queue == "Qm":
            return "memory"
        return "device"

    def describe(self) -> str:
        unit = "cache blocks" if self.unit == "blocks" else "4-byte words"
        pointers = "explicit queue pointers" if self.queue else "no explicit queue pointers"
        kind = "coherent (cached NI queues)" if self.coherent else "uncached NI access"
        return f"{self.name}: {kind}, {self.exposed_size} {unit} exposed, {pointers}, home={self.home}"


def parse_ni_name(name: str) -> NISpec:
    """Parse a taxonomy name like ``"CNI16Qm"`` into an :class:`NISpec`.

    Raises :class:`TaxonomyError` for malformed names, with the message
    naming the offending grammar field.  Enforced grammar rules:

    * ``size`` must be a positive integer;
    * ``unit`` ``w`` (words) requires the ``NI`` prefix — coherent devices
      exchange whole cache blocks;
    * ``queue`` suffixes (``Q``/``Qm``) require block-sized exposure —
      explicit queues are arrays of message entries;
    * ``queue`` ``Qm`` requires the ``CNI`` prefix — a memory-homed queue
      needs coherent access to main memory.
    """
    stripped = name.strip()
    match = _NAME_PATTERN.match(stripped)
    if not match:
        lax = _NAME_PATTERN_LAX.match(stripped)
        if lax:
            candidate = (
                f"{lax.group('prefix').upper()}{lax.group('size')}"
                f"{lax.group('unit').lower()}{(lax.group('queue') or '').capitalize()}"
            )
            try:
                parse_ni_name(candidate)
            except TaxonomyError:
                hint = ""  # the case-fixed name is itself illegal; no hint
            else:
                hint = f" — did you mean {candidate!r}?"
            raise TaxonomyError(
                f"cannot parse NI taxonomy name {name!r}: names are "
                f"case-sensitive (prefix NI/CNI, unit 'w', queue 'Q'/'Qm')"
                f"{hint}"
            )
        raise TaxonomyError(
            f"cannot parse NI taxonomy name {name!r}: expected prefix NI or "
            f"CNI, a positive size, an optional unit 'w' and an optional "
            f"queue suffix 'Q' or 'Qm'"
        )
    prefix = match.group("prefix")
    size = int(match.group("size"))
    if size <= 0:
        raise TaxonomyError(f"{name!r}: size field (exposed queue size) must be positive")
    if match.group("size") != str(size):
        # Leading zeros would alias distinct spellings of the same device
        # ("NI04" vs "NI4") into distinct spec hashes and cache entries.
        raise TaxonomyError(
            f"{name!r}: size field must not have leading zeros (write {size})"
        )
    unit = "words" if match.group("unit") == "w" else "blocks"
    queue = match.group("queue")
    if unit == "words" and prefix == "CNI":
        raise TaxonomyError(
            f"{name!r}: unit field 'w' conflicts with the CNI prefix — "
            f"coherent devices expose whole cache blocks, not words"
        )
    if queue is not None and unit == "words":
        raise TaxonomyError(
            f"{name!r}: queue field {queue!r} requires block-sized exposure — "
            f"explicit queues are arrays of message-sized block entries"
        )
    if queue == "Qm" and prefix != "CNI":
        raise TaxonomyError(
            f"{name!r}: queue field 'Qm' (memory-homed queue) requires the "
            f"coherent CNI prefix"
        )
    return NISpec(
        name=stripped,
        coherent=prefix == "CNI",
        exposed_size=size,
        unit=unit,
        queue=queue,
    )


#: The five devices evaluated in the paper.
EVALUATED_DEVICES = ("NI2w", "CNI4", "CNI16Q", "CNI512Q", "CNI16Qm")

#: The pinned implementations of the paper devices; `unregister_device`
#: restores these if a plugin shadowed one of the names.
_PAPER_CLASSES: Dict[str, Type[AbstractNI]] = {  # repro: allow[MUTSTATE] import-time device plugin registry
    "NI2w": NI2w,
    "CNI4": CNI4,
    "CNI16Q": CNI16Q,
    "CNI512Q": CNI512Q,
    "CNI16Qm": CNI16Qm,
}

_DEVICE_CLASSES: Dict[str, Type[AbstractNI]] = dict(_PAPER_CLASSES)  # repro: allow[MUTSTATE] import-time device plugin registry


def device_class(name: str) -> Type[AbstractNI]:
    """Return the device class for a taxonomy name.

    Explicitly registered devices (the five evaluated ones plus any
    :func:`register_device` plugins) win; every other *legal* taxonomy name
    is synthesized on demand from the primitive components by
    :mod:`repro.ni.registry`, so the whole generative space is buildable.
    Raises :class:`TaxonomyError` for names that are neither registered nor
    valid taxonomy points.
    """
    cls = _DEVICE_CLASSES.get(name)
    if cls is not None:
        return cls
    from repro.ni.registry import synthesized_class

    return synthesized_class(name)


def register_device(name: str, cls: Optional[Type[AbstractNI]] = None):
    """Register a device implementation under a taxonomy name.

    Either a plain call, ``register_device("MyNI", MyClass)``, or the
    decorator form — the public plugin hook::

        @register_device("NI8wX")
        class MyNI(UncachedNI):
            ...

    Registered names shadow the generative registry, so a plugin may also
    *replace* a standard taxonomy point with a custom implementation.
    Returns the class, enabling decorator use.
    """
    if cls is None:
        def _decorator(klass: Type[AbstractNI]) -> Type[AbstractNI]:
            return register_device(name, klass)

        return _decorator
    if not (isinstance(cls, type) and issubclass(cls, AbstractNI)):
        raise TaxonomyError(f"{cls!r} is not an AbstractNI subclass")
    _DEVICE_CLASSES[name] = cls
    _ALLOWED_KWARGS_CACHE.pop(cls, None)
    return cls


def unregister_device(name: str) -> None:
    """Remove a registered device (no-op for unknown names).

    The five evaluated paper devices cannot be removed: unregistering one
    of their names restores the original pinned implementation, so a
    plugin that shadowed a paper device is always reversible.
    """
    original = _PAPER_CLASSES.get(name)
    if original is not None:
        _DEVICE_CLASSES[name] = original
    else:
        _DEVICE_CLASSES.pop(name, None)


@dataclass(frozen=True)
class DeviceInfo:
    """Metadata for one registered or generable device.

    ``cls_name`` names the *implementing* class: the registered class for
    explicit devices, the family base class (e.g. ``UncachedNI``) for
    generated entries — the synthesized subclass itself is named after the
    taxonomy name and only exists once the device is actually built.
    """

    name: str
    cls_name: str
    spec: Optional[NISpec]    # parsed taxonomy form, None if unparseable
    tunables: Tuple[str, ...]  # constructor kwargs accepted via ni_kwargs
    generated: bool = False    # synthesized from the generative registry

    def describe(self) -> str:
        if self.spec is not None:
            text = self.spec.describe()
            return f"{text} [generated]" if self.generated else text
        return f"{self.name}: custom device ({self.cls_name})"


def _device_info(name: str, cls: Type[AbstractNI], generated: bool) -> DeviceInfo:
    try:
        spec: Optional[NISpec] = parse_ni_name(name)
    except TaxonomyError:
        spec = None
    return DeviceInfo(
        name=name,
        cls_name=cls.__name__,
        spec=spec,
        tunables=tuple(sorted(_allowed_ni_kwargs(cls))),
        generated=generated,
    )


def available_devices(generative: bool = True) -> Tuple[DeviceInfo, ...]:
    """Metadata for every buildable device, sorted by taxonomy name.

    Explicitly registered devices (the five evaluated ones plus plugins)
    come flagged ``generated=False``; with ``generative`` (the default) the
    enumeration also covers the registry's canonical sample of the
    generative space (:data:`repro.ni.registry.GENERATIVE_SAMPLE` — the
    space itself is unbounded: any legal ``NI_iX``/``CNI_iX`` name builds).
    Each entry carries the parsed :class:`NISpec` (when the name follows
    the taxonomy grammar) and the constructor keywords the device accepts
    through ``ni_kwargs``.
    """
    entries: Dict[str, DeviceInfo] = {
        name: _device_info(name, cls, generated=False)
        for name, cls in _DEVICE_CLASSES.items()
    }
    if generative:
        from repro.ni.registry import GENERATIVE_SAMPLE, DeviceSpec

        for name in GENERATIVE_SAMPLE:
            if name in entries:
                continue
            # Metadata comes straight from the build plan — enumerating
            # the space must not synthesize (and cache) device classes.
            plan = DeviceSpec.from_name(name)
            entries[name] = DeviceInfo(
                name=name,
                cls_name=plan.base_class.__name__,
                spec=plan.spec,
                tunables=tuple(sorted(_allowed_ni_kwargs(plan.base_class))),
                generated=True,
            )
    return tuple(entries[name] for name in sorted(entries))


def available_device_names(generative: bool = True) -> Tuple[str, ...]:
    """Just the buildable taxonomy names, sorted."""
    return tuple(info.name for info in available_devices(generative=generative))


#: Constructor parameters supplied by :class:`repro.node.node.Node` itself;
#: never acceptable through user-facing ``ni_kwargs``.
_INFRA_PARAMS: FrozenSet[str] = frozenset(
    {"self", "sim", "node_id", "params", "addrmap", "interconnect", "fabric",
     "bus_kind", "dram_allocator"}
)

_ALLOWED_KWARGS_CACHE: Dict[type, FrozenSet[str]] = {}  # repro: allow[MUTSTATE] memo keyed by device class, machine-free


def _allowed_ni_kwargs(cls: type) -> FrozenSet[str]:
    """Keyword names a device constructor accepts beyond the infra params.

    Device ``__init__``\\ s are ``(*args, name=..., **kwargs)`` chains, so
    the acceptable set is the union of explicitly named parameters across
    the MRO, minus the infrastructure arguments the Node always passes.
    """
    cached = _ALLOWED_KWARGS_CACHE.get(cls)
    if cached is not None:
        return cached
    allowed = set()
    for klass in cls.__mro__:
        init = klass.__dict__.get("__init__")
        if init is None:
            continue
        try:
            signature = inspect.signature(init)
        except (TypeError, ValueError):
            continue
        for param in signature.parameters.values():
            if param.kind in (
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
                inspect.Parameter.KEYWORD_ONLY,
            ):
                allowed.add(param.name)
    result = frozenset(allowed - _INFRA_PARAMS)
    _ALLOWED_KWARGS_CACHE[cls] = result
    return result


def validate_ni_kwargs(name: str, ni_kwargs: Optional[Mapping] = None) -> None:
    """Check that ``ni_kwargs`` are acceptable for device ``name``.

    Raises :class:`TaxonomyError` for an unknown device or for keyword
    arguments the device constructor does not accept — *before* a machine
    gets assembled, instead of a ``TypeError`` deep in ``Node.__init__``.
    """
    cls = device_class(name)
    if not ni_kwargs:
        return
    allowed = _allowed_ni_kwargs(cls)
    unknown = sorted(set(ni_kwargs) - allowed)
    if unknown:
        raise TaxonomyError(
            f"device {name!r} does not accept ni_kwargs {unknown}; "
            f"supported: {sorted(allowed)}"
        )
    # Mutually exclusive kwarg groups declared by the device family (e.g.
    # the uncached family's two FIFO-sizing axes).
    for group in getattr(cls, "EXCLUSIVE_NI_KWARGS", ()):
        present = sorted(k for k in group if k in ni_kwargs)
        if len(present) > 1:
            raise TaxonomyError(
                f"device {name!r} accepts only one of {sorted(group)}, "
                f"got {present}"
            )


def create_ni(name: str, *args, **kwargs) -> AbstractNI:
    """Instantiate a device by taxonomy name.

    Positional/keyword arguments are forwarded to the device constructor
    (simulator, node id, params, address map, interconnect, fabric, ...).
    """
    cls = device_class(name)
    return cls(*args, **kwargs)


def classify_existing_machines() -> Dict[str, str]:
    """The paper's classification of existing machines (Section 3)."""
    return {
        "TMC CM-5": "NI2w",
        "MIT Alewife": "NI16w",
        "MIT *T-NG": "NI128Q",
    }
