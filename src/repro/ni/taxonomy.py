"""The NI/CNI taxonomy of Section 3 and a factory for the evaluated devices.

Device names follow the paper's notation ``NI_iX`` / ``CNI_iX``:

* the ``CNI`` prefix means the device participates in the coherence
  protocol (caches its NI queues), the ``NI`` prefix means it does not;
* ``i`` is the exposed queue size in cache blocks, or in 4-byte words when
  suffixed with ``w``;
* ``X`` is empty (no explicit queue pointers), ``Q`` (explicit memory-based
  queue homed on the device) or ``Qm`` (explicit queue homed in main
  memory).

Examples from the paper: the CM-5 NI is ``NI2w``, Alewife is ``NI16w``,
*T-NG is ``NI128Q`` and the four evaluated coherent devices are ``CNI4``,
``CNI16Q``, ``CNI512Q`` and ``CNI16Qm``.
"""

from __future__ import annotations

import inspect
import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Optional, Tuple, Type

from repro.ni.base import AbstractNI
from repro.ni.cni4 import CNI4
from repro.ni.cniq import CNI16Q, CNI512Q, CNI16Qm, CoherentQueueNI
from repro.ni.ni2w import NI2w


class TaxonomyError(ValueError):
    """Raised for malformed or unsupported taxonomy names."""


_NAME_PATTERN = re.compile(r"^(?P<prefix>C?NI)(?P<size>\d+)(?P<unit>w?)(?P<queue>Qm|Q)?$")


@dataclass(frozen=True)
class NISpec:
    """Parsed form of a taxonomy name."""

    name: str
    coherent: bool
    exposed_size: int
    unit: str                   # "blocks" or "words"
    queue: Optional[str]        # None, "Q" or "Qm"

    @property
    def exposed_blocks(self) -> Optional[int]:
        """Exposed size in cache blocks (None when expressed in words)."""
        return self.exposed_size if self.unit == "blocks" else None

    @property
    def home(self) -> str:
        """Where the exposed queue is homed."""
        if self.queue == "Qm":
            return "memory"
        return "device"

    def describe(self) -> str:
        unit = "cache blocks" if self.unit == "blocks" else "4-byte words"
        pointers = "explicit queue pointers" if self.queue else "no explicit queue pointers"
        kind = "coherent (cached NI queues)" if self.coherent else "uncached NI access"
        return f"{self.name}: {kind}, {self.exposed_size} {unit} exposed, {pointers}, home={self.home}"


def parse_ni_name(name: str) -> NISpec:
    """Parse a taxonomy name like ``"CNI16Qm"`` into an :class:`NISpec`."""
    match = _NAME_PATTERN.match(name.strip())
    if not match:
        raise TaxonomyError(f"cannot parse NI taxonomy name {name!r}")
    prefix = match.group("prefix")
    size = int(match.group("size"))
    if size <= 0:
        raise TaxonomyError(f"exposed queue size must be positive in {name!r}")
    unit = "words" if match.group("unit") == "w" else "blocks"
    queue = match.group("queue")
    if queue == "Qm" and prefix != "CNI":
        raise TaxonomyError(f"{name!r}: a memory-homed queue requires a coherent NI")
    return NISpec(
        name=name.strip(),
        coherent=prefix == "CNI",
        exposed_size=size,
        unit=unit,
        queue=queue,
    )


#: The five devices evaluated in the paper.
EVALUATED_DEVICES = ("NI2w", "CNI4", "CNI16Q", "CNI512Q", "CNI16Qm")

_DEVICE_CLASSES: Dict[str, Type[AbstractNI]] = {
    "NI2w": NI2w,
    "CNI4": CNI4,
    "CNI16Q": CNI16Q,
    "CNI512Q": CNI512Q,
    "CNI16Qm": CNI16Qm,
}


def device_class(name: str) -> Type[AbstractNI]:
    """Return the device class for one of the evaluated taxonomy names."""
    try:
        return _DEVICE_CLASSES[name]
    except KeyError:
        raise TaxonomyError(
            f"{name!r} is not one of the evaluated devices {EVALUATED_DEVICES}"
        ) from None


def register_device(name: str, cls: Type[AbstractNI]) -> None:
    """Register an additional device implementation under a taxonomy name."""
    if not issubclass(cls, AbstractNI):
        raise TaxonomyError(f"{cls!r} is not an AbstractNI subclass")
    _DEVICE_CLASSES[name] = cls
    _ALLOWED_KWARGS_CACHE.pop(cls, None)


@dataclass(frozen=True)
class DeviceInfo:
    """Metadata for one registered device."""

    name: str
    cls_name: str
    spec: Optional[NISpec]    # parsed taxonomy form, None if unparseable
    tunables: Tuple[str, ...]  # constructor kwargs accepted via ni_kwargs

    def describe(self) -> str:
        if self.spec is not None:
            return self.spec.describe()
        return f"{self.name}: custom device ({self.cls_name})"


def available_devices() -> Tuple[DeviceInfo, ...]:
    """Metadata for every registered device, sorted by taxonomy name.

    Each entry carries the parsed :class:`NISpec` (when the registered name
    follows the taxonomy grammar) and the constructor keywords the device
    accepts through ``ni_kwargs``.
    """
    infos = []
    for name in sorted(_DEVICE_CLASSES):
        cls = _DEVICE_CLASSES[name]
        try:
            spec: Optional[NISpec] = parse_ni_name(name)
        except TaxonomyError:
            spec = None
        infos.append(
            DeviceInfo(
                name=name,
                cls_name=cls.__name__,
                spec=spec,
                tunables=tuple(sorted(_allowed_ni_kwargs(cls))),
            )
        )
    return tuple(infos)


def available_device_names() -> Tuple[str, ...]:
    """Just the registered taxonomy names, sorted."""
    return tuple(sorted(_DEVICE_CLASSES))


#: Constructor parameters supplied by :class:`repro.node.node.Node` itself;
#: never acceptable through user-facing ``ni_kwargs``.
_INFRA_PARAMS: FrozenSet[str] = frozenset(
    {"self", "sim", "node_id", "params", "addrmap", "interconnect", "fabric",
     "bus_kind", "dram_allocator"}
)

_ALLOWED_KWARGS_CACHE: Dict[type, FrozenSet[str]] = {}


def _allowed_ni_kwargs(cls: type) -> FrozenSet[str]:
    """Keyword names a device constructor accepts beyond the infra params.

    Device ``__init__``\\ s are ``(*args, name=..., **kwargs)`` chains, so
    the acceptable set is the union of explicitly named parameters across
    the MRO, minus the infrastructure arguments the Node always passes.
    """
    cached = _ALLOWED_KWARGS_CACHE.get(cls)
    if cached is not None:
        return cached
    allowed = set()
    for klass in cls.__mro__:
        init = klass.__dict__.get("__init__")
        if init is None:
            continue
        try:
            signature = inspect.signature(init)
        except (TypeError, ValueError):
            continue
        for param in signature.parameters.values():
            if param.kind in (
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
                inspect.Parameter.KEYWORD_ONLY,
            ):
                allowed.add(param.name)
    result = frozenset(allowed - _INFRA_PARAMS)
    _ALLOWED_KWARGS_CACHE[cls] = result
    return result


def validate_ni_kwargs(name: str, ni_kwargs: Optional[Mapping] = None) -> None:
    """Check that ``ni_kwargs`` are acceptable for device ``name``.

    Raises :class:`TaxonomyError` for an unknown device or for keyword
    arguments the device constructor does not accept — *before* a machine
    gets assembled, instead of a ``TypeError`` deep in ``Node.__init__``.
    """
    cls = device_class(name)
    if not ni_kwargs:
        return
    allowed = _allowed_ni_kwargs(cls)
    unknown = sorted(set(ni_kwargs) - allowed)
    if unknown:
        raise TaxonomyError(
            f"device {name!r} does not accept ni_kwargs {unknown}; "
            f"supported: {sorted(allowed)}"
        )


def create_ni(name: str, *args, **kwargs) -> AbstractNI:
    """Instantiate a device by taxonomy name.

    Positional/keyword arguments are forwarded to the device constructor
    (simulator, node id, params, address map, interconnect, fabric, ...).
    """
    cls = device_class(name)
    return cls(*args, **kwargs)


def classify_existing_machines() -> Dict[str, str]:
    """The paper's classification of existing machines (Section 3)."""
    return {
        "TMC CM-5": "NI2w",
        "MIT Alewife": "NI16w",
        "MIT *T-NG": "NI128Q",
    }
