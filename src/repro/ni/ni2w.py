"""NI2w — the conventional, CM-5-like network interface.

All processor/NI communication uses *uncached* loads and stores:

* send: uncached load of the send-status register to check for space, then
  one uncached 8-byte store per double word of the (header + payload)
  network message,
* receive: uncached load of the receive-status register to poll, then one
  uncached 8-byte load per double word of the message (reading the data
  register implicitly pops the hardware FIFO).

The device contains small hardware FIFOs in both directions; when the
receive FIFO is full, arriving messages back up into the network (the
extraction process withholds the acknowledgement), which is what forces the
software flow-control buffering the paper describes.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.common.types import NetworkMessage
from repro.ni.base import AbstractNI, DEVICE_PROCESSING_CYCLES, NIError
from repro.sim import Signal


class NI2w(AbstractNI):
    """Conventional program-controlled NI with uncached device registers."""

    taxonomy_name = "NI2w"

    #: Hardware FIFO capacity per direction, in network messages.  The CM-5
    #: NI buffers only a handful of messages in the device.
    DEFAULT_FIFO_MESSAGES = 4

    def __init__(self, *args, fifo_messages: int = DEFAULT_FIFO_MESSAGES, **kwargs):
        super().__init__(*args, **kwargs)
        if fifo_messages < 1:
            raise NIError("NI2w needs at least one FIFO slot per direction")
        self.fifo_messages = fifo_messages

        # Device registers (addresses only; values are modelled functionally).
        self.send_status_reg = self.allocate_uncached_register()
        self.send_data_reg = self.allocate_uncached_register()
        self.recv_status_reg = self.allocate_uncached_register()
        self.recv_data_reg = self.allocate_uncached_register()

        self._send_fifo: "deque[NetworkMessage]" = deque()
        self._recv_fifo: "deque[NetworkMessage]" = deque()
        self._word_cycles = self.params.uncached_word_processing_cycles
        self._send_fifo_signal = Signal(self.sim, name=f"{self.name}.send-fifo")
        self._recv_space_signal = Signal(self.sim, name=f"{self.name}.recv-space")

    # ------------------------------------------------------------------
    # Processor side
    # ------------------------------------------------------------------
    def proc_try_send(self, message: NetworkMessage):
        """Uncached-store send path (returns True if accepted)."""
        # 1. Check the send-status register for space in the hardware FIFO.
        yield from self.uncached_load(self.send_status_reg)
        if len(self._send_fifo) >= self.fifo_messages:
            self.stats.add("send_full")
            return False
        # 2. Write the message, one uncached double-word store at a time
        #    (each word also costs the user-buffer load and loop overhead).
        for _ in range(self.words_for(message)):
            yield from self.uncached_store(self.send_data_reg)
            yield self._word_cycles
        message.send_time = self.sim.now
        self._send_fifo.append(message)
        self.stats.add("messages_sent")
        self._send_fifo_signal.fire()
        return True

    def proc_poll(self):
        """Uncached-load receive path (returns a message or None)."""
        # 1. Poll the receive-status register.
        yield from self.uncached_load(self.recv_status_reg)
        self._counts["polls"] += 1
        if not self._recv_fifo:
            self._counts["empty_polls"] += 1
            return None
        # 2. Read the message out of the hardware FIFO (implicit pop), one
        #    uncached double-word load at a time plus the user-buffer store.
        message = self._recv_fifo.popleft()
        for _ in range(self.words_for(message)):
            yield from self.uncached_load(self.recv_data_reg)
            yield self._word_cycles
        self.stats.add("messages_received")
        self._recv_space_signal.fire()
        return message

    # ------------------------------------------------------------------
    # Device side
    # ------------------------------------------------------------------
    def _injection_process(self):
        while True:
            if not self._send_fifo:
                yield self._send_fifo_signal
                continue
            message = self._send_fifo[0]
            yield from self._wait_for_window(message.dest)
            yield DEVICE_PROCESSING_CYCLES
            self._send_fifo.popleft()
            self._inject(message)
            # Removing the message frees FIFO space for the processor.
            self._send_fifo_signal.fire()

    def _extraction_process(self):
        while True:
            if not self._net_in:
                yield self._net_in_signal
                continue
            if len(self._recv_fifo) >= self.fifo_messages:
                # Receive FIFO full: the message stays in the network until
                # the processor drains the FIFO (backpressure).
                self.stats.add("recv_fifo_full_stalls")
                yield self._recv_space_signal
                continue
            message = self._net_in.popleft()
            yield DEVICE_PROCESSING_CYCLES
            self._recv_fifo.append(message)
            self.stats.add("messages_accepted")
            self._ack(message)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def send_fifo_depth(self) -> int:
        return len(self._send_fifo)

    def recv_fifo_depth(self) -> int:
        return len(self._recv_fifo)

    def pending_receive(self) -> Optional[NetworkMessage]:
        return self._recv_fifo[0] if self._recv_fifo else None
