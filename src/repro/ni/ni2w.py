"""The uncached-register device family: NI2w and its taxonomy relatives.

All processor/NI communication uses *uncached* loads and stores:

* send: uncached load of the send-status register to check for space, then
  one uncached 8-byte store per double word of the (header + payload)
  network message,
* receive: uncached load of the receive-status register to poll, then one
  uncached 8-byte load per double word of the message (reading the data
  register implicitly pops the hardware FIFO).

The device contains hardware FIFOs in both directions; when the receive
FIFO is full, arriving messages back up into the network (the extraction
process withholds the acknowledgement), which is what forces the software
flow-control buffering the paper describes.

:class:`UncachedNI` is the general family — every ``NI{n}w``, ``NI{n}``
and explicit-pointer ``NI{n}Q`` point of the taxonomy is an instance with
different FIFO sizing (see :mod:`repro.ni.registry`).  :class:`NI2w` is
the CM-5-like device evaluated in the paper.
"""

from __future__ import annotations

from typing import Optional

from repro.common.types import NetworkMessage
from repro.ni.base import ComposedNI, NIError
from repro.ni.primitives import UncachedRecvPort, UncachedSendPort


class UncachedNI(ComposedNI):
    """Program-controlled NI with uncached device registers.

    ``fifo_messages`` sizes the hardware FIFO per direction directly;
    alternatively ``queue_blocks`` sizes it as a whole number of network
    messages (the ``NI{n}``/``NI{n}Q`` block-exposed devices).  With
    ``explicit_pointers`` the device keeps memory-based queue pointers the
    processor must publish with one extra uncached store per send and per
    receive (the *T-NG ``NI{n}Q`` style).
    """

    taxonomy_name = "NIw"

    #: Hardware FIFO capacity per direction, in network messages.  The CM-5
    #: NI buffers only a handful of messages in the device.
    DEFAULT_FIFO_MESSAGES = 4

    #: Alternative sizing axes; declared so ``validate_ni_kwargs`` rejects
    #: specs naming both *before* any machine assembly starts.
    EXCLUSIVE_NI_KWARGS = (("fifo_messages", "queue_blocks"),)

    def __init__(
        self,
        *args,
        fifo_messages: Optional[int] = None,
        queue_blocks: Optional[int] = None,
        explicit_pointers: bool = False,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if fifo_messages is not None and queue_blocks is not None:
            raise NIError(
                f"{self.name}: give either fifo_messages or queue_blocks, "
                f"not both (the word-exposed family is sized by "
                f"fifo_messages, the block-exposed family by queue_blocks)"
            )
        if fifo_messages is None:
            if queue_blocks is not None:
                bpm = self.params.blocks_per_network_message
                if queue_blocks < bpm or queue_blocks % bpm:
                    raise NIError(
                        f"{self.name}: a {queue_blocks}-block queue is not a "
                        f"whole positive number of {bpm}-block network messages"
                    )
                fifo_messages = queue_blocks // bpm
            else:
                fifo_messages = self.DEFAULT_FIFO_MESSAGES
        if fifo_messages < 1:
            raise NIError(f"{self.taxonomy_name} needs at least one FIFO slot per direction")
        self.fifo_messages = fifo_messages
        self.explicit_pointers = explicit_pointers

        # Device registers (addresses only; values are modelled functionally).
        self.send_status_reg = self.allocate_uncached_register()
        self.send_data_reg = self.allocate_uncached_register()
        self.recv_status_reg = self.allocate_uncached_register()
        self.recv_data_reg = self.allocate_uncached_register()
        tail_ptr_reg = head_ptr_reg = None
        if explicit_pointers:
            tail_ptr_reg = self.allocate_uncached_register()
            head_ptr_reg = self.allocate_uncached_register()

        self._attach_ports(
            UncachedSendPort(
                self, self.send_data_reg, self.send_status_reg,
                fifo_messages, tail_ptr_reg=tail_ptr_reg,
            ),
            UncachedRecvPort(
                self, self.recv_data_reg, self.recv_status_reg,
                fifo_messages, head_ptr_reg=head_ptr_reg,
            ),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def send_fifo_depth(self) -> int:
        return len(self.send_port.fifo)

    def recv_fifo_depth(self) -> int:
        return len(self.recv_port.fifo)

    def pending_receive(self) -> Optional[NetworkMessage]:
        fifo = self.recv_port.fifo
        return fifo[0] if fifo else None


class NI2w(UncachedNI):
    """The conventional, CM-5-like NI: two exposed words, implicit pointers."""

    taxonomy_name = "NI2w"
