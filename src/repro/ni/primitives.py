"""Primitive mechanisms of the NI taxonomy, as composable ports.

The paper's design space (Section 3) is spanned by a handful of orthogonal
mechanisms, not by whole devices:

* how the message region is **exposed** to the processor — uncached device
  registers sized in words, cachable device registers (CDRs) sized in
  blocks, or cachable queues (CQs);
* the **pointer policy** — implicit pointers (hardware FIFO order, CDR
  slots) versus explicit queue pointers, optionally read lazily through a
  shadow copy;
* the **homing** of the exposed region — on the device or in main memory;
* whether accesses are **coherent** (cached, snooped) or uncached.

This module implements each mechanism once, as a *send port* or *receive
port* primitive.  A network interface is then just a pairing of ports over
the shared :class:`~repro.ni.base.AbstractNI` infrastructure —
:class:`ComposedNI` below — and every point of the taxonomy is assembled
declaratively by :mod:`repro.ni.registry` from these same parts.  The five
devices evaluated in the paper (``NI2w``, ``CNI4``, ``CNI16Q``,
``CNI512Q``, ``CNI16Qm``) are thin compositions pinned to golden stats in
the test suite, so the primitives are cycle-exact restatements of the
original hand-written device classes.

Ports do **not** allocate addresses or build caches themselves: address
layout is decided by the owning device (allocation order determines cache
conflict behaviour, which must stay reproducible), and the resulting
registers, CDR block lists, queues and device caches are handed to the
port constructors.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.common.types import CoherenceState, NetworkMessage
from repro.ni.base import DEVICE_PROCESSING_CYCLES
from repro.sim import Signal


def slot_block_prefixes(blocks: List[int], blocks_per_slot: int) -> List[List[List[int]]]:
    """Per-slot prefix lists of block addresses.

    ``result[slot][n - 1]`` is the first ``n`` block addresses of ``slot``;
    the lists are shared, callers iterate but never mutate them.  The same
    layout trick :class:`~repro.ni.cq.CachableQueue` uses internally, here
    for CDR regions.
    """
    prefixes: List[List[List[int]]] = []
    for start in range(0, len(blocks) - blocks_per_slot + 1, blocks_per_slot):
        addrs = blocks[start:start + blocks_per_slot]
        prefixes.append([addrs[:n] for n in range(1, blocks_per_slot + 1)])
    return prefixes


class SendPort(abc.ABC):
    """Processor→network half of a device: accepts messages, injects them."""

    #: True when a *blocked* send retry is a pure cached check, so the
    #: retry spin can be elided into a blocking wait on the device's
    #: arrival signal (see :mod:`repro.sim.spinwait`).  Ports whose space
    #: check is an uncached register access must keep spinning.
    elidable = False

    def __init__(self, ni):
        self.ni = ni

    def spin_steady(self) -> bool:
        """True while a blocked-send retry would provably fail identically.

        Only meaningful on ``elidable`` ports; the default is never steady.
        """
        return False

    @abc.abstractmethod
    def proc_try_send(self, message: NetworkMessage):
        """Generator: processor-side send; returns True if accepted."""

    @abc.abstractmethod
    def injection_process(self):
        """Generator process moving accepted messages onto the wire."""

    def uncached_write(self, address: int) -> None:
        """Uncached-register write hook (dispatched from the device)."""

    def uncached_read(self, address: int) -> None:
        """Uncached-register read hook (dispatched from the device)."""


class RecvPort(abc.ABC):
    """Network→processor half of a device: accepts arrivals, hands them up."""

    #: True when an *empty* poll is a pure cached read (the paper's virtual
    #: polling), so the poll spin can be elided into a blocking wait on the
    #: device's arrival signal.  Uncached-status polls occupy the bus on
    #: every iteration and must keep spinning.
    elidable = False

    def __init__(self, ni):
        self.ni = ni

    def spin_steady(self) -> bool:
        """True while an empty poll would provably repeat identically.

        Only meaningful on ``elidable`` ports; the default is never steady.
        """
        return False

    @abc.abstractmethod
    def proc_poll(self):
        """Generator: processor-side poll; returns a message or None."""

    @abc.abstractmethod
    def extraction_process(self):
        """Generator process accepting network arrivals into the port."""

    def uncached_write(self, address: int) -> None:
        """Uncached-register write hook (dispatched from the device)."""

    def uncached_read(self, address: int) -> None:
        """Uncached-register read hook (dispatched from the device)."""


# ----------------------------------------------------------------------
# Uncached word-at-a-time exposure (NI2w, NI16w, NI128Q, ...)
# ----------------------------------------------------------------------
class UncachedSendPort(SendPort):
    """Program-controlled send through uncached device registers.

    One uncached status load checks for space, then one uncached 8-byte
    store per double word of the message.  With ``tail_ptr_reg`` set the
    queue is *explicitly pointed* (the *T-NG style ``NI{n}Q`` devices): the
    processor additionally publishes its new tail with one uncached store
    per message.
    """

    def __init__(
        self,
        ni,
        data_reg: int,
        status_reg: int,
        fifo_messages: int,
        tail_ptr_reg: Optional[int] = None,
    ):
        super().__init__(ni)
        self.data_reg = data_reg
        self.status_reg = status_reg
        self.fifo_messages = fifo_messages
        self.tail_ptr_reg = tail_ptr_reg
        self.fifo: Deque[NetworkMessage] = deque()
        self._word_cycles = ni.params.uncached_word_processing_cycles
        self.fifo_signal = Signal(ni.sim, name=f"{ni.name}.send-fifo")

    def proc_try_send(self, message: NetworkMessage):
        ni = self.ni
        # 1. Check the send-status register for space in the hardware FIFO
        #    (for explicit-pointer devices this is the head-pointer read).
        yield from ni.uncached_load(self.status_reg)
        if len(self.fifo) >= self.fifo_messages:
            ni.stats.add("send_full")
            return False
        # 2. Write the message, one uncached double-word store at a time
        #    (each word also costs the user-buffer load and loop overhead).
        for _ in range(ni.words_for(message)):
            yield from ni.uncached_store(self.data_reg)
            yield self._word_cycles
        # 3. Explicit-pointer devices publish the new tail pointer.
        if self.tail_ptr_reg is not None:
            yield from ni.uncached_store(self.tail_ptr_reg)
        message.send_time = ni.sim.now
        self.fifo.append(message)
        ni.stats.add("messages_sent")
        self.fifo_signal.fire()
        return True

    def injection_process(self):
        ni = self.ni
        while True:
            if not self.fifo:
                yield self.fifo_signal
                continue
            message = self.fifo[0]
            yield from ni._wait_for_window(message.dest)
            yield DEVICE_PROCESSING_CYCLES
            self.fifo.popleft()
            ni._inject(message)
            # Removing the message frees FIFO space for the processor.
            self.fifo_signal.fire()


class UncachedRecvPort(RecvPort):
    """Program-controlled receive through uncached device registers.

    One uncached status load polls for a message, then one uncached 8-byte
    load per double word (reading the data register implicitly pops the
    hardware FIFO).  With ``head_ptr_reg`` set the pop is *explicit*: the
    processor publishes the consumed head with one more uncached store.
    """

    def __init__(
        self,
        ni,
        data_reg: int,
        status_reg: int,
        fifo_messages: int,
        head_ptr_reg: Optional[int] = None,
    ):
        super().__init__(ni)
        self.data_reg = data_reg
        self.status_reg = status_reg
        self.fifo_messages = fifo_messages
        self.head_ptr_reg = head_ptr_reg
        self.fifo: Deque[NetworkMessage] = deque()
        self._word_cycles = ni.params.uncached_word_processing_cycles
        self.space_signal = Signal(ni.sim, name=f"{ni.name}.recv-space")

    def proc_poll(self):
        ni = self.ni
        # 1. Poll the receive-status register.
        yield from ni.uncached_load(self.status_reg)
        ni._counts["polls"] += 1
        if not self.fifo:
            ni._counts["empty_polls"] += 1
            return None
        # 2. Read the message out of the hardware FIFO (implicit pop), one
        #    uncached double-word load at a time plus the user-buffer store.
        message = self.fifo.popleft()
        for _ in range(ni.words_for(message)):
            yield from ni.uncached_load(self.data_reg)
            yield self._word_cycles
        # 3. Explicit-pointer devices publish the consumed head pointer.
        if self.head_ptr_reg is not None:
            yield from ni.uncached_store(self.head_ptr_reg)
        ni.stats.add("messages_received")
        self.space_signal.fire()
        return message

    def extraction_process(self):
        ni = self.ni
        while True:
            if not ni._net_in:
                yield ni._net_in_signal
                continue
            if len(self.fifo) >= self.fifo_messages:
                # Receive FIFO full: the message stays in the network until
                # the processor drains the FIFO (backpressure).
                ni.stats.add("recv_fifo_full_stalls")
                yield self.space_signal
                continue
            message = ni._net_in.popleft()
            yield DEVICE_PROCESSING_CYCLES
            self.fifo.append(message)
            ni.stats.add("messages_accepted")
            ni._ack(message)
            ni.arrival_signal.fire()


# ----------------------------------------------------------------------
# Cachable device registers with implicit pointers (CNI4, CNI16, ...)
# ----------------------------------------------------------------------
class CdrSendPort(SendPort):
    """Send through cachable device registers (implicit slot pointers).

    The CDR region is divided into message-sized slots used in round-robin
    order (one slot for ``CNI4``).  Whole messages move across the bus in
    cache-block units, but the device keeps uncached status/control
    registers, so every space check pays an uncached load and every commit
    an uncached message-ready store behind a store-buffer drain.
    """

    def __init__(
        self,
        ni,
        cdr_blocks: List[int],
        status_reg: int,
        ready_reg: int,
        device_cache,
    ):
        super().__init__(ni)
        blocks_per_slot = ni.params.blocks_per_network_message
        self.cdr_blocks = cdr_blocks
        self.slots = len(cdr_blocks) // blocks_per_slot
        self.status_reg = status_reg
        self.ready_reg = ready_reg
        self.cache = device_cache
        self._slot_prefixes = slot_block_prefixes(cdr_blocks, blocks_per_slot)
        self._pending: Deque[Tuple[NetworkMessage, int]] = deque()
        self._next_slot = 0
        self.ready_signal = Signal(ni.sim, name=f"{ni.name}.send-ready")

    def uncached_write(self, address: int) -> None:
        if address == self.ready_reg:
            self.ni.stats.add("send_ready_signals")
            self.ready_signal.fire()

    def proc_try_send(self, message: NetworkMessage):
        ni = self.ni
        proc = ni._processor_agent()
        # 1. Check the uncached send-status register: is a send slot free?
        yield from ni.uncached_load(self.status_reg)
        if len(self._pending) >= self.slots:
            ni.stats.add("send_full")
            return False
        # 2. Write the message into the slot's CDR blocks, a whole block at
        #    a time, copying the data out of the user buffer.
        slot = self._next_slot
        for addr in self._slot_prefixes[slot][ni.blocks_for(message) - 1]:
            yield from proc.write_block(addr)
            yield ni.params.block_copy_cycles
        message.send_time = ni.sim.now
        self._pending.append((message, slot))
        self._next_slot = (slot + 1) % self.slots
        # 3. Commit with an uncached store (and drain the store buffer so
        #    the device is guaranteed to observe it).
        yield from ni.memory_barrier()
        yield from ni.uncached_store(self.ready_reg)
        ni.stats.add("messages_sent")
        return True

    def injection_process(self):
        ni = self.ni
        while True:
            if not self._pending:
                yield self.ready_signal
                continue
            message, slot = self._pending[0]
            yield from ni._wait_for_window(message.dest)
            # Pull the CDR blocks out of the processor cache.  Injection is
            # cut-through: the message starts down the wire after the first
            # block; the remaining blocks stream behind it (but the slot is
            # not free for reuse until the whole pull has finished).
            blocks = self._slot_prefixes[slot][ni.blocks_for(message) - 1]
            yield from self.cache.read_block(blocks[0])
            yield DEVICE_PROCESSING_CYCLES
            ni._inject(message)
            for addr in blocks[1:]:
                yield from self.cache.read_block(addr)
            self._pending.popleft()
            # Freeing the slot lets a spinning sender proceed.
            self.ready_signal.fire()

    def pending_count(self) -> int:
        return len(self._pending)


class CdrRecvPort(RecvPort):
    """Receive through cachable device registers with the explicit pop
    handshake of paper Section 2.1.

    The device buffers arrivals internally and exposes them, one per CDR
    slot, in round-robin order.  After reading a message the processor must
    explicitly pop it — an uncached clear store, a store-buffer drain and
    an uncached status read confirming the device's invalidation — before
    the slot can carry the next message.
    """

    def __init__(
        self,
        ni,
        cdr_blocks: List[int],
        status_reg: int,
        pop_reg: int,
        device_cache,
        buffer_messages: int,
    ):
        super().__init__(ni)
        blocks_per_slot = ni.params.blocks_per_network_message
        self.cdr_blocks = cdr_blocks
        self.slots = len(cdr_blocks) // blocks_per_slot
        self.status_reg = status_reg
        self.pop_reg = pop_reg
        self.cache = device_cache
        self.buffer_messages = buffer_messages
        self._slot_prefixes = slot_block_prefixes(cdr_blocks, blocks_per_slot)
        self._buffer: Deque[NetworkMessage] = deque()
        self._exposed: Deque[Tuple[NetworkMessage, int]] = deque()
        self._next_slot = 0
        self.pop_signal = Signal(ni.sim, name=f"{ni.name}.recv-pop")
        self.drained_signal = Signal(ni.sim, name=f"{ni.name}.recv-drained")

    def uncached_write(self, address: int) -> None:
        if address == self.pop_reg:
            self.ni.stats.add("recv_pops")
            if self._exposed:
                self._exposed.popleft()
            self.pop_signal.fire()

    def proc_poll(self):
        ni = self.ni
        proc = ni._processor_agent()
        # 1. Poll the uncached receive-status register (28 cycles on the
        #    memory bus every time — the cost CDR-only designs cannot avoid).
        yield from ni.uncached_load(self.status_reg)
        ni._counts["polls"] += 1
        if not self._exposed:
            ni._counts["empty_polls"] += 1
            return None
        # 2. Read the message out of the slot's CDR blocks (cache-to-cache
        #    transfers from the device cache), copying to the user buffer.
        message, slot = self._exposed[0]
        for addr in self._slot_prefixes[slot][ni.blocks_for(message) - 1]:
            yield from proc.read_block(addr)
            yield ni.params.block_copy_cycles
        # 3. Explicit pop: the three-cycle handshake of Section 2.1.
        yield from ni.uncached_store(self.pop_reg)
        yield from ni.memory_barrier()
        yield from ni.uncached_load(self.status_reg)
        ni.stats.add("messages_received")
        return message

    def extraction_process(self):
        ni = self.ni
        while True:
            # Accept arrivals into the device buffer while there is room.
            if ni._net_in and len(self._buffer) < self.buffer_messages:
                message = ni._net_in.popleft()
                yield DEVICE_PROCESSING_CYCLES
                self._buffer.append(message)
                ni.stats.add("messages_accepted")
                ni._ack(message)
                self.drained_signal.fire()
                continue
            # Expose the next buffered message through a free CDR slot.
            if self._buffer and len(self._exposed) < self.slots:
                message = self._buffer.popleft()
                slot = self._next_slot
                # Writing the CDR blocks invalidates the processor's stale
                # copies — the device side of the reuse handshake.
                for addr in self._slot_prefixes[slot][ni.blocks_for(message) - 1]:
                    yield from self.cache.write_block_full(addr)
                yield DEVICE_PROCESSING_CYCLES
                self._exposed.append((message, slot))
                self._next_slot = (slot + 1) % self.slots
                self.drained_signal.fire()
                ni.arrival_signal.fire()
                continue
            # Nothing to do: wait for an arrival or a pop.
            if not ni._net_in and not self._buffer:
                yield ni._net_in_signal
            elif len(self._exposed) >= self.slots:
                yield self.pop_signal
            else:
                yield ni._net_in_signal

    def buffer_depth(self) -> int:
        return len(self._buffer)


# ----------------------------------------------------------------------
# Cachable queues with explicit lazy pointers (CNI16Q, CNI512Q, CNI16Qm)
# ----------------------------------------------------------------------
class CqSendPort(SendPort):
    """Send through a cachable queue with lazy explicit pointers.

    The processor checks its lazy shadow of the device-written head
    pointer, writes the message blocks, bumps its private tail pointer and
    issues one uncached message-ready store.  The device pulls the blocks
    out of the processor cache and injects them.
    """

    #: A blocked retry re-reads the tail pointer and the head-pointer shadow
    #: — cache hits while the device has not advanced the head — so the
    #: retry spin is elidable (virtual polling on the send side).
    elidable = True

    def __init__(self, ni, queue, device_cache, ptr_cache, ready_reg: int):
        super().__init__(ni)
        self.queue = queue
        self.cache = device_cache
        self.ptr_cache = ptr_cache
        self.ready_reg = ready_reg
        self.ready_signal = Signal(ni.sim, name=f"{ni.name}.send-ready")
        #: True while the injection process is mid-message (pulling blocks /
        #: about to dequeue).  A retry a cycle or two into an iteration can
        #: already observe the dequeue, so a blocked sender must spin for
        #: real — not sleep — while a pull is in flight.
        self._pulling = False

    def spin_steady(self) -> bool:
        """A retry stays a pure failure while the queue is actually full,
        the device is not mid-pull, and the pointer blocks the retry reads
        are still cached (a device head advance invalidates the head-pointer
        block and wakes the waiter)."""
        sq = self.queue
        if self._pulling or sq.occupancy < sq.capacity:
            return False
        cache = self.ni._proc_cache
        return (
            cache.probe_state(sq.head_ptr_addr) is not CoherenceState.INVALID
            and cache.probe_state(sq.tail_ptr_addr) is not CoherenceState.INVALID
        )

    def uncached_write(self, address: int) -> None:
        if address == self.ready_reg:
            self.ni.stats.add("message_ready_signals")
            self.ready_signal.fire()

    def proc_try_send(self, message: NetworkMessage):
        ni = self.ni
        proc = ni._processor_agent()
        sq = self.queue
        # 1. Space check against the lazy shadow of the device-written head.
        #    The tail pointer and shadow live in the sender's private block.
        yield from proc.read_block(sq.tail_ptr_addr)
        if sq.full_by_shadow():
            ni.stats.add("send_shadow_refreshes")
            yield from proc.read_block(sq.head_ptr_addr)
            sq.refresh_shadow()
            if sq.full_by_shadow():
                ni.stats.add("send_full")
                return False
        # 2. Write the message into the queue entry, one block at a time,
        #    copying the data out of the user buffer.
        slot = sq.tail_index()
        for addr in sq.entry_block_addrs(slot, ni.blocks_for(message)):
            yield from proc.write_block(addr)
            yield ni.params.block_copy_cycles
        message.send_time = ni.sim.now
        sq.enqueue(message)
        # 3. Bump the private tail pointer (cache hit).
        yield from proc.write_block(sq.tail_ptr_addr)
        # 4. Message-ready signal: one uncached store to the device.
        yield from ni.uncached_store(self.ready_reg)
        ni.stats.add("messages_sent")
        return True

    def injection_process(self):
        ni = self.ni
        sq = self.queue
        while True:
            if sq.empty():
                yield self.ready_signal
                continue
            slot = sq.head_index()
            message = sq.entries[slot].message
            yield from ni._wait_for_window(message.dest)
            # Pull the message blocks out of the processor cache.  Injection
            # is cut-through: once the first block has been read the message
            # starts down the wire and the remaining blocks stream behind it.
            # The pull's first bus read snoops the processor cache, so a
            # sleeping blocked sender is woken before the dequeue below can
            # become observable; _pulling keeps it spinning for real until
            # the whole hand-off (including the pointer write) is done.
            self._pulling = True
            blocks = sq.entry_block_addrs(slot, ni.blocks_for(message))
            yield from self.cache.read_block(blocks[0])
            yield DEVICE_PROCESSING_CYCLES
            ni._inject(message)
            for addr in blocks[1:]:
                yield from self.cache.read_block(addr)
            sq.dequeue()
            # The freed slot is observable immediately: a retry whose
            # head-pointer block is still cached refreshes its shadow from
            # the functional queue state before the pointer write below
            # lands on the bus.  Wake blocked senders now, not at snoop
            # time, so an elided wait resumes at the same iteration the
            # spinning sender would have.
            ni.arrival_signal.fire()
            # Advance the device-written head pointer so the processor's
            # lazy shadow can eventually observe the free space.
            yield from self.ptr_cache.write_block(sq.head_ptr_addr)
            self._pulling = False


class CqRecvPort(RecvPort):
    """Receive through a cachable queue with valid words and sense reverse.

    The device checks its lazy shadow of the processor-written head
    pointer, writes the message blocks (whole blocks, so misses cost only
    an invalidation) and commits the valid word last.  The processor polls
    the valid word of the head entry — a cache hit while the queue is
    empty — and reads the message blocks on arrival.  The queue may be
    homed on the device or in main memory; homing is an address-layout
    decision made by the owning device, invisible to this port.
    """

    #: An empty poll examines the valid word of the head entry — a cache
    #: hit while the queue is empty (the paper's virtual polling) — so the
    #: poll spin is elidable into a blocking wait.
    elidable = True

    def __init__(self, ni, queue, device_cache, ptr_cache):
        super().__init__(ni)
        self.queue = queue
        self.cache = device_cache
        self.ptr_cache = ptr_cache
        self.head_advanced = Signal(ni.sim, name=f"{ni.name}.head-advanced")

    def spin_steady(self) -> bool:
        """A poll stays a pure empty hit while no message is visible at the
        head entry and the processor still caches its valid-word block (the
        device's message write invalidates that block and wakes the
        waiter)."""
        rq = self.queue
        if rq.peek() is not None:
            return False
        state = self.ni._proc_cache.probe_state(rq.valid_word_addr(rq.head_index()))
        return state is not CoherenceState.INVALID

    def proc_poll(self):
        ni = self.ni
        proc = ni._processor_agent()
        rq = self.queue
        slot = rq.head_index()
        # 1. Examine the valid word of the head entry; hits in the cache
        #    while the queue is empty, misses when the device wrote a new
        #    message (the write invalidated our copy).
        yield from proc.read_block(rq.valid_word_addr(slot))
        ni._counts["polls"] += 1
        message = rq.peek()
        if message is None:
            ni._counts["empty_polls"] += 1
            return None
        # 2. Read the rest of the message blocks, copying each into the
        #    user-level buffer.
        yield ni.params.block_copy_cycles
        for addr in rq.entry_block_addrs(slot, ni.blocks_for(message))[1:]:
            yield from proc.read_block(addr)
            yield ni.params.block_copy_cycles
        rq.dequeue()
        # 3. Advance the head pointer (receiver-private block, usually a hit).
        yield from proc.write_block(rq.head_ptr_addr)
        self.head_advanced.fire()
        ni.stats.add("messages_received")
        return message

    def extraction_process(self):
        ni = self.ni
        rq = self.queue
        while True:
            if not ni._net_in:
                yield ni._net_in_signal
                continue
            # Space check against the device's lazy shadow of the processor
            # head pointer.
            if rq.full_by_shadow():
                ni.stats.add("recv_shadow_refreshes")
                yield from self.ptr_cache.read_block(rq.head_ptr_addr)
                rq.refresh_shadow()
                if rq.full_by_shadow():
                    # Receive queue genuinely full: back-pressure the network
                    # until the processor drains a message.
                    ni.stats.add("recv_queue_full_stalls")
                    yield self.head_advanced
                    continue
            message = ni._net_in.popleft()
            slot = rq.tail_index()
            blocks = rq.entry_block_addrs(slot, ni.blocks_for(message))
            # Write the message body first, then commit the valid word by
            # re-touching the first block (normally a device-cache hit).
            for addr in blocks:
                yield from self.cache.write_block_full(addr)
            yield from self.cache.write_block(blocks[0])
            yield DEVICE_PROCESSING_CYCLES
            rq.enqueue(message)
            ni.stats.add("messages_accepted")
            ni._ack(message)
            ni.arrival_signal.fire()
