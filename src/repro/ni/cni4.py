"""The cachable-device-register family: CNI4 and its taxonomy relatives.

CDR devices extend the conventional NI with cachable device-register
blocks, so whole messages move across the bus in cache-block units, but
keep uncached status/control registers and therefore pay:

* an uncached status-register load on every poll and space check, and
* the explicit *three-cycle handshake* to reuse the receive CDRs after each
  message (uncached clear store, store-buffer drain, and an uncached status
  read that confirms the device's invalidation).

:class:`CdrNI` is the general family: ``cdr_blocks`` cachable blocks per
direction, divided into message-sized slots with implicit round-robin
pointers.  :class:`CNI4` — the paper's device — exposes a single message
per direction, so the processor must wait for the device to finish pulling
a sent message before the send CDRs can be reused: the source of CNI4's
bandwidth knee in Figure 7.  Larger family members (``CNI16``, ``CNI64``,
...) expose several slots and push that knee out without ever growing
explicit queue pointers.
"""

from __future__ import annotations

from repro.coherence.cache import CoherentCache
from repro.common.types import AgentKind
from repro.ni.base import ComposedNI, NIError
from repro.ni.primitives import CdrRecvPort, CdrSendPort


class CdrNI(ComposedNI):
    """CDR-based coherent NI exposing ``cdr_blocks`` blocks per direction."""

    taxonomy_name = "CNI"

    #: CDR blocks per direction when not overridden (one 256-byte message).
    DEFAULT_CDR_BLOCKS = 4
    #: Messages the device can buffer internally behind the receive CDRs.
    DEFAULT_RECV_BUFFER_MESSAGES = 4

    def __init__(
        self,
        *args,
        cdr_blocks: int = DEFAULT_CDR_BLOCKS,
        recv_buffer_messages: int = DEFAULT_RECV_BUFFER_MESSAGES,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if recv_buffer_messages < 1:
            raise NIError(f"{self.taxonomy_name} needs at least one receive buffer slot")
        if self.params.blocks_per_network_message > cdr_blocks:
            raise NIError(
                f"{self.name}: a network message spans "
                f"{self.params.blocks_per_network_message} blocks but only "
                f"{cdr_blocks} CDR blocks are exposed per direction"
            )
        if cdr_blocks % self.params.blocks_per_network_message:
            raise NIError(
                f"{self.name}: {cdr_blocks} CDR blocks is not a whole number "
                f"of {self.params.blocks_per_network_message}-block message slots"
            )
        self.cdr_blocks = cdr_blocks
        self.recv_buffer_messages = recv_buffer_messages
        block_bytes = self.params.cache_block_bytes

        # Device-homed CDR blocks (send and receive directions).
        self.send_cdr_blocks = [
            self.allocate_device_blocks(1) for _ in range(cdr_blocks)
        ]
        self.recv_cdr_blocks = [
            self.allocate_device_blocks(1) for _ in range(cdr_blocks)
        ]

        # Uncached status/control registers.
        self.send_status_reg = self.allocate_uncached_register()
        self.send_ready_reg = self.allocate_uncached_register()
        self.recv_status_reg = self.allocate_uncached_register()
        self.recv_pop_reg = self.allocate_uncached_register()

        # The device cache backs both CDR sets.
        self.device_cache = CoherentCache(
            self.sim,
            f"{self.name}.cache",
            self.interconnect,
            self.params,
            self.addrmap,
            size_bytes=2 * cdr_blocks * block_bytes,
            agent_kind=AgentKind.NI_DEVICE,
            bus_kind=self.bus_kind,
        )

        self._attach_ports(
            CdrSendPort(
                self, self.send_cdr_blocks, self.send_status_reg,
                self.send_ready_reg, self.device_cache,
            ),
            CdrRecvPort(
                self, self.recv_cdr_blocks, self.recv_status_reg,
                self.recv_pop_reg, self.device_cache, recv_buffer_messages,
            ),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def recv_buffer_depth(self) -> int:
        return self.recv_port.buffer_depth()

    def send_busy(self) -> bool:
        return self.send_port.pending_count() >= self.send_port.slots


class CNI4(CdrNI):
    """The paper's CDR device: four cache blocks (one message) per direction."""

    taxonomy_name = "CNI4"

    #: CDR blocks per direction: one 256-byte network message.
    CDR_BLOCKS = 4

    def __init__(self, *args, **kwargs):
        kwargs.setdefault("cdr_blocks", self.CDR_BLOCKS)
        super().__init__(*args, **kwargs)
