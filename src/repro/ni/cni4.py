"""CNI4 — cachable device registers exposing one 256-byte network message.

CNI4 extends the conventional NI with four CDR blocks per direction, so
whole messages move across the bus in cache-block units, but keeps uncached
status/control registers and therefore pays:

* an uncached status-register load on every poll and space check, and
* the explicit *three-cycle handshake* to reuse the receive CDRs after each
  message (uncached clear store, store-buffer drain, and an uncached status
  read that confirms the device's invalidation).

Because the CDRs expose only a single message, the processor must also wait
for the device to finish pulling a sent message before the send CDRs can be
reused — the source of CNI4's bandwidth knee in Figure 7.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.coherence.cache import CoherentCache
from repro.common.types import AgentKind, NetworkMessage
from repro.ni.base import AbstractNI, DEVICE_PROCESSING_CYCLES, NIError
from repro.sim import Signal


class CNI4(AbstractNI):
    """CDR-based coherent NI exposing four cache blocks per direction."""

    taxonomy_name = "CNI4"

    #: CDR blocks per direction: one 256-byte network message.
    CDR_BLOCKS = 4
    #: Messages the device can buffer internally behind the receive CDRs.
    DEFAULT_RECV_BUFFER_MESSAGES = 4

    def __init__(self, *args, recv_buffer_messages: int = DEFAULT_RECV_BUFFER_MESSAGES, **kwargs):
        super().__init__(*args, **kwargs)
        if recv_buffer_messages < 1:
            raise NIError("CNI4 needs at least one receive buffer slot")
        if self.params.blocks_per_network_message > self.CDR_BLOCKS:
            raise NIError(
                f"{self.name}: a network message spans "
                f"{self.params.blocks_per_network_message} blocks but CNI4 "
                f"exposes only {self.CDR_BLOCKS} CDR blocks per direction"
            )
        self.recv_buffer_messages = recv_buffer_messages
        block_bytes = self.params.cache_block_bytes

        # Device-homed CDR blocks (send and receive directions).
        self.send_cdr_blocks = [
            self.allocate_device_blocks(1) for _ in range(self.CDR_BLOCKS)
        ]
        self.recv_cdr_blocks = [
            self.allocate_device_blocks(1) for _ in range(self.CDR_BLOCKS)
        ]

        self._send_cdr_prefixes = [
            self.send_cdr_blocks[:n] for n in range(1, self.CDR_BLOCKS + 1)
        ]
        self._recv_cdr_prefixes = [
            self.recv_cdr_blocks[:n] for n in range(1, self.CDR_BLOCKS + 1)
        ]

        # Uncached status/control registers.
        self.send_status_reg = self.allocate_uncached_register()
        self.send_ready_reg = self.allocate_uncached_register()
        self.recv_status_reg = self.allocate_uncached_register()
        self.recv_pop_reg = self.allocate_uncached_register()

        # The device cache backs both CDR sets.
        self.device_cache = CoherentCache(
            self.sim,
            f"{self.name}.cache",
            self.interconnect,
            self.params,
            self.addrmap,
            size_bytes=2 * self.CDR_BLOCKS * block_bytes,
            agent_kind=AgentKind.NI_DEVICE,
            bus_kind=self.bus_kind,
        )

        # Functional device state.
        self._send_pending: Optional[NetworkMessage] = None
        self._send_cdr_busy = False
        self._recv_buffer: "deque[NetworkMessage]" = deque()
        self._exposed_message: Optional[NetworkMessage] = None
        self._exposed_popped = True  # nothing exposed yet

        self._send_ready_signal = Signal(self.sim, name=f"{self.name}.send-ready")
        self._recv_pop_signal = Signal(self.sim, name=f"{self.name}.recv-pop")
        self._recv_drained_signal = Signal(self.sim, name=f"{self.name}.recv-drained")

    # ------------------------------------------------------------------
    # Uncached register hooks
    # ------------------------------------------------------------------
    def uncached_write(self, address: int) -> None:
        if address == self.send_ready_reg:
            self.stats.add("send_ready_signals")
            self._send_ready_signal.fire()
        elif address == self.recv_pop_reg:
            self.stats.add("recv_pops")
            self._exposed_message = None
            self._exposed_popped = True
            self._recv_pop_signal.fire()

    # ------------------------------------------------------------------
    # Processor side
    # ------------------------------------------------------------------
    def proc_try_send(self, message: NetworkMessage):
        proc = self._processor_agent()
        # 1. Check the uncached send-status register: are the send CDRs free?
        yield from self.uncached_load(self.send_status_reg)
        if self._send_cdr_busy or self._send_pending is not None:
            self.stats.add("send_full")
            return False
        # 2. Write the message into the send CDRs, a whole block at a time,
        #    copying the data out of the user buffer.
        for addr in self._send_cdr_prefixes[self.blocks_for(message) - 1]:
            yield from proc.write_block(addr)
            yield self.params.block_copy_cycles
        message.send_time = self.sim.now
        self._send_pending = message
        self._send_cdr_busy = True
        # 3. Commit with an uncached store (and drain the store buffer so the
        #    device is guaranteed to observe it).
        yield from self.memory_barrier()
        yield from self.uncached_store(self.send_ready_reg)
        self.stats.add("messages_sent")
        return True

    def proc_poll(self):
        proc = self._processor_agent()
        # 1. Poll the uncached receive-status register (28 cycles on the
        #    memory bus every time — the cost CDR-only designs cannot avoid).
        yield from self.uncached_load(self.recv_status_reg)
        self._counts["polls"] += 1
        message = self._exposed_message
        if message is None:
            self._counts["empty_polls"] += 1
            return None
        # 2. Read the message out of the receive CDRs (cache-to-cache
        #    transfers from the device cache) and copy it to the user buffer.
        for addr in self._recv_cdr_prefixes[self.blocks_for(message) - 1]:
            yield from proc.read_block(addr)
            yield self.params.block_copy_cycles
        # 3. Explicit pop: the three-cycle handshake of Section 2.1.
        yield from self.uncached_store(self.recv_pop_reg)
        yield from self.memory_barrier()
        yield from self.uncached_load(self.recv_status_reg)
        self.stats.add("messages_received")
        return message

    # ------------------------------------------------------------------
    # Device side
    # ------------------------------------------------------------------
    def _injection_process(self):
        while True:
            if self._send_pending is None:
                yield self._send_ready_signal
                continue
            message = self._send_pending
            yield from self._wait_for_window(message.dest)
            # Pull the CDR blocks out of the processor cache.  Injection is
            # cut-through: the message starts down the wire after the first
            # block; the remaining blocks stream behind it (but the CDRs are
            # not free for reuse until the whole pull has finished).
            blocks = self._send_cdr_prefixes[self.blocks_for(message) - 1]
            yield from self.device_cache.read_block(blocks[0])
            yield DEVICE_PROCESSING_CYCLES
            self._inject(message)
            for addr in blocks[1:]:
                yield from self.device_cache.read_block(addr)
            self._send_pending = None
            self._send_cdr_busy = False
            # Freeing the CDRs lets a spinning sender proceed.
            self._send_ready_signal.fire()

    def _extraction_process(self):
        while True:
            # Accept arrivals into the device buffer while there is room.
            if self._net_in and len(self._recv_buffer) < self.recv_buffer_messages:
                message = self._net_in.popleft()
                yield DEVICE_PROCESSING_CYCLES
                self._recv_buffer.append(message)
                self.stats.add("messages_accepted")
                self._ack(message)
                self._recv_drained_signal.fire()
                continue
            # Expose the next buffered message through the receive CDRs once
            # the previous one has been explicitly popped.
            if self._recv_buffer and self._exposed_popped:
                message = self._recv_buffer.popleft()
                # Writing the CDR blocks invalidates the processor's stale
                # copies — the device side of the reuse handshake.
                for addr in self._recv_cdr_prefixes[self.blocks_for(message) - 1]:
                    yield from self.device_cache.write_block_full(addr)
                yield DEVICE_PROCESSING_CYCLES
                self._exposed_message = message
                self._exposed_popped = False
                self._recv_drained_signal.fire()
                continue
            # Nothing to do: wait for an arrival or a pop.
            if not self._net_in and not self._recv_buffer:
                yield self._net_in_signal
            elif not self._exposed_popped:
                yield self._recv_pop_signal
            else:
                yield self._net_in_signal

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def recv_buffer_depth(self) -> int:
        return len(self._recv_buffer)

    def send_busy(self) -> bool:
        return self._send_cdr_busy
