"""Tempest-like user-level messaging layer built on the NI devices.

The macrobenchmarks in the paper run on the Tempest parallel programming
interface and communicate through active messages (plus custom protocols
built from them).  This module provides that layer:

* **active messages** — ``send_active_message`` fragments a user message
  into fixed 256-byte network messages (12-byte header), sends them through
  the NI and invokes the registered handler on the receiving node once the
  whole user message has arrived;
* **software flow control** — when a send cannot make progress (the NI send
  interface is full because the hardware window or the remote queue backed
  up), the sender drains incoming messages from its own NI and buffers them
  in user-space memory, as the paper requires to avoid fetch deadlock.
  Devices whose receive queue overflows to main memory (CNI16Qm) do not
  need this buffering;
* **barriers and broadcasts** — helpers used by the macrobenchmark
  skeletons (gauss' one-to-all pivot broadcast, moldyn's reduction, the
  end-of-phase barriers of all five applications);
* **blocking waits** — every poll/backoff loop (``poll_wait``, ``poll_n``,
  barriers, the blocked-send retry) runs through
  :func:`repro.sim.spin_wait`, which elides steady cached-poll spins into
  event-driven sleeps on the device's arrival signal with bit-identical
  simulated timing (the paper's virtual-polling argument, Sections 3-5).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.common.params import MachineParams
from repro.common.types import NetworkMessage
from repro.ni.base import AbstractNI
from repro.node.processor import Processor
from repro.sim import (
    SPIN_EMPTY,
    SPIN_PROGRESS,
    SPIN_TRANSIENT,
    Counter,
    Samples,
    Simulator,
    SpinGuard,
    spin_wait,
)


class MessagingError(RuntimeError):
    """Raised for messaging-layer protocol violations."""


#: Cycles spent by the messaging layer per send/receive for argument
#: marshalling, handler dispatch and loop overhead.
SOFTWARE_OVERHEAD_CYCLES = 10

#: Cycles the processor waits between retries when its send is blocked and
#: there is nothing to drain.
SEND_RETRY_BACKOFF_CYCLES = 20

#: Number of failed send attempts tolerated before the deadlock-avoidance
#: drain kicks in.  A send interface is frequently busy for only a few tens
#: of cycles (e.g. CNI4 finishing its pull of the previous message); draining
#: on the very first failure would charge an extra NI poll for what is really
#: just a short spin on the status register.
DRAIN_AFTER_RETRIES = 2

#: Number of cache blocks reserved per node for user-space message buffering.
SOFTWARE_BUFFER_BLOCKS = 256


@dataclass
class _Fragment:
    """Bookkeeping for one fragment of a user-level message."""

    msg_id: int
    index: int
    count: int
    handler: str
    user_bytes: int
    body: Tuple = ()


@dataclass
class _Reassembly:
    fragments_seen: int = 0
    total: int = 0
    handler: str = ""
    user_bytes: int = 0
    body: Tuple = ()


#: Marker heading the body tuple of an end-to-end ack control frame.
_E2E_ACK = "__e2e_ack"

#: Cap on the exponential-backoff shift, so one retransmission interval
#: never exceeds ``retransmit_timeout_cycles << _MAX_BACKOFF_SHIFT``.
_MAX_BACKOFF_SHIFT = 5

#: Accepted data fragments per source before a cumulative ack is sent
#: (deferred acks also flush on a deadline, so the sender's timeout is
#: never starved).  Batching keeps the ack traffic well under one control
#: frame per data fragment.
_ACK_BATCH = 4

#: Retransmissions attempted per reliability tick.  Retransmitting every
#: due fragment at once floods the per-destination hardware window and
#: wedges the poll loop inside a blocked send; spreading them across
#: ticks lets acks flow back between attempts.
_RETRANSMITS_PER_TICK = 2


@dataclass
class _PendingTx:
    """An unacknowledged reliable fragment, kept until acked or given up."""

    payload_bytes: int
    msg_seq: int
    fragment: _Fragment
    first_sent: int
    deadline: int
    attempts: int = 0


class MessagingLayer:
    """Per-node user-level messaging layer (one per processor)."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        processor: Processor,
        ni: AbstractNI,
        params: MachineParams,
        dram_allocator,
    ):
        self.sim = sim
        self.node_id = node_id
        self.processor = processor
        self.ni = ni
        self.params = params
        self.stats = Counter()
        self._counts = self.stats.raw
        self._handlers: Dict[str, Callable] = {}
        self._msg_ids = itertools.count()
        self._reassembly: Dict[Tuple[int, int], _Reassembly] = {}
        #: ``(message, buffer address)`` pairs drained from the NI while a
        #: send was blocked; the address is where the copy was written, so
        #: the later poll re-reads the same cache lines.
        self._software_buffer: "deque[Tuple[NetworkMessage, int]]" = deque()
        self._software_buffer_base = dram_allocator.allocate_blocks(SOFTWARE_BUFFER_BLOCKS)
        self._software_buffer_next = 0
        # End-to-end reliability state (inert when reliable_messaging off:
        # the gated branches add no simulated events, so the off path is
        # bit-identical to the pre-reliability layer).
        self._reliable_on = params.reliable_messaging
        self._tx_next: Dict[int, int] = {}
        self._tx_pending: Dict[Tuple[int, int], _PendingTx] = {}
        self._rx_cursor: Dict[int, int] = {}
        self._rx_seen: Dict[int, set] = {}
        self._ack_owed: Dict[int, int] = {}
        self._ack_deadline: Dict[int, int] = {}
        self._last_rx_activity = 0
        #: Cycles from first send to ack for fragments that needed at least
        #: one retransmission (the recovery-latency histogram).
        self.recovery_samples = Samples()
        # Spin-wait elision guards (None when disabled or the device's
        # polls are not pure cached reads; see repro.sim.spinwait).
        self._recv_spin_guard, self._send_spin_guard = self._build_spin_guards()
        # Barrier state.
        self._barrier_seq = 0
        self._barrier_arrivals: Dict[int, int] = {}
        self._barrier_released: Dict[int, bool] = {}
        self.register_handler("__barrier_arrive", self._on_barrier_arrive)
        self.register_handler("__barrier_release", self._on_barrier_release)
        # Filled in by the machine so barriers know the world size and the
        # root node's messaging layer is addressable.
        self.num_nodes = params.num_nodes

    # ------------------------------------------------------------------
    # Spin-wait elision wiring
    # ------------------------------------------------------------------
    def _build_spin_guards(self) -> Tuple[Optional[SpinGuard], Optional[SpinGuard]]:
        """Build the (receive, blocked-send) elision guards for this node.

        A guard exists only when ``params.spin_elision`` is on and the
        device's port declares its spin iterations elidable (pure cached
        polls — the CQ family).  Devices without ports (custom plugins) or
        with uncached polls (NI2w, CNI4) get no guard and simply spin.
        """
        if not self.params.spin_elision:
            return None, None
        if self.params.reliable_messaging:
            # A poller parked on the arrival signal would never wake to
            # observe a retransmission deadline (the signal for a dropped
            # message never fires), so reliability keeps the spinning
            # loops and their periodic timeout checks.
            return None, None
        ni = self.ni
        signal = getattr(ni, "arrival_signal", None)
        cache = getattr(ni, "_proc_cache", None)
        interconnect = getattr(ni, "interconnect", None)
        if signal is None or cache is None or interconnect is None:
            return None, None
        recv_port = getattr(ni, "recv_port", None)
        send_port = getattr(ni, "send_port", None)
        # Counters a pure spin iteration can touch; their measured deltas
        # are replayed arithmetically for elided iterations.
        counters = (
            cache.stats.raw,
            ni.stats.raw,
            self.stats.raw,
            self.processor.stats.raw,
        )
        txn_counts = interconnect.stats.raw
        device_stats = ni.stats.raw
        # Asynchronous activity that leaves no bus transaction behind but
        # could pollute a measured iteration's counter deltas: fabric
        # deliveries, window acks, and device-side arrival transitions.
        ni_counts = ni.stats.raw
        window = getattr(ni, "window", None)
        probes = [
            lambda _c=ni_counts: _c.get("network_arrivals", 0),
            lambda _c=ni_counts: _c.get("window_stalls", 0),
            lambda: signal.fire_count,
        ]
        if window is not None:
            probes.append(lambda _s=window.slot_freed: _s.fire_count)
            probes.append(lambda _c=window.stats.raw: _c.get("reservations", 0))
        recv_elidable = recv_port is not None and getattr(recv_port, "elidable", False)
        recv_guard = None
        if recv_elidable:
            recv_guard = SpinGuard(
                self.sim, signal, recv_port.spin_steady, counters,
                txn_counts, device_stats, probes,
            )
        send_guard = None
        if (
            send_port is not None
            and getattr(send_port, "elidable", False)
            and getattr(ni, "recv_home", "device") == "memory"
        ):
            # Only the drain-free blocked-send loop is elidable: devices
            # that overflow to memory (CNI16Qm) never drain, so a blocked
            # iteration is just the cached tail/head check and its head
            # observation sits one cycle into the iteration (resume_margin).
            # Devices whose blocked sender drains through proc_poll observe
            # the receive queue several cycles into each iteration — too
            # deep to resume exactly from a sleep — so they keep spinning.
            send_guard = SpinGuard(
                self.sim, signal, send_port.spin_steady, counters,
                txn_counts, device_stats, probes, resume_margin=1,
            )
        return recv_guard, send_guard

    # ------------------------------------------------------------------
    # Handler registry
    # ------------------------------------------------------------------
    def register_handler(self, name: str, handler: Callable) -> None:
        """Register an active-message handler.

        ``handler(ml, source, user_bytes, body)`` is invoked on the
        receiving node; it may return a generator (run inside the polling
        process) or ``None``.
        """
        if name in self._handlers:
            raise MessagingError(f"handler {name!r} already registered on node {self.node_id}")
        self._handlers[name] = handler

    def has_handler(self, name: str) -> bool:
        return name in self._handlers

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def fragments_needed(self, user_bytes: int) -> int:
        capacity = self.params.network_payload_bytes
        return max(1, (user_bytes + capacity - 1) // capacity)

    def send_active_message(self, dest: int, handler: str, user_bytes: int, body: Tuple = ()):
        """Send one user-level active message (generator).

        The message is fragmented into network messages; each fragment is
        pushed through the NI with the deadlock-avoidance drain loop.
        """
        if dest == self.node_id:
            # Local delivery uses the same memory-based interface: hand the
            # message straight to the local reassembly path (the uniform
            # local/remote abstraction of Section 2.2).
            yield from self.processor.compute(SOFTWARE_OVERHEAD_CYCLES)
            yield from self._deliver_local(handler, user_bytes, body)
            return
        msg_id = next(self._msg_ids)
        count = self.fragments_needed(user_bytes)
        capacity = self.params.network_payload_bytes
        remaining = user_bytes
        for index in range(count):
            chunk = min(capacity, remaining) if count > 1 else min(capacity, user_bytes)
            remaining -= chunk
            fragment = _Fragment(
                msg_id=msg_id,
                index=index,
                count=count,
                handler=handler,
                user_bytes=user_bytes,
                body=body if index == count - 1 else (),
            )
            netmsg = NetworkMessage(
                source=self.node_id,
                dest=dest,
                payload_bytes=chunk,
                seq=msg_id,
                body=fragment,
            )
            yield from self.processor.compute(SOFTWARE_OVERHEAD_CYCLES)
            yield from self._send_network_message(netmsg)
        self._counts["user_messages_sent"] += 1
        self._counts["user_bytes_sent"] += user_bytes

    def broadcast(self, handler: str, user_bytes: int, body: Tuple = ()):
        """One-to-all broadcast (a loop of point-to-point sends)."""
        for dest in range(self.num_nodes):
            if dest == self.node_id:
                continue
            yield from self.send_active_message(dest, handler, user_bytes, body)
        self.stats.add("broadcasts")

    def _send_network_message(self, netmsg: NetworkMessage):
        """Push one network message into the NI, draining if blocked.

        The retry loop runs through :func:`repro.sim.spin_wait`: once the
        blocked attempt settles into a pure cached spin (CQ devices whose
        space check and drain poll both hit in the processor cache), the
        sender blocks on the device's arrival signal instead of spinning,
        cycle-for-cycle identical to the spinning loop.
        """
        if (
            self._reliable_on
            and isinstance(netmsg.body, _Fragment)
            and netmsg.e2e_seq < 0
        ):
            # First transmission of a reliable data fragment: stamp the
            # per-destination sequence number and remember it until acked.
            seq = self._tx_next.get(netmsg.dest, 0)
            self._tx_next[netmsg.dest] = seq + 1
            netmsg.e2e_seq = seq
            now = self.sim.now
            self._tx_pending[(netmsg.dest, seq)] = _PendingTx(
                payload_bytes=netmsg.payload_bytes,
                msg_seq=netmsg.seq,
                fragment=netmsg.body,
                first_sent=now,
                deadline=now + self.params.retransmit_timeout_cycles,
            )
        sent = [False]
        attempts = [0]

        def attempt():
            accepted = yield from self.ni.proc_try_send(netmsg)
            if accepted:
                self._counts["network_messages_sent"] += 1
                sent[0] = True
                return SPIN_PROGRESS
            attempts[0] += 1
            self._counts["send_blocked"] += 1
            if attempts[0] <= DRAIN_AFTER_RETRIES:
                # Transient busy (e.g. the device is still pulling the
                # previous message): just spin on the send interface.
                return SPIN_TRANSIENT
            return (yield from self._drain_while_blocked())

        yield from spin_wait(
            self.sim,
            lambda: sent[0],
            attempt,
            SEND_RETRY_BACKOFF_CYCLES,
            self._send_spin_guard,
        )

    def _drain_while_blocked(self):
        """Deadlock avoidance while a send is blocked.

        Devices that overflow to main memory automatically (CNI16Qm) do not
        require the processor to extract messages; everything else drains
        one message from the NI into the user-space software buffer.
        Returns :data:`SPIN_PROGRESS` when a message was buffered (the
        caller retries immediately) and :data:`SPIN_EMPTY` otherwise (the
        caller backs off).
        """
        if getattr(self.ni, "recv_home", "device") == "memory":
            return SPIN_EMPTY
        message = yield from self.ni.proc_poll()
        if message is None:
            return SPIN_EMPTY
        # Copy the message into user-space memory (paying the store traffic).
        buffer_addr = self._next_buffer_addr()
        yield from self.processor.touch_write(buffer_addr, self.ni.wire_bytes(message))
        self._software_buffer.append((message, buffer_addr))
        self.stats.add("messages_software_buffered")
        return SPIN_PROGRESS

    def _next_buffer_addr(self) -> int:
        block = self.params.cache_block_bytes
        addr = self._software_buffer_base + (self._software_buffer_next % SOFTWARE_BUFFER_BLOCKS) * block
        self._software_buffer_next += self.params.blocks_per_network_message
        return addr

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def poll(self):
        """Poll for one incoming network message (generator).

        Returns True if a message was consumed (and its handler run when it
        completed a user-level message), False if nothing was available.
        """
        if self._software_buffer:
            message, buffer_addr = self._software_buffer.popleft()
            # Re-read the buffered copy from the user-space address it was
            # written to (not the buffer base — reading the wrong lines
            # used to touch a cache set the copy never occupied).
            yield from self.processor.touch_read(
                buffer_addr, self.ni.wire_bytes(message)
            )
            self.stats.add("software_buffer_polls")
        else:
            message = yield from self.ni.proc_poll()
            if message is None:
                if self._reliable_on:
                    yield from self._check_retransmits()
                return False
        yield from self.processor.compute(SOFTWARE_OVERHEAD_CYCLES)
        if self._reliable_on:
            consumed = yield from self._reliable_receive(message)
            yield from self._check_retransmits()
            return consumed
        yield from self._handle_fragment(message)
        return True

    def poll_wait(self, predicate, backoff: int = SEND_RETRY_BACKOFF_CYCLES):
        """Poll until ``predicate()`` is true (generator).

        The blocking-wait form of the classic poll/backoff spin: on devices
        whose empty poll is a pure cached read, steady spins are elided
        into an event-driven sleep on the device's arrival signal, with
        bit-identical simulated timing (see :mod:`repro.sim.spinwait`).
        """
        yield from spin_wait(self.sim, predicate, self.poll, backoff, self._recv_spin_guard)

    def poll_n(self, count: int):
        """Poll until ``count`` messages have been consumed."""
        consumed = [0]

        def body():
            got = yield from self.poll()
            if got:
                consumed[0] += 1
            return got

        yield from spin_wait(
            self.sim,
            lambda: consumed[0] >= count,
            body,
            SEND_RETRY_BACKOFF_CYCLES,
            self._recv_spin_guard,
        )

    def _handle_fragment(self, message: NetworkMessage):
        fragment = message.body
        if not isinstance(fragment, _Fragment):
            raise MessagingError(
                f"node {self.node_id}: received a non-messaging-layer payload {fragment!r}"
            )
        key = (message.source, fragment.msg_id)
        state = self._reassembly.setdefault(key, _Reassembly(total=fragment.count))
        state.fragments_seen += 1
        state.handler = fragment.handler
        state.user_bytes = fragment.user_bytes
        if fragment.body:
            state.body = fragment.body
        self._counts["network_messages_received"] += 1
        if state.fragments_seen < state.total:
            return
        del self._reassembly[key]
        self._counts["user_messages_received"] += 1
        self._counts["user_bytes_received"] += state.user_bytes
        yield from self._dispatch(state.handler, message.source, state.user_bytes, state.body)

    # ------------------------------------------------------------------
    # End-to-end reliability (sequence numbers, ack/retransmit, dedup)
    # ------------------------------------------------------------------
    def _reliable_receive(self, message: NetworkMessage):
        """Classify one incoming frame under reliable messaging (generator).

        Returns True only when an original data fragment was accepted and
        processed — ack control frames, duplicates and corrupted frames
        return False, so ``poll_n`` counts match the fault-free run.
        """
        body = message.body
        if isinstance(body, tuple) and body and body[0] == _E2E_ACK:
            if not message.corrupted:
                self._process_ack(message.source, body[1], body[2])
            return False
        if message.corrupted:
            # Damaged in flight: discard without acking; the sender's
            # timeout recovers it.
            self._counts["corrupt_discarded"] += 1
            return False
        seq = message.e2e_seq
        if seq < 0:
            # Not a reliability-tracked frame (shouldn't happen when every
            # node shares MachineParams); process as-is.
            yield from self._handle_fragment(message)
            return True
        src = message.source
        cursor = self._rx_cursor.get(src, 0)
        seen = self._rx_seen.setdefault(src, set())
        self._last_rx_activity = self.sim.now
        if seq < cursor or seq in seen:
            # A duplicate (fault-injected copy or a retransmission whose
            # ack was lost): discard, but re-ack immediately so the sender
            # stops.
            self._counts["duplicates_discarded"] += 1
            yield from self._send_e2e_ack(src)
            return False
        seen.add(seq)
        while cursor in seen:
            seen.discard(cursor)
            cursor += 1
        self._rx_cursor[src] = cursor
        yield from self._handle_fragment(message)
        owed = self._ack_owed.get(src, 0) + 1
        if owed >= _ACK_BATCH:
            yield from self._send_e2e_ack(src)
        else:
            # Defer: the cumulative ack covers this fragment too, and the
            # deadline keeps the batching delay far below the sender's
            # retransmission timeout.
            self._ack_owed[src] = owed
            self._ack_deadline.setdefault(
                src, self.sim.now + self.params.retransmit_timeout_cycles // 4
            )
        return True

    def _send_e2e_ack(self, dest: int):
        """Send a cumulative ack control frame to ``dest`` (generator).

        Carries the receive cursor (everything below it is acked) plus the
        out-of-order set, so a lost ack is repaired by any later one.
        """
        self._ack_owed.pop(dest, None)
        self._ack_deadline.pop(dest, None)
        cursor = self._rx_cursor.get(dest, 0)
        extra = tuple(sorted(self._rx_seen.get(dest, ())))
        ack = NetworkMessage(
            source=self.node_id,
            dest=dest,
            payload_bytes=8,
            body=(_E2E_ACK, cursor, extra),
        )
        self._counts["e2e_acks_sent"] += 1
        yield from self._send_network_message(ack)

    def _process_ack(self, acker: int, cursor: int, extra: Tuple[int, ...]) -> None:
        self._counts["e2e_acks_received"] += 1
        extras = set(extra)
        now = self.sim.now
        for key in [
            k for k in self._tx_pending if k[0] == acker and (k[1] < cursor or k[1] in extras)
        ]:
            entry = self._tx_pending.pop(key)
            if entry.attempts:
                self._counts["recoveries"] += 1
                self.recovery_samples.record(now - entry.first_sent)

    def _check_retransmits(self):
        """Retransmit every pending fragment whose deadline passed (generator).

        Backoff doubles per attempt (capped); a fragment that exhausts
        ``max_retransmits`` is dropped with a ``retransmit_giveups`` count
        rather than raising — by then the data almost certainly arrived
        with its acks lost, and a true loss surfaces as a workload hang
        that the engine watchdog diagnoses with full context.
        """
        if self._ack_deadline:
            now = self.sim.now
            for src in [s for s, d in self._ack_deadline.items() if d <= now]:
                yield from self._send_e2e_ack(src)
        if not self._tx_pending:
            return
        now = self.sim.now
        due = sorted(
            (
                (entry.deadline, key, entry)
                for key, entry in self._tx_pending.items()
                if entry.deadline <= now
            ),
        )[:_RETRANSMITS_PER_TICK]
        for _, key, entry in due:
            if self._tx_pending.get(key) is not entry:
                continue  # acked while an earlier retransmission blocked
            if entry.attempts >= self.params.max_retransmits:
                del self._tx_pending[key]
                self._counts["retransmit_giveups"] += 1
                continue
            entry.attempts += 1
            shift = min(entry.attempts, _MAX_BACKOFF_SHIFT)
            entry.deadline = self.sim.now + (
                self.params.retransmit_timeout_cycles << shift
            )
            self._counts["retransmits"] += 1
            fresh = NetworkMessage(
                source=self.node_id,
                dest=key[0],
                payload_bytes=entry.payload_bytes,
                seq=entry.msg_seq,
                body=entry.fragment,
                e2e_seq=key[1],
            )
            yield from self._send_network_message(fresh)

    def reliable_flush(self):
        """Drive the reliability machinery to completion (generator).

        Run after a node's program body finishes: first drain this node's
        own unacked fragments (retransmitting as needed), then linger,
        re-acking peers' retransmissions, until the link has been quiet
        for a couple of timeout windows.  Bounded: every pending fragment
        is either acked or gives up after ``max_retransmits``.
        """
        if not self._reliable_on:
            return
        backoff = SEND_RETRY_BACKOFF_CYCLES
        while self._tx_pending:
            got = yield from self.poll()
            if not got:
                yield backoff
        # Everything we owe is acked; push out any deferred acks now so
        # peers' flushes terminate without waiting for retransmissions.
        for src in list(self._ack_owed):
            yield from self._send_e2e_ack(src)
        self._last_rx_activity = self.sim.now
        linger = 2 * self.params.retransmit_timeout_cycles
        while self.sim.now - self._last_rx_activity < linger:
            got = yield from self.poll()
            if not got:
                yield backoff
        self.stats.add("reliable_flushes")

    def fault_stats(self) -> Dict[str, object]:
        """Per-node reliability/recovery counters (all zero under a
        zero-rate plan; empty recovery histogram omitted)."""
        raw = self.stats.raw
        out: Dict[str, object] = {
            key: raw.get(key, 0)
            for key in (
                "retransmits",
                "retransmit_giveups",
                "recoveries",
                "duplicates_discarded",
                "corrupt_discarded",
                "e2e_acks_sent",
                "e2e_acks_received",
            )
        }
        if self.recovery_samples.count:
            out["recovery_latency"] = {
                "count": self.recovery_samples.count,
                "mean": round(self.recovery_samples.mean, 1),
                "p50": self.recovery_samples.percentile(0.5),
                "p95": self.recovery_samples.percentile(0.95),
                "max": self.recovery_samples.maximum,
            }
        return out

    def _deliver_local(self, handler: str, user_bytes: int, body: Tuple):
        self._counts["user_messages_sent"] += 1
        self._counts["user_messages_received"] += 1
        self.stats.add("local_deliveries")
        yield from self._dispatch(handler, self.node_id, user_bytes, body)

    def _dispatch(self, handler_name: str, source: int, user_bytes: int, body: Tuple):
        handler = self._handlers.get(handler_name)
        if handler is None:
            raise MessagingError(
                f"node {self.node_id}: no handler registered for {handler_name!r}"
            )
        result = handler(self, source, user_bytes, body)
        if result is not None:
            yield from result
        else:
            yield 0

    # ------------------------------------------------------------------
    # Barrier
    # ------------------------------------------------------------------
    def barrier(self, participants: Optional[int] = None):
        """A simple AM-based barrier across all nodes (root = node 0)."""
        world = participants if participants is not None else self.num_nodes
        seq = self._barrier_seq
        self._barrier_seq += 1
        if world <= 1:
            return
        if self.node_id == 0:
            # Root: count arrivals from everyone else, then release.
            self._barrier_arrivals.setdefault(seq, 0)
            yield from self.poll_wait(
                lambda: self._barrier_arrivals.get(seq, 0) >= world - 1
            )
            for dest in range(1, world):
                yield from self.send_active_message(dest, "__barrier_release", 8, (seq,))
            self._barrier_arrivals.pop(seq, None)
        else:
            yield from self.send_active_message(0, "__barrier_arrive", 8, (seq,))
            yield from self.poll_wait(lambda: self._barrier_released.get(seq, False))
            self._barrier_released.pop(seq, None)
        self.stats.add("barriers")

    def _on_barrier_arrive(self, ml, source, user_bytes, body):
        seq = body[0] if body else 0
        self._barrier_arrivals[seq] = self._barrier_arrivals.get(seq, 0) + 1
        return None

    def _on_barrier_release(self, ml, source, user_bytes, body):
        seq = body[0] if body else 0
        self._barrier_released[seq] = True
        return None
