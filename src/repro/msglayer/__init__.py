"""Tempest-like active-message layer used by the macrobenchmarks."""

from repro.msglayer.messaging import (
    MessagingError,
    MessagingLayer,
    SEND_RETRY_BACKOFF_CYCLES,
    SOFTWARE_BUFFER_BLOCKS,
    SOFTWARE_OVERHEAD_CYCLES,
)

__all__ = [
    "MessagingLayer",
    "MessagingError",
    "SOFTWARE_OVERHEAD_CYCLES",
    "SEND_RETRY_BACKOFF_CYCLES",
    "SOFTWARE_BUFFER_BLOCKS",
]
