"""Generative workload registry: tagged, pluggable workload classes.

Workloads used to live in two static dicts (``MACROBENCHMARKS`` and
``DIAGNOSTIC_WORKLOADS``), so a new scenario class meant editing
``repro.apps`` itself.  This module makes workloads generative the same
way devices (PR 3), fabrics (PR 5) and coherence protocols (PR 6) are:
a :func:`register_workload` decorator installs a
:class:`~repro.apps.workload.Workload` subclass under a name with one or
more *tags* (``macro``, ``diagnostic``, ``traffic``, ``fine-grain``, …),
:func:`available_workloads` enumerates the registry (optionally filtered
by tag), and :class:`TagView` gives the old dict names live, read-only
``name -> class`` semantics over the registry so existing callers keep
working unchanged.

:data:`WORKLOAD_SCHEMA_VERSION` is this registry's schema stamp.  It joins
the device/fabric/protocol schema versions in the result-store key — but
only for experiment kinds that declare they depend on it (traffic and
trace replay); the four legacy kinds keep their exact pre-registry cache
identity.
"""

from __future__ import annotations

import difflib
from collections.abc import Mapping
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple, Type

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.apps.workload import Workload

#: Version of the workload-generation rules.  Bump when a registered
#: workload's traffic pattern changes meaning (message sizes, schedules,
#: pacing): cached traffic/trace results computed under the old rules must
#: stop matching.  Legacy macro results are unaffected — their cache keys
#: never included this stamp and must stay bit-identical.
WORKLOAD_SCHEMA_VERSION = 1

#: Tags used by the shipped workloads.  Plugins may invent new tags; these
#: are the ones presets, the CLI and the docs know about.
WORKLOAD_TAGS = ("macro", "diagnostic", "traffic", "fine-grain", "trace")


class WorkloadError(ValueError):
    """Raised for unknown or ill-registered workloads.

    Subclasses :class:`ValueError` so callers of the historic
    ``create_workload`` keep catching what they always caught.
    """


@dataclass(frozen=True)
class WorkloadInfo:
    """One registry entry: the class, its tags, and a one-line doc."""

    name: str
    cls: Type["Workload"]
    tags: Tuple[str, ...]
    doc: str = ""


_REGISTRY: Dict[str, WorkloadInfo] = {}  # repro: allow[MUTSTATE] import-time workload plugin registry


def _first_doc_line(cls: type) -> str:
    doc = (cls.__doc__ or "").strip()
    return doc.splitlines()[0] if doc else ""


def register_workload(
    name: Optional[str] = None,
    *,
    tags: Tuple[str, ...] = ("macro",),
    replace: bool = False,
):
    """Class decorator registering a workload under ``name`` with ``tags``.

    ``name`` defaults to the class's ``name`` attribute.  Registration
    order is preserved (it is the order views and ``available_workloads``
    enumerate), so the paper's Table-3 ordering survives the registry.
    Re-registering an existing name raises unless ``replace=True`` —
    plugins that deliberately shadow a shipped workload must say so.
    """

    def install(cls: Type["Workload"]) -> Type["Workload"]:
        workload_name = name or getattr(cls, "name", None)
        if not workload_name or not isinstance(workload_name, str):
            raise WorkloadError(
                f"workload class {cls.__name__} needs a name (decorator "
                f"argument or class attribute)"
            )
        tag_tuple = tuple(tags)
        if not tag_tuple or not all(t and isinstance(t, str) for t in tag_tuple):
            raise WorkloadError(
                f"workload {workload_name!r} needs at least one non-empty string tag"
            )
        if workload_name in _REGISTRY and not replace:
            raise WorkloadError(
                f"workload {workload_name!r} is already registered "
                f"(pass replace=True to override)"
            )
        _REGISTRY[workload_name] = WorkloadInfo(
            name=workload_name, cls=cls, tags=tag_tuple, doc=_first_doc_line(cls)
        )
        return cls

    return install


def unregister_workload(name: str) -> None:
    """Remove a registered workload (plugin teardown, tests)."""
    if name not in _REGISTRY:
        raise WorkloadError(_unknown_message(name))
    del _REGISTRY[name]


def available_workloads(tag: Optional[str] = None) -> Dict[str, WorkloadInfo]:
    """Registered workloads in registration order, optionally one tag's."""
    return {
        name: info
        for name, info in _REGISTRY.items()
        if tag is None or tag in info.tags
    }


def workload_names(tag: Optional[str] = None) -> List[str]:
    """Registered workload names in registration order."""
    return list(available_workloads(tag))


def _unknown_message(name: str) -> str:
    """Error text for an unknown workload, naming the nearest registered
    name so a typo ('unifrom') points straight at the fix."""
    close = difflib.get_close_matches(name, list(_REGISTRY), n=1)
    hint = f" (closest match: {close[0]!r})" if close else ""
    return f"unknown workload {name!r}{hint}; choose from {sorted(_REGISTRY)}"


def workload_class(name: str) -> Type["Workload"]:
    """The registered class for ``name``; unknown names raise with the
    nearest registered name in the message."""
    info = _REGISTRY.get(name)
    if info is None:
        raise WorkloadError(_unknown_message(name))
    return info.cls


def create_workload(name: str, **kwargs) -> "Workload":
    """Instantiate a registered workload by name."""
    return workload_class(name)(**kwargs)


class TagView(Mapping):
    """Live, read-only ``name -> Workload class`` view of one tag.

    The historic ``MACROBENCHMARKS`` / ``DIAGNOSTIC_WORKLOADS`` dicts are
    instances of this class: membership tests, iteration order and
    ``.items()`` behave exactly as the dicts did, but the contents track
    the registry — a plugin registered with the right tag appears in the
    view immediately, and mutation is impossible.
    """

    __slots__ = ("_tag",)

    def __init__(self, tag: str):
        self._tag = tag

    @property
    def tag(self) -> str:
        return self._tag

    def __getitem__(self, name: str) -> Type["Workload"]:
        info = _REGISTRY.get(name)
        if info is None or self._tag not in info.tags:
            raise KeyError(name)
        return info.cls

    def __iter__(self) -> Iterator[str]:
        return iter([n for n, i in _REGISTRY.items() if self._tag in i.tags])

    def __len__(self) -> int:
        return sum(1 for i in _REGISTRY.values() if self._tag in i.tags)

    def __repr__(self) -> str:
        return f"TagView({self._tag!r}: {list(self)})"
