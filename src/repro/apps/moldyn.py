"""moldyn — molecular-dynamics skeleton (bulk reduction ring).

The paper's moldyn resembles CHARMM's non-bonded force calculation; its
dominant communication is a custom bulk-reduction protocol that accounts
for roughly 40 % of total time with NI2w.  One execution of the reduction
iterates as many times as there are processors; in each step a processor
sends 1.5 kilobytes to the *same* neighbouring processor through Tempest's
virtual channels (Section 4.2).

The skeleton alternates a calibrated force-computation phase with the same
ring reduction: P steps per reduction, 1.5 KB shifted to the next processor
per step, waiting each step for the contribution arriving from the previous
processor.
"""

from __future__ import annotations

from typing import Dict, Generator, Sequence

from repro.apps.workload import Workload, poll_until
from repro.node.machine import Machine

#: Bytes shifted to the neighbouring processor per reduction step.
REDUCTION_BYTES = 1536


class MoldynWorkload(Workload):
    """Force computation plus a P-step bulk-reduction ring."""

    name = "moldyn"
    key_communication = "Bulk Reduction"
    paper_input = "2048 particles, 30 iter"

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 12345,
        iterations: int = 2,
        reduction_bytes: int = REDUCTION_BYTES,
        force_cycles: int = 55000,
        combine_cycles: int = 400,
    ):
        super().__init__(scale=scale, seed=seed)
        self.iterations = self.scaled(iterations, scale, minimum=1)
        self.reduction_bytes = reduction_bytes
        self.force_cycles = force_cycles
        self.combine_cycles = combine_cycles

    def programs(self, machine: Machine) -> Sequence[Generator]:
        num_procs = len(machine.nodes)
        contributions_received: Dict[int, int] = {p: 0 for p in range(num_procs)}

        def make_handler(proc_id: int):
            def handler(ml, source, nbytes, body):
                contributions_received[proc_id] += 1
                return None
            return handler

        programs = []
        for proc_id, ml in enumerate(machine.messaging):
            ml.register_handler("moldyn_reduce", make_handler(proc_id))

            def program(proc_id=proc_id, ml=ml):
                successor = (proc_id + 1) % num_procs
                expected = 0
                for _iteration in range(self.iterations):
                    # Non-bonded force computation (the 60 % that is not the
                    # reduction when running on NI2w).
                    yield from ml.processor.compute(self.force_cycles)
                    # Ring reduction: P steps of 1.5 KB to the same neighbour.
                    for _step in range(num_procs):
                        yield from ml.send_active_message(
                            successor, "moldyn_reduce", self.reduction_bytes
                        )
                        expected += 1
                        yield from poll_until(
                            ml, lambda e=expected: contributions_received[proc_id] >= e
                        )
                        # Combine the received partial result.
                        yield from ml.processor.compute(self.combine_cycles)
                    yield from ml.barrier()

            programs.append(program())
        return programs
