"""appbt — NAS APPBT skeleton (near-neighbour shared-memory traffic).

The paper's appbt is a 3-D computational fluid dynamics code whose cube is
partitioned into sub-cubes; communication happens along sub-cube boundaries
through Tempest's default invalidation-based shared-memory protocol with
moderately large (128-byte) blocks, and the application exhibits a hot spot
in which one processor receives twice as many messages as the others
(Sections 4.2 and 5.2).

The skeleton arranges the processors in a 3-D grid and, per iteration,
exchanges boundary blocks with each face neighbour using a request/response
pair (an 8-byte request answered by a 128-byte data message), adds the hot
spot traffic towards processor 0, and runs a calibrated per-cell compute
phase between exchanges.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Sequence, Tuple

from repro.apps.workload import Workload, poll_until
from repro.node.machine import Machine

#: Size of one shared-memory data block transferred along a boundary.
BLOCK_BYTES = 128
#: Size of a request (get-block) message.
REQUEST_BYTES = 8


def grid_dimensions(num_procs: int) -> Tuple[int, int, int]:
    """Pick a 3-D processor grid close to the paper's 16-node machine."""
    dims = {1: (1, 1, 1), 2: (2, 1, 1), 4: (2, 2, 1), 8: (2, 2, 2), 16: (4, 2, 2), 32: (4, 4, 2)}
    if num_procs in dims:
        return dims[num_procs]
    return (num_procs, 1, 1)


def face_neighbours(proc_id: int, dims: Tuple[int, int, int]) -> List[int]:
    """Face-adjacent neighbours of a processor in a periodic 3-D grid."""
    nx, ny, nz = dims
    x = proc_id % nx
    y = (proc_id // nx) % ny
    z = proc_id // (nx * ny)
    neighbours = set()
    for dx, dy, dz in ((1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1)):
        nx_, ny_, nz_ = (x + dx) % nx, (y + dy) % ny, (z + dz) % nz
        neighbour = nx_ + ny_ * nx + nz_ * nx * ny
        if neighbour != proc_id:
            neighbours.add(neighbour)
    return sorted(neighbours)


class AppbtWorkload(Workload):
    """Near-neighbour boundary exchange with a hot spot at processor 0."""

    name = "appbt"
    key_communication = "Near neighbor"
    paper_input = "24x24x24 cubes, 4 iter"

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 12345,
        iterations: int = 2,
        blocks_per_face: int = 6,
        hot_spot_blocks: int = 6,
        cell_compute_cycles: int = 28000,
    ):
        super().__init__(scale=scale, seed=seed)
        self.iterations = self.scaled(iterations, scale, minimum=1)
        self.blocks_per_face = blocks_per_face
        self.hot_spot_blocks = hot_spot_blocks
        self.cell_compute_cycles = cell_compute_cycles

    def programs(self, machine: Machine) -> Sequence[Generator]:
        num_procs = len(machine.nodes)
        dims = grid_dimensions(num_procs)
        responses_received: Dict[int, int] = {p: 0 for p in range(num_procs)}

        def reply_handler(ml, source, nbytes, body):
            # Serve a boundary-block request with a 128-byte data response.
            return ml.send_active_message(source, "appbt_data", BLOCK_BYTES)

        def make_data_handler(proc_id: int):
            def handler(ml, source, nbytes, body):
                responses_received[proc_id] += 1
                return None
            return handler

        programs = []
        for proc_id, ml in enumerate(machine.messaging):
            ml.register_handler("appbt_request", reply_handler)
            ml.register_handler("appbt_data", make_data_handler(proc_id))

            def program(proc_id=proc_id, ml=ml):
                neighbours = face_neighbours(proc_id, dims)
                expected = 0
                for _iteration in range(self.iterations):
                    yield from ml.processor.compute(self.cell_compute_cycles)
                    # Boundary exchange with every face neighbour.
                    for neighbour in neighbours:
                        for _block in range(self.blocks_per_face):
                            yield from ml.send_active_message(
                                neighbour, "appbt_request", REQUEST_BYTES
                            )
                            expected += 1
                    # Hot spot: everyone also fetches global coefficients
                    # owned by processor 0.
                    if proc_id != 0 and num_procs > 1:
                        for _block in range(self.hot_spot_blocks):
                            yield from ml.send_active_message(
                                0, "appbt_request", REQUEST_BYTES
                            )
                            expected += 1
                    yield from poll_until(
                        ml, lambda e=expected: responses_received[proc_id] >= e
                    )
                    yield from ml.barrier()

            programs.append(program())
        return programs
