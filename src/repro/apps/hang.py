"""Diagnostic workload that deliberately never completes.

Used by the watchdog tests and the CI chaos-smoke job to prove that a hung
simulation point is detected, diagnosed and reported ``failed`` instead of
wedging a batch.  Two hang modes cover the watchdog's two detectors:

* ``mode="quiesce"`` — every node parks on a barrier that one node never
  joins: the event queues drain with unfinished processes, which the
  watchdog turns into a :class:`repro.sim.SimulationHangError` carrying a
  wait-for graph.
* ``mode="spin"`` — node 0 busy-polls for a message nobody sends while the
  others finish: events keep executing but no workload progress is made,
  tripping the stall detector (spin elision parks the poller on quiet
  devices, in which case this degenerates to a quiescent hang — both are
  diagnosed).
"""

from __future__ import annotations

from typing import Generator, List, Sequence

from repro.apps.workload import Workload, poll_until
from repro.node.machine import Machine


class HangWorkload(Workload):
    """A workload that intentionally hangs (for watchdog/chaos testing)."""

    name = "hang"
    key_communication = "none — deliberately deadlocks"
    paper_input = "n/a (diagnostic)"

    def __init__(self, scale: float = 1.0, seed: int = 12345, mode: str = "quiesce"):
        super().__init__(scale=scale, seed=seed)
        if mode not in ("quiesce", "spin"):
            raise ValueError(f"unknown hang mode {mode!r} (quiesce or spin)")
        self.mode = mode

    def describe_input(self) -> str:
        return f"diagnostic hang, mode={self.mode}"

    def programs(self, machine: Machine) -> Sequence[Generator]:
        world = len(machine.nodes)

        def defector(ml) -> Generator:
            # Do a little work so the run isn't trivially empty, then exit
            # without joining the barrier everyone else waits on.
            yield 100

        def waiter(ml) -> Generator:
            yield 100
            yield from ml.barrier()

        def spinner(ml) -> Generator:
            # Busy-poll for a message that is never sent.
            yield from poll_until(ml, lambda: False)

        programs: List[Generator] = []
        for node in range(world):
            ml = machine.messaging[node]
            if self.mode == "spin":
                programs.append(spinner(ml) if node == 0 else defector(ml))
            else:
                programs.append(defector(ml) if node == 0 else waiter(ml))
        return programs
