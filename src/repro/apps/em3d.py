"""em3d — electromagnetic wave-propagation skeleton (bipartite-graph updates).

The paper's em3d iterates over a bipartite graph; on every iteration each
graph node sends two integers (a 12-byte active-message payload) to its
remote neighbours through a custom update protocol, and several updates can
be in flight at once, producing bursty fine-grain traffic (Section 4.2,
paper input: 1K nodes, degree 5, 10 % remote, span 6, 10 iterations).

The skeleton builds the same kind of graph deterministically: each
processor owns ``nodes_per_proc`` graph nodes of degree ``degree``, a
``remote_fraction`` of whose edges point at nodes on other processors
(within ``span`` neighbouring processors).  Each iteration sends one
12-byte update per remote edge in a burst, waits for the updates it is owed
and runs the per-node compute.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Sequence, Tuple

from repro.apps.workload import Workload, poll_until
from repro.node.machine import Machine

#: Payload of one update message (two integers plus a node index).
UPDATE_PAYLOAD_BYTES = 12
#: Cycles of computation per owned graph node per iteration.
NODE_COMPUTE_CYCLES = 60


class Em3dWorkload(Workload):
    """Bursty fine-grain neighbour updates over a bipartite graph."""

    name = "em3d"
    key_communication = "Fine-Grain Messages"
    paper_input = "1K nodes, degree 5, 10% remote, span 6, 10 iter"

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 12345,
        nodes_per_proc: int = 64,
        degree: int = 5,
        remote_fraction: float = 0.10,
        span: int = 6,
        iterations: int = 3,
    ):
        super().__init__(scale=scale, seed=seed)
        self.nodes_per_proc = self.scaled(nodes_per_proc, scale, minimum=4)
        self.degree = degree
        self.remote_fraction = remote_fraction
        self.span = span
        self.iterations = max(1, iterations)

    def _build_edges(self, num_procs: int) -> Tuple[Dict[int, List[int]], Dict[int, int]]:
        """Return (remote out-edge destinations per proc, expected arrivals per proc)."""
        rng = self.rng()
        out_edges: Dict[int, List[int]] = {p: [] for p in range(num_procs)}
        expected: Dict[int, int] = {p: 0 for p in range(num_procs)}
        for proc in range(num_procs):
            for _node in range(self.nodes_per_proc):
                for _edge in range(self.degree):
                    if rng.random() < self.remote_fraction and num_procs > 1:
                        offset = rng.randint(1, max(1, min(self.span, num_procs - 1)))
                        dest = (proc + offset) % num_procs
                        out_edges[proc].append(dest)
                        expected[dest] += 1
        return out_edges, expected

    def programs(self, machine: Machine) -> Sequence[Generator]:
        num_procs = len(machine.nodes)
        out_edges, expected_per_iter = self._build_edges(num_procs)
        updates_received: Dict[int, int] = {p: 0 for p in range(num_procs)}

        def make_handler(proc_id: int):
            def handler(ml, source, nbytes, body):
                updates_received[proc_id] += 1
                return None
            return handler

        programs = []
        for proc_id, ml in enumerate(machine.messaging):
            ml.register_handler("em3d_update", make_handler(proc_id))

            def program(proc_id=proc_id, ml=ml):
                # The update protocol is split-phase: iterations are paced by
                # the arrival of the updates each processor is owed, with a
                # single barrier at the end of the run (as in the original
                # custom update protocol).
                for iteration in range(1, self.iterations + 1):
                    # Send this iteration's updates in a burst.
                    for dest in out_edges[proc_id]:
                        yield from ml.send_active_message(
                            dest, "em3d_update", UPDATE_PAYLOAD_BYTES, (iteration,)
                        )
                    # Wait for the updates owed to this processor.
                    target = expected_per_iter[proc_id] * iteration
                    yield from poll_until(
                        ml, lambda t=target: updates_received[proc_id] >= t
                    )
                    # Per-node computation for the iteration.
                    yield from ml.processor.compute(
                        NODE_COMPUTE_CYCLES * self.nodes_per_proc
                    )
                yield from ml.barrier()

            programs.append(program())
        return programs
