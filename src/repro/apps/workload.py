"""Workload framework for the five macrobenchmarks.

The paper's macrobenchmarks (Table 3) are full applications running on
Tempest; what determines their NI sensitivity is their *communication
pattern* — message sizes, fan-out, burstiness and the ratio of computation
to communication (Section 4.2).  We therefore implement each benchmark as a
deterministic **communication skeleton**: per-node programs that issue the
same pattern of active messages, bulk transfers, broadcasts and barriers as
the original application, with computation represented by calibrated
processor delays.  Performance is always reported as a *speedup relative to
NI2w on the memory bus*, exactly as in Figure 8, so the absolute scale of
the skeleton cancels out.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Generator, Optional, Sequence

from repro.node.machine import Machine


@dataclass
class WorkloadResult:
    """Outcome of one workload run on one machine configuration."""

    workload: str
    ni_name: str
    bus: str
    cycles: int
    memory_bus_occupancy: int
    io_bus_occupancy: int
    user_messages: int
    network_messages: int

    @property
    def microseconds(self) -> float:
        # The result is only meaningful relative to another configuration,
        # but microseconds are convenient for eyeballing.
        return self.cycles / 200.0


class Workload(abc.ABC):
    """Base class for macrobenchmark communication skeletons."""

    #: Benchmark name as used in the paper.
    name = "workload"
    #: "Key communication" column of Table 3.
    key_communication = ""
    #: "Input data set" column of Table 3 (the paper's full-size input).
    paper_input = ""

    def __init__(self, scale: float = 1.0, seed: int = 12345):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale
        self.seed = seed

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def programs(self, machine: Machine) -> Sequence[Generator]:
        """Build one program generator per node of ``machine``."""

    def describe_input(self) -> str:
        """Human-readable description of the (scaled) input actually used."""
        return f"{self.paper_input} (communication skeleton, scale={self.scale})"

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, machine: Machine, max_cycles: Optional[int] = None) -> WorkloadResult:
        """Run the workload to completion on ``machine``."""
        cycles = machine.run_programs(self.programs(machine), max_cycles=max_cycles)
        ni_names = {node.config.ni_name for node in machine.nodes}
        buses = {node.config.ni_bus.value for node in machine.nodes}
        return WorkloadResult(
            workload=self.name,
            ni_name="/".join(sorted(ni_names)),
            bus="/".join(sorted(buses)),
            cycles=cycles,
            memory_bus_occupancy=machine.total_memory_bus_occupancy(),
            io_bus_occupancy=machine.total_io_bus_occupancy(),
            user_messages=sum(ml.stats.get("user_messages_sent") for ml in machine.messaging),
            network_messages=machine.network_stats().get("messages_injected", 0),
        )

    # ------------------------------------------------------------------
    # Helpers shared by the skeletons
    # ------------------------------------------------------------------
    def rng(self) -> random.Random:
        return random.Random(self.seed)

    @staticmethod
    def scaled(value: int, scale: float, minimum: int = 1) -> int:
        return max(minimum, int(round(value * scale)))


def poll_until(ml, done_predicate, backoff: int = 20):
    """Poll the messaging layer until ``done_predicate()`` is true.

    A blocking wait: on coherent-queue devices whose empty poll hits in the
    processor cache, steady spins are elided into an event-driven sleep with
    bit-identical simulated timing (see :meth:`MessagingLayer.poll_wait`).
    """
    yield from ml.poll_wait(done_predicate, backoff=backoff)


def drain_completed(ml, backoff: int = 20):
    """Drain any straggler messages without blocking (one poll pass)."""
    got = yield from ml.poll()
    if not got:
        yield backoff
