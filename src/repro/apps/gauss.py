"""gauss — Gaussian-elimination skeleton (one-to-all pivot broadcast).

The paper's gauss solves a 512x512 linear system by Gaussian elimination;
its key communication is a one-to-all broadcast of the two-kilobyte pivot
row each round (Section 4.2).  The skeleton performs the same rounds: the
round's owner broadcasts the pivot row, every processor then eliminates its
share of the remaining rows (a calibrated compute delay that shrinks as the
matrix shrinks, as in the real algorithm).
"""

from __future__ import annotations

from typing import Dict, Generator, Sequence

from repro.apps.workload import Workload, poll_until
from repro.node.machine import Machine

#: Bytes broadcast per round (a 512-entry row of 4-byte values in the paper).
PIVOT_ROW_BYTES = 2048


class GaussWorkload(Workload):
    """One-to-all broadcast of the pivot row, then local elimination."""

    name = "gauss"
    key_communication = "One-To-All Broadcast"
    paper_input = "512x512 matrix"

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 12345,
        rounds: int = 24,
        row_bytes: int = PIVOT_ROW_BYTES,
        elimination_cycles: int = 14000,
    ):
        super().__init__(scale=scale, seed=seed)
        self.rounds = self.scaled(rounds, scale, minimum=2)
        self.row_bytes = row_bytes
        self.elimination_cycles = elimination_cycles

    def programs(self, machine: Machine) -> Sequence[Generator]:
        num_procs = len(machine.nodes)
        pivots_received: Dict[int, int] = {p: 0 for p in range(num_procs)}

        def make_handler(proc_id: int):
            def handler(ml, source, nbytes, body):
                pivots_received[proc_id] += 1
                return None
            return handler

        programs = []
        for proc_id, ml in enumerate(machine.messaging):
            ml.register_handler("gauss_pivot", make_handler(proc_id))

            def program(proc_id=proc_id, ml=ml):
                pivots_expected = 0
                for round_index in range(self.rounds):
                    owner = round_index % num_procs
                    if proc_id == owner:
                        # Factor the pivot row, then broadcast it.
                        yield from ml.processor.compute(self.elimination_cycles // 8)
                        yield from ml.broadcast("gauss_pivot", self.row_bytes, (round_index,))
                    else:
                        pivots_expected += 1
                        yield from poll_until(
                            ml, lambda e=pivots_expected: pivots_received[proc_id] >= e
                        )
                    # Eliminate this processor's share of the remaining rows;
                    # the remaining work shrinks as rounds progress.
                    remaining_fraction = 1.0 - round_index / max(1, self.rounds)
                    yield from ml.processor.compute(
                        max(200, int(self.elimination_cycles * remaining_fraction))
                    )
                yield from ml.barrier()

            programs.append(program())
        return programs
