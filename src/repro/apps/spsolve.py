"""spsolve — fine-grained iterative sparse-matrix solver skeleton.

The paper's spsolve propagates active messages down the edges of a directed
acyclic graph; all computation happens inside the handlers, each message
carries a 12-byte payload and the work per message is a single double-word
addition.  Several messages can be in flight at once, producing bursty
fine-grain traffic (Section 4.2).

The skeleton builds a deterministic layered DAG, distributes its nodes
round-robin across processors, and fires each DAG node's out-edges once all
of its in-edges have arrived — the same dataflow structure, with the
original's per-message computation represented by a small processor delay.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Generator, List, Sequence

from repro.apps.workload import Workload, poll_until
from repro.node.machine import Machine

#: Payload carried by each active message (paper: 12 bytes).
UPDATE_PAYLOAD_BYTES = 12
#: Cycles of computation per DAG-node firing (one double-word addition plus
#: handler bookkeeping).
FIRE_COMPUTE_CYCLES = 12


@dataclass
class _DagNode:
    node_id: int
    owner: int
    in_degree: int
    out_edges: List[int]            # destination DAG node ids


def build_layered_dag(
    num_elements: int, num_layers: int, fanout: int, rng: random.Random, num_procs: int
) -> List[_DagNode]:
    """Build a deterministic layered DAG with ``num_elements`` nodes."""
    num_layers = max(2, min(num_layers, num_elements))
    layers: List[List[int]] = [[] for _ in range(num_layers)]
    for node_id in range(num_elements):
        layers[node_id % num_layers].append(node_id)
    nodes = [
        _DagNode(node_id=i, owner=i % num_procs, in_degree=0, out_edges=[])
        for i in range(num_elements)
    ]
    for layer_index in range(num_layers - 1):
        next_layers = [n for layer in layers[layer_index + 1 :] for n in layer]
        if not next_layers:
            continue
        for node_id in layers[layer_index]:
            out_count = min(fanout, len(next_layers))
            for dest in rng.sample(next_layers, out_count):
                nodes[node_id].out_edges.append(dest)
                nodes[dest].in_degree += 1
    return nodes


class SpsolveWorkload(Workload):
    """Fine-grain active-message propagation down a DAG."""

    name = "spsolve"
    key_communication = "Fine-Grain Messages"
    paper_input = "3720 elements"

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 12345,
        num_elements: int = 768,
        num_layers: int = 12,
        fanout: int = 3,
    ):
        super().__init__(scale=scale, seed=seed)
        self.num_elements = self.scaled(num_elements, scale, minimum=8)
        self.num_layers = num_layers
        self.fanout = fanout

    def programs(self, machine: Machine) -> Sequence[Generator]:
        num_procs = len(machine.nodes)
        dag = build_layered_dag(
            self.num_elements, self.num_layers, self.fanout, self.rng(), num_procs
        )
        # Per-processor bookkeeping built once, shared by handler closures.
        pending: Dict[int, int] = {n.node_id: n.in_degree for n in dag}
        fired: Dict[int, int] = {p: 0 for p in range(num_procs)}
        local_nodes: Dict[int, List[_DagNode]] = {p: [] for p in range(num_procs)}
        for node in dag:
            local_nodes[node.owner].append(node)

        def make_fire(ml, proc_id: int):
            def fire(dag_node: _DagNode):
                """Generator: run a DAG node's computation and send updates."""
                yield from ml.processor.compute(FIRE_COMPUTE_CYCLES)
                fired[proc_id] += 1
                for dest_id in dag_node.out_edges:
                    dest_node = dag[dest_id]
                    yield from ml.send_active_message(
                        dest_node.owner, "spsolve_update", UPDATE_PAYLOAD_BYTES, (dest_id,)
                    )
            return fire

        fire_functions = {}

        def make_handler(proc_id: int):
            def handler(ml, source, nbytes, body):
                dag_node_id = body[0]
                pending[dag_node_id] -= 1
                if pending[dag_node_id] == 0:
                    return fire_functions[proc_id](dag[dag_node_id])
                return None
            return handler

        programs = []
        for proc_id, ml in enumerate(machine.messaging):
            fire_functions[proc_id] = make_fire(ml, proc_id)
            ml.register_handler("spsolve_update", make_handler(proc_id))

            def program(proc_id=proc_id, ml=ml):
                mine = local_nodes[proc_id]
                roots = [n for n in mine if n.in_degree == 0]
                for root in roots:
                    yield from fire_functions[proc_id](root)
                # Poll until every locally owned DAG node has fired.
                yield from poll_until(ml, lambda: fired[proc_id] >= len(mine))
                yield from ml.barrier()

            programs.append(program())
        return programs
