"""Macrobenchmark communication skeletons (Table 3 of the paper)."""

from typing import Dict, Type

from repro.apps.appbt import AppbtWorkload
from repro.apps.em3d import Em3dWorkload
from repro.apps.gauss import GaussWorkload
from repro.apps.moldyn import MoldynWorkload
from repro.apps.spsolve import SpsolveWorkload
from repro.apps.workload import Workload, WorkloadResult, poll_until

#: The five macrobenchmarks evaluated in the paper, in its order.
MACROBENCHMARKS: Dict[str, Type[Workload]] = {
    "spsolve": SpsolveWorkload,
    "gauss": GaussWorkload,
    "em3d": Em3dWorkload,
    "moldyn": MoldynWorkload,
    "appbt": AppbtWorkload,
}


def create_workload(name: str, **kwargs) -> Workload:
    """Instantiate a macrobenchmark skeleton by its paper name."""
    try:
        cls = MACROBENCHMARKS[name]
    except KeyError:
        raise ValueError(
            f"unknown macrobenchmark {name!r}; choose from {sorted(MACROBENCHMARKS)}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "Workload",
    "WorkloadResult",
    "poll_until",
    "SpsolveWorkload",
    "GaussWorkload",
    "Em3dWorkload",
    "MoldynWorkload",
    "AppbtWorkload",
    "MACROBENCHMARKS",
    "create_workload",
]
