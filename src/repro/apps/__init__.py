"""Macrobenchmark communication skeletons (Table 3 of the paper).

Workloads are looked up through the generative registry in
:mod:`repro.apps.registry`; ``MACROBENCHMARKS`` and
``DIAGNOSTIC_WORKLOADS`` remain importable as live, read-only views of
the ``macro`` / ``diagnostic`` tags.  Synthetic traffic generators and
trace replay register under their own tags from :mod:`repro.traffic` and
:mod:`repro.trace`.
"""

from repro.apps.appbt import AppbtWorkload
from repro.apps.em3d import Em3dWorkload
from repro.apps.gauss import GaussWorkload
from repro.apps.hang import HangWorkload
from repro.apps.moldyn import MoldynWorkload
from repro.apps.registry import (
    WORKLOAD_SCHEMA_VERSION,
    WORKLOAD_TAGS,
    TagView,
    WorkloadError,
    WorkloadInfo,
    available_workloads,
    create_workload,
    register_workload,
    unregister_workload,
    workload_class,
    workload_names,
)
from repro.apps.spsolve import SpsolveWorkload
from repro.apps.workload import Workload, WorkloadResult, poll_until

# The five paper macrobenchmarks register in the paper's (Table 3) order —
# registration order is enumeration order everywhere downstream.  ``hang``
# deliberately never completes (watchdog / chaos testing) and is tagged
# diagnostic: runnable through specs and ``create_workload`` but excluded
# from Table 3 and the figure sweeps.
for _cls, _tags in (
    (SpsolveWorkload, ("macro",)),
    (GaussWorkload, ("macro",)),
    (Em3dWorkload, ("macro",)),
    (MoldynWorkload, ("macro",)),
    (AppbtWorkload, ("macro",)),
    (HangWorkload, ("diagnostic",)),
):
    register_workload(tags=_tags, replace=True)(_cls)

#: The five macrobenchmarks evaluated in the paper, in its order
#: (live view of the ``macro`` tag).
MACROBENCHMARKS = TagView("macro")

#: Diagnostic (non-paper) workloads (live view of the ``diagnostic`` tag).
DIAGNOSTIC_WORKLOADS = TagView("diagnostic")


__all__ = [
    "Workload",
    "WorkloadResult",
    "poll_until",
    "SpsolveWorkload",
    "GaussWorkload",
    "Em3dWorkload",
    "HangWorkload",
    "MoldynWorkload",
    "AppbtWorkload",
    "MACROBENCHMARKS",
    "DIAGNOSTIC_WORKLOADS",
    "WORKLOAD_SCHEMA_VERSION",
    "WORKLOAD_TAGS",
    "TagView",
    "WorkloadError",
    "WorkloadInfo",
    "available_workloads",
    "create_workload",
    "register_workload",
    "unregister_workload",
    "workload_class",
    "workload_names",
]
