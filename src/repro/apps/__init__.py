"""Macrobenchmark communication skeletons (Table 3 of the paper)."""

from typing import Dict, Type

from repro.apps.appbt import AppbtWorkload
from repro.apps.em3d import Em3dWorkload
from repro.apps.gauss import GaussWorkload
from repro.apps.hang import HangWorkload
from repro.apps.moldyn import MoldynWorkload
from repro.apps.spsolve import SpsolveWorkload
from repro.apps.workload import Workload, WorkloadResult, poll_until

#: The five macrobenchmarks evaluated in the paper, in its order.
MACROBENCHMARKS: Dict[str, Type[Workload]] = {
    "spsolve": SpsolveWorkload,
    "gauss": GaussWorkload,
    "em3d": Em3dWorkload,
    "moldyn": MoldynWorkload,
    "appbt": AppbtWorkload,
}

#: Diagnostic (non-paper) workloads: runnable through specs and
#: ``create_workload`` but excluded from Table 3 and the figure sweeps.
#: ``hang`` deliberately never completes (watchdog / chaos testing).
DIAGNOSTIC_WORKLOADS: Dict[str, Type[Workload]] = {
    "hang": HangWorkload,
}


def create_workload(name: str, **kwargs) -> Workload:
    """Instantiate a macrobenchmark or diagnostic skeleton by name."""
    cls = MACROBENCHMARKS.get(name) or DIAGNOSTIC_WORKLOADS.get(name)
    if cls is None:
        raise ValueError(
            f"unknown macrobenchmark {name!r}; choose from "
            f"{sorted(MACROBENCHMARKS) + sorted(DIAGNOSTIC_WORKLOADS)}"
        )
    return cls(**kwargs)


__all__ = [
    "Workload",
    "WorkloadResult",
    "poll_until",
    "SpsolveWorkload",
    "GaussWorkload",
    "Em3dWorkload",
    "HangWorkload",
    "MoldynWorkload",
    "AppbtWorkload",
    "MACROBENCHMARKS",
    "DIAGNOSTIC_WORKLOADS",
    "create_workload",
]
