"""Store administration: ``python -m repro.experiments.run cache …``.

Subcommands::

    cache stats [--json]          # size, per-kind counts, stale/corrupt tallies
    cache ls [--all]              # one line per entry
    cache gc [--dry-run] [--max-bytes N]   # prune stale/corrupt, enforce budget
    cache pin KEYPREFIX [...]     # mark golden results (never evicted)
    cache unpin KEYPREFIX [...]

All subcommands take ``--dir`` (default: the CLI cache directory) and work
on sharded stores and legacy flat :class:`~repro.api.ResultCache`
directories alike.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.api.cache import DEFAULT_CACHE_DIR
from repro.service.store import ResultStore


def _human(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024
    return f"{n:.1f} GiB"


def _age(ts: float) -> str:
    if not ts:
        return "?"
    delta = max(0.0, time.time() - ts)
    for span, unit in ((86400, "d"), (3600, "h"), (60, "m")):
        if delta >= span:
            return f"{delta / span:.1f}{unit}"
    return f"{delta:.0f}s"


def cmd_stats(store: ResultStore, args: argparse.Namespace) -> int:
    infos = list(store.entries(include_invalid=True))
    kinds: dict = {}
    states = {"ok": 0, "stale": 0, "corrupt": 0}
    total = pinned = legacy = 0
    for info in infos:
        total += info.size
        states[info.state] = states.get(info.state, 0) + 1
        if info.pinned:
            pinned += 1
        if info.legacy:
            legacy += 1
        if info.state == "ok":
            kinds[info.kind] = kinds.get(info.kind, 0) + 1
    report = {
        "directory": store.directory,
        "entries": len(infos),
        "bytes": total,
        "pinned": pinned,
        "legacy_flat": legacy,
        "states": states,
        "kinds": kinds,
    }
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    print(f"store {store.directory!r}: {len(infos)} entries, {_human(total)}")
    print(f"  ok={states['ok']} stale={states['stale']} corrupt={states['corrupt']}"
          f" pinned={pinned} legacy-flat={legacy}")
    for kind in sorted(kinds):
        print(f"  {kind}: {kinds[kind]}")
    if states["stale"] or states["corrupt"]:
        print("  (run `cache gc` to prune stale/corrupt entries)")
    return 0


def cmd_ls(store: ResultStore, args: argparse.Namespace) -> int:
    shown = 0
    for info in sorted(
        store.entries(include_invalid=args.all), key=lambda i: -i.last_hit
    ):
        flags = "".join(
            flag for flag, on in (
                ("P", info.pinned), ("L", info.legacy),
                ("S", info.state == "stale"), ("C", info.state == "corrupt"),
            ) if on
        ) or "-"
        print(
            f"{info.key[:16]}  {flags:<4} {info.kind:<10} {_human(info.size):>10}  "
            f"hits={info.hits:<5} last-hit={_age(info.last_hit)}"
        )
        shown += 1
    if not shown:
        print("(empty store)")
    return 0


def cmd_gc(store: ResultStore, args: argparse.Namespace) -> int:
    report = store.gc(dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    print(
        f"gc {store.directory!r}: {verb} {report['stale']} stale + "
        f"{report['corrupt']} corrupt entries ({_human(report['bytes'])}), "
        f"{report['orphan_meta']} orphan sidecars, {report['tmp']} temp files"
    )
    if args.max_bytes is not None and not args.dry_run:
        evicted = store.enforce_budget(args.max_bytes)
        print(f"  evicted {evicted} LRU entries to fit {_human(args.max_bytes)}")
    return 0


def _set_pin(store: ResultStore, prefixes: List[str], pinned: bool) -> int:
    status = 0
    for prefix in prefixes:
        keys = store.resolve_key(prefix)
        if not keys:
            print(f"{prefix}: no matching entry", file=sys.stderr)
            status = 1
            continue
        if len(keys) > 1 and prefix not in keys:
            print(f"{prefix}: ambiguous ({len(keys)} matches)", file=sys.stderr)
            status = 1
            continue
        key = prefix if prefix in keys else keys[0]
        if store.pin(key, pinned):
            print(f"{key[:16]}: {'pinned' if pinned else 'unpinned'}")
        else:
            print(f"{prefix}: pin failed", file=sys.stderr)
            status = 1
    return status


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.run cache",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--dir", default=DEFAULT_CACHE_DIR,
        help=f"store/cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_stats = sub.add_parser("stats", help="store size and entry health")
    p_stats.add_argument("--json", action="store_true", help="machine-readable output")
    p_ls = sub.add_parser("ls", help="list entries, most recently hit first")
    p_ls.add_argument("--all", action="store_true", help="include stale/corrupt entries")
    p_gc = sub.add_parser("gc", help="prune stale-schema and corrupt entries")
    p_gc.add_argument("--dry-run", action="store_true", help="report without deleting")
    p_gc.add_argument(
        "--max-bytes", type=int, default=None,
        help="additionally LRU-evict unpinned entries down to this budget",
    )
    p_pin = sub.add_parser("pin", help="pin golden results (never evicted)")
    p_pin.add_argument("keys", nargs="+", help="entry key(s), full or unique prefix")
    p_unpin = sub.add_parser("unpin", help="unpin entries")
    p_unpin.add_argument("keys", nargs="+", help="entry key(s), full or unique prefix")
    args = parser.parse_args(argv)

    store = ResultStore(args.dir)
    if args.command == "stats":
        return cmd_stats(store, args)
    if args.command == "ls":
        return cmd_ls(store, args)
    if args.command == "gc":
        return cmd_gc(store, args)
    if args.command == "pin":
        return _set_pin(store, args.keys, True)
    return _set_pin(store, args.keys, False)


if __name__ == "__main__":
    sys.exit(main())
