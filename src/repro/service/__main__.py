"""Serve experiments over HTTP: ``python -m repro.service``.

Examples::

    python -m repro.service --port 8042
    python -m repro.service --store-dir .repro-cache --budget-mb 512 --jobs 4

The store directory is shared with (and adopts entries from) the CLI's
``--cache-dir``, so results computed by ``python -m repro.experiments.run``
are served warm and vice versa.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from typing import List, Optional

from repro.api.cache import DEFAULT_CACHE_DIR
from repro.service.http import ExperimentService, make_server
from repro.service.store import ResultStore


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    parser.add_argument(
        "--port", type=int, default=8042,
        help="port to listen on; 0 picks an ephemeral port (default: 8042)",
    )
    parser.add_argument(
        "--store-dir", default=DEFAULT_CACHE_DIR,
        help=f"result-store directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--budget-mb", type=float, default=None,
        help="LRU byte budget for the store in MiB (default: unbounded)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes per batch sweep (default: 1)",
    )
    parser.add_argument(
        "--point-timeout-s", type=float, default=None,
        help="wall-clock budget per simulated point; overruns are killed and "
        "reported 504 / failed (default: unbounded)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=0,
        help="retries for crashed or timed-out points before reporting failure (default: 0)",
    )
    parser.add_argument(
        "--grace-s", type=float, default=30.0,
        help="seconds to let running batches drain on SIGTERM (default: 30)",
    )
    parser.add_argument("--verbose", action="store_true", help="log every request")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.max_retries < 0:
        parser.error("--max-retries must be >= 0")

    budget = None if args.budget_mb is None else int(args.budget_mb * 1024 * 1024)
    store = ResultStore(args.store_dir, budget_bytes=budget)
    service = ExperimentService(
        store,
        jobs=args.jobs,
        verbose=args.verbose,
        point_timeout_s=args.point_timeout_s,
        max_retries=args.max_retries,
    )
    server = make_server(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]

    def handle_term(signum: int, frame: object) -> None:
        # Refuse new work immediately; stop the accept loop from a helper
        # thread (server.shutdown blocks until serve_forever exits, so it
        # must not run on the signal frame).
        service.draining = True
        threading.Thread(target=server.shutdown, name="sigterm-shutdown", daemon=True).start()

    # Install the handler before the banner: the banner is the readiness
    # signal, and a supervisor may SIGTERM the instant it sees it.
    previous = signal.signal(signal.SIGTERM, handle_term)
    print(
        f"repro experiment service on http://{host}:{port} "
        f"(store={args.store_dir!r}, jobs={args.jobs}, "
        f"budget={'unbounded' if budget is None else f'{budget} B'})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        report = service.drain(grace_s=args.grace_s)
        server.server_close()
        print(
            f"drained: {report['unfinished_batches']} unfinished batches, "
            f"{report['released_locks']} locks released",
            flush=True,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
