"""Production experiment service: store, dedup, and HTTP serving.

The service layer turns :mod:`repro.api` from a library into a system:

* :class:`~repro.service.store.ResultStore` — a concurrency-safe,
  content-addressed result store (sharded directories, atomic writes,
  per-entry metadata, pinning, LRU eviction with a byte budget) that
  subsumes the PR 1 :class:`~repro.api.cache.ResultCache` behind the same
  interface,
* :class:`~repro.service.dedup.InFlightRegistry` — in-flight-run
  deduplication (thread events in-process, a lock-file + done-marker
  protocol across processes) so N concurrent identical requests trigger
  exactly one simulation,
* :class:`~repro.service.http.ExperimentService` and
  :func:`~repro.service.http.make_server` — a stdlib-only HTTP API
  (``POST /run``, ``GET /result/<key>`` with strong ETags and 304s,
  ``POST /batch`` with a streamed progress endpoint, ``GET /stats``)
  started with ``python -m repro.service``,
* :mod:`~repro.service.admin` — the ``cache {stats,ls,gc,pin,unpin}``
  admin CLI reachable through ``python -m repro.experiments.run cache``.
"""

from repro.service.dedup import DedupError, InFlightRegistry
from repro.service.http import ExperimentService, PointTimeoutError, ServiceHandler, make_server
from repro.service.store import CorruptEntryError, EntryInfo, ResultStore

__all__ = [
    "ResultStore",
    "EntryInfo",
    "CorruptEntryError",
    "InFlightRegistry",
    "DedupError",
    "ExperimentService",
    "PointTimeoutError",
    "ServiceHandler",
    "make_server",
]
