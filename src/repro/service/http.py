"""Stdlib HTTP serving layer over the result store and dedup registry.

The service exposes the whole experiment stack over the wire with nothing
beyond ``http.server``:

* ``POST /run`` — one :class:`~repro.api.ExperimentSpec` as JSON in, its
  :class:`~repro.api.RunResult` entry as JSON out.  Warm keys are served
  straight from the store; cold keys are arbitrated through the
  :class:`~repro.service.dedup.InFlightRegistry` so N concurrent identical
  requests trigger exactly one simulation.  ``?wait=0`` returns ``202`` with
  a ``Location: /result/<key>`` to poll instead of blocking.
* ``GET /result/<key>`` — the pure read path: one store file read, a strong
  ETag (sha256 of the entry bytes), and ``304 Not Modified`` under
  ``If-None-Match``.  No spec parsing, no Machine construction.  ``202``
  while the key is in flight, ``404`` otherwise.
* ``POST /batch`` — a :class:`~repro.api.SweepSpec` (or explicit point
  list); returns ``202`` with a batch id.  ``GET /batch/<id>`` reports
  progress; ``GET /batch/<id>/stream`` streams one NDJSON line per
  completed point until the batch finishes.  The write path delegates to
  the existing :class:`~repro.api.SweepRunner` (``--jobs`` worker
  processes, store-backed memoisation).
* ``GET /stats`` — hit/miss/store/eviction counters, dedup counters,
  request counters, uptime.

Run it with ``python -m repro.service`` (see :mod:`repro.service.__main__`).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.api.kinds import kind_cacheable
from repro.api.results import RunResult
from repro.api.runner import SweepRunner, run_point, run_point_guarded
from repro.api.spec import ExperimentSpec, SpecError, SweepSpec
from repro.ni.taxonomy import TaxonomyError
from repro.service.dedup import DedupError, InFlightRegistry
from repro.service.store import CorruptEntryError, ResultStore

_KEY_RE = re.compile(r"^[0-9a-f]{64}$")


class PointTimeoutError(RuntimeError):
    """A simulation exceeded the service's per-point wall-clock budget."""


class _Batch:
    """Progress state for one submitted sweep."""

    def __init__(self, batch_id: str, total: int):
        self.id = batch_id
        self.total = total
        self.completed = 0
        self.failed = 0
        self.events: List[Dict[str, Any]] = []
        self.done = False
        self.error: Optional[str] = None
        self.keys: List[str] = []
        self.cond = threading.Condition()
        self.started = time.time()
        self.elapsed_s: Optional[float] = None

    def record(self, event: Dict[str, Any]) -> None:
        with self.cond:
            self.completed += 1
            if event.get("failed"):
                self.failed += 1
            event["completed"] = self.completed
            event["total"] = self.total
            self.events.append(event)
            self.cond.notify_all()

    def finish(self, error: Optional[str] = None) -> None:
        with self.cond:
            self.done = True
            self.error = error
            self.elapsed_s = time.time() - self.started
            self.cond.notify_all()

    def snapshot(self) -> Dict[str, Any]:
        with self.cond:
            return {
                "batch": self.id,
                "total": self.total,
                "completed": self.completed,
                "failed": self.failed,
                "done": self.done,
                "error": self.error,
                "keys": list(self.keys),
                "elapsed_s": (
                    self.elapsed_s if self.elapsed_s is not None
                    else time.time() - self.started
                ),
            }


class ExperimentService:
    """The service core: store + dedup registry + batch tracking.

    Everything the HTTP handler does goes through methods here, so the
    service is equally drivable in-process (tests, benchmarks) and over
    the wire.
    """

    def __init__(
        self,
        store: ResultStore,
        jobs: int = 1,
        verbose: bool = False,
        point_timeout_s: Optional[float] = None,
        max_retries: int = 0,
    ):
        self.store = store
        self.registry = InFlightRegistry(os.path.join(store.directory, ".inflight"))
        self.jobs = jobs
        self.verbose = verbose
        #: Wall-clock budget per simulated point; ``None`` means unbounded.
        #: When set, points run in disposable child processes that are
        #: killed on overrun — a hung spec costs one point (504 / a failed
        #: batch entry), never a wedged worker thread.
        self.point_timeout_s = point_timeout_s
        #: Crashed/timed-out points are retried this many times before
        #: being reported failed.
        self.max_retries = max_retries
        #: Set during graceful shutdown: new work is refused with 503 while
        #: running batches drain.
        self.draining = False
        self.started = time.time()
        self._counter_lock = threading.Lock()
        self.counters: Dict[str, int] = {
            "requests": 0,
            "run_requests": 0,
            "runs_started": 0,
            "runs_completed": 0,
            "run_errors": 0,
            "failed_points": 0,
            "dedup_served": 0,
            "store_served": 0,
            "responses_304": 0,
            "batches": 0,
            "async_runs": 0,
        }
        self._batches: Dict[str, _Batch] = {}
        self._batch_seq = itertools.count(1)
        self._batch_lock = threading.Lock()

    def bump(self, counter: str, by: int = 1) -> None:
        with self._counter_lock:
            self.counters[counter] = self.counters.get(counter, 0) + by

    # ------------------------------------------------------------------
    # Spec parsing
    # ------------------------------------------------------------------
    @staticmethod
    def parse_spec(body: Dict[str, Any]) -> ExperimentSpec:
        """A validated spec from a request body (bare spec or ``{"spec": …}``)."""
        if "spec" in body and isinstance(body["spec"], dict):
            body = body["spec"]
        return ExperimentSpec.from_dict(body).validate()

    @staticmethod
    def parse_sweep(body: Any) -> List[ExperimentSpec]:
        """Validated points from a batch body: a SweepSpec dict, an explicit
        ``{"points": […]}``, or a bare JSON list of spec dicts."""
        if isinstance(body, list):
            body = {"points": body}
        if not isinstance(body, dict):
            raise SpecError("batch body must be a SweepSpec object or a list of specs")
        return SweepSpec.from_dict(body).expand()

    # ------------------------------------------------------------------
    # Single runs
    # ------------------------------------------------------------------
    @property
    def guarded(self) -> bool:
        return self.point_timeout_s is not None or self.max_retries > 0

    def _simulate(self, spec: ExperimentSpec) -> RunResult:
        self.bump("runs_started")
        if self.guarded:
            result, _ = run_point_guarded(
                spec, timeout_s=self.point_timeout_s, max_retries=self.max_retries
            )
            if result.error is not None:
                self.bump("failed_points")
                if "timed out" in result.error:
                    raise PointTimeoutError(result.error)
                raise RuntimeError(result.error)
        else:
            result = run_point(spec)
        if kind_cacheable(spec.kind):
            self.store.put(result)
        self.bump("runs_completed")
        return result

    def run_spec(self, spec: ExperimentSpec) -> Tuple[str, str]:
        """Execute (or dedupe, or fetch) one spec; returns ``(key, role)``.

        Blocks until the result is in the store.  Role is ``"store"`` for a
        warm hit, ``"leader"`` for the caller that simulated, ``"follower"``
        / ``"remote"`` for deduplicated callers.
        """
        if not kind_cacheable(spec.kind):
            # Non-cacheable results are never stored, so dedup waiters could
            # never fetch them; callers run wall-clock specs inline instead.
            raise SpecError(
                f"{spec.kind} specs are wall-clock measurements; run them inline"
            )
        key = self.store.cache_key(spec)
        if self.store.get(spec) is not None:
            self.bump("store_served")
            return key, "store"
        try:
            _, role = self.registry.run_or_wait(
                key,
                compute=lambda: self._simulate(spec),
                fetch=lambda: self.store.peek(spec),
            )
        except BaseException:
            self.bump("run_errors")
            raise
        if role in ("follower", "remote", "store"):
            self.bump("dedup_served")
        return key, role

    def start_async_run(self, spec: ExperimentSpec) -> str:
        """Kick off a background run (deduplicated); returns the key."""
        key = self.store.cache_key(spec)
        self.bump("async_runs")
        # Claim before the 202 goes out: a poll that lands ahead of the
        # worker thread must see the run in flight, never a transient 404.
        leading = self.store.peek(spec) is None and self.registry.claim(key)

        def work() -> None:
            try:
                if leading:
                    try:
                        result = self._simulate(spec)
                    except BaseException as exc:
                        self.bump("run_errors")
                        self.registry.fail(key, exc)
                        return
                    self.registry.complete(key, result)
                else:
                    self.run_spec(spec)
            except Exception:
                pass  # recorded in run_errors; surfaced as 404/202 on poll

        threading.Thread(target=work, name=f"run-{key[:8]}", daemon=True).start()
        return key

    # ------------------------------------------------------------------
    # Batches
    # ------------------------------------------------------------------
    def submit_batch(self, points: List[ExperimentSpec]) -> _Batch:
        unique: Dict[str, ExperimentSpec] = {}
        for spec in points:
            unique.setdefault(self.store.cache_key(spec), spec)
        with self._batch_lock:
            seq = next(self._batch_seq)
        digest = hashlib.sha256(
            "".join(unique).encode("ascii")
        ).hexdigest()[:12]
        batch = _Batch(f"b{seq:04d}-{digest}", total=len(unique))
        batch.keys = list(unique)
        with self._batch_lock:
            self._batches[batch.id] = batch
        self.bump("batches")
        thread = threading.Thread(
            target=self._run_batch, args=(batch, unique), name=f"batch-{batch.id}",
            daemon=True,
        )
        thread.start()
        return batch

    def get_batch(self, batch_id: str) -> Optional[_Batch]:
        with self._batch_lock:
            return self._batches.get(batch_id)

    def _run_batch(self, batch: _Batch, unique: Dict[str, ExperimentSpec]) -> None:
        """Execute a batch: claim cold keys, run them through a SweepRunner,
        and wait out keys another process is already computing."""
        claimed: List[str] = []
        try:
            leaders: List[ExperimentSpec] = []
            waiters: List[Tuple[str, ExperimentSpec]] = []
            for key, spec in unique.items():
                if self.store.peek(spec) is not None:
                    leaders.append(spec)  # warm: runner serves it from the store
                elif not kind_cacheable(spec.kind) or self.registry.claim(key):
                    leaders.append(spec)
                    if kind_cacheable(spec.kind):
                        claimed.append(key)
                else:
                    waiters.append((key, spec))

            def progress(completed: int, total: int, result: RunResult) -> None:
                key = self.store.cache_key(result.spec)
                if result.error is not None:
                    # The point crashed, hung past the timeout, or raised —
                    # every retry exhausted.  Release the key as failed so
                    # cross-process waiters re-claim instead of parking, and
                    # report it; sibling points proceed untouched.
                    if key in claimed:
                        self.registry.fail(key, RuntimeError(result.error))
                        claimed.remove(key)
                    self.bump("runs_started")
                    self.bump("run_errors")
                    self.bump("failed_points")
                    batch.record(_point_event(key, result))
                    return
                if key in claimed:
                    self.registry.complete(key, result)
                    claimed.remove(key)
                if result.cached:
                    self.bump("store_served")
                else:
                    self.bump("runs_started")
                    self.bump("runs_completed")
                batch.record(_point_event(key, result))

            if leaders:
                runner = SweepRunner(
                    jobs=self.jobs,
                    cache_dir=self.store,
                    progress=progress,
                    point_timeout_s=self.point_timeout_s,
                    max_retries=self.max_retries,
                )
                runner.run(leaders)
            for key, spec in waiters:
                result = self.registry.wait(key, fetch=lambda s=spec: self.store.peek(s))
                if result is None:
                    # The other process's leader died: run it ourselves.
                    result, _ = self.registry.run_or_wait(
                        key,
                        compute=lambda s=spec: self._simulate(s),
                        fetch=lambda s=spec: self.store.peek(s),
                    )
                else:
                    self.bump("dedup_served")
                batch.record(_point_event(key, result))
            batch.finish()
        except Exception as exc:  # surfaced through the progress endpoints
            for key in claimed:
                self.registry.fail(key, exc)
            self.bump("run_errors")
            batch.finish(error=f"{type(exc).__name__}: {exc}")

    # ------------------------------------------------------------------
    # Graceful shutdown
    # ------------------------------------------------------------------
    def drain(self, grace_s: float = 30.0) -> Dict[str, Any]:
        """Stop accepting work, wait out running batches, release locks.

        The SIGTERM path: new ``POST /run``/``POST /batch`` requests are
        refused with 503 the moment draining starts; batches already
        running get up to ``grace_s`` seconds to finish; any key this
        process still leads afterwards is failed (removing its ``.lock``
        so cross-process waiters re-claim immediately rather than timing
        out against a dead pid).  Returns a small report for logging.
        """
        self.draining = True
        deadline = time.monotonic() + max(0.0, grace_s)
        while time.monotonic() < deadline:
            with self._batch_lock:
                active = [b for b in self._batches.values() if not b.done]
            if not active:
                break
            for batch in active:
                with batch.cond:
                    budget = deadline - time.monotonic()
                    if budget <= 0:
                        break
                    if not batch.done:
                        batch.cond.wait(min(0.25, budget))
        with self._batch_lock:
            unfinished = sum(1 for b in self._batches.values() if not b.done)
        released = self.registry.release_all(RuntimeError("service shutting down"))
        return {"unfinished_batches": unfinished, "released_locks": released}

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        with self._batch_lock:
            batches = {
                "submitted": self.counters["batches"],  # repro: allow[STATKEY] service request counter, produced dynamically via bump()
                "active": sum(1 for b in self._batches.values() if not b.done),
            }
        store = self.store.stats()
        dedup = self.registry.stats()
        with self._counter_lock:
            service = dict(self.counters)
        return {
            "uptime_s": time.time() - self.started,
            "jobs": self.jobs,
            "draining": self.draining,
            "point_timeout_s": self.point_timeout_s,
            # Headline counters, flattened for quick scraping.
            "hits": store["hits"],
            "misses": store["misses"],
            "evictions": store["evictions"],
            "deduped": dedup["deduped"],
            "store": store,
            "dedup": dedup,
            "service": service,
            "batches": batches,
        }


def _point_event(key: str, result: RunResult) -> Dict[str, Any]:
    event = {
        "key": key,
        "kind": result.spec.kind,
        "config": result.spec.config,
        "describe": result.spec.describe(),
        "cached": result.cached,
        "elapsed_s": result.elapsed_s,
    }
    if result.error is not None:
        event["failed"] = True
        event["error"] = result.error
    return event


def _etag_matches(header: Optional[str], etag: str) -> bool:
    if header is None:
        return False
    if header.strip() == "*":
        return True
    for candidate in header.split(","):
        candidate = candidate.strip()
        if candidate.startswith("W/"):
            candidate = candidate[2:]
        if candidate.strip('"') == etag:
            return True
    return False


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes requests into the bound :class:`ExperimentService`."""

    service: ExperimentService  # bound by make_server()
    protocol_version = "HTTP/1.1"
    server_version = "repro-service/1.0"

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:
        if self.service.verbose:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _send_json(
        self, code: int, payload: Any, headers: Optional[Dict[str, str]] = None
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send_bytes(code, body, headers)

    def _send_bytes(
        self, code: int, body: bytes, headers: Optional[Dict[str, str]] = None
    ) -> None:
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, code: int, message: str) -> None:
        self._send_json(code, {"error": message})

    def _read_body(self) -> Optional[Any]:
        length = self.headers.get("Content-Length")
        if length is None:
            self._send_error_json(411, "Content-Length required")
            return None
        try:
            raw = self.rfile.read(int(length))
            return json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self._send_error_json(400, "request body is not valid JSON")
            return None

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        self.service.bump("requests")
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if url.path in ("/stats", "/stats/"):
                self._send_json(200, self.service.stats())
            elif url.path in ("/", "/healthz"):
                self._send_json(200, {"status": "ok", "uptime_s": time.time() - self.service.started})
            elif len(parts) == 2 and parts[0] == "result":
                self._get_result(parts[1])
            elif len(parts) == 2 and parts[0] == "batch":
                self._get_batch(parts[1])
            elif len(parts) == 3 and parts[0] == "batch" and parts[2] == "stream":
                self._stream_batch(parts[1])
            else:
                self._send_error_json(404, f"no such endpoint: GET {url.path}")
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    def do_POST(self) -> None:  # noqa: N802
        self.service.bump("requests")
        url = urlparse(self.path)
        try:
            if url.path in ("/run", "/run/"):
                self._post_run(url)
            elif url.path in ("/batch", "/batch/"):
                self._post_batch()
            else:
                self._send_error_json(404, f"no such endpoint: POST {url.path}")
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def _get_result(self, key: str) -> None:
        if not _KEY_RE.match(key):
            self._send_error_json(400, "result keys are 64 hex characters")
            return
        try:
            entry = self.service.store.read_entry(key)
        except CorruptEntryError as exc:
            # The entry was torn on disk; it has been quarantined, so a
            # retry recomputes the point instead of re-reading garbage.
            self._send_json(503, {"error": str(exc)}, {"Retry-After": "1"})
            return
        if entry is not None:
            data, etag = entry
            if _etag_matches(self.headers.get("If-None-Match"), etag):
                self.service.bump("responses_304")
                self.send_response(304)
                self.send_header("ETag", f'"{etag}"')
                self.send_header("Content-Length", "0")
                self.end_headers()
                return
            self._send_bytes(200, data, {"ETag": f'"{etag}"', "Cache-Control": "max-age=0, must-revalidate"})
            return
        if self.service.registry.in_flight(key):
            self._send_json(202, {"status": "running", "key": key})
            return
        self._send_error_json(404, f"no result for key {key[:12]}…")

    def _post_run(self, url: Any) -> None:
        body = self._read_body()
        if body is None:
            return
        if self.service.draining:
            self._send_json(503, {"error": "service is draining"}, {"Retry-After": "5"})
            return
        self.service.bump("run_requests")
        try:
            spec = self.service.parse_spec(body)
        except (SpecError, TaxonomyError, TypeError) as exc:
            self._send_error_json(400, f"invalid spec: {exc}")
            return
        query = parse_qs(url.query)
        wait = query.get("wait", ["1"])[0].lower() not in ("0", "false", "no")
        if not kind_cacheable(spec.kind):
            # Wall-clock measurements are never stored or deduplicated
            # (serving a memo would report stale throughput): run inline.
            if not wait:
                self._send_error_json(
                    400, f"{spec.kind} (wall-clock) specs cannot run asynchronously"
                )
                return
            self.service.bump("runs_started")
            try:
                if self.service.guarded:
                    result, _ = run_point_guarded(
                        spec,
                        timeout_s=self.service.point_timeout_s,
                        max_retries=self.service.max_retries,
                    )
                    if result.error is not None:
                        if "timed out" in result.error:
                            raise PointTimeoutError(result.error)
                        raise RuntimeError(result.error)
                else:
                    result = run_point(spec)
            except PointTimeoutError as exc:
                self.service.bump("run_errors")
                self._send_error_json(504, f"simulation timed out: {exc}")
                return
            except Exception as exc:
                self.service.bump("run_errors")
                self._send_error_json(500, f"simulation failed: {type(exc).__name__}: {exc}")
                return
            self.service.bump("runs_completed")
            self._send_json(200, result.to_dict(), {"X-Repro-Role": "inline"})
            return
        if not wait:
            key = self.service.start_async_run(spec)
            self._send_json(
                202,
                {"status": "running", "key": key, "location": f"/result/{key}"},
                {"Location": f"/result/{key}"},
            )
            return
        try:
            key, role = self.service.run_spec(spec)
        except PointTimeoutError as exc:
            self._send_error_json(504, f"simulation timed out: {exc}")
            return
        except DedupError as exc:
            self._send_error_json(503, str(exc))
            return
        except Exception as exc:
            self._send_error_json(500, f"simulation failed: {type(exc).__name__}: {exc}")
            return
        try:
            entry = self.service.store.read_entry(key)
        except CorruptEntryError as exc:
            self._send_json(503, {"error": str(exc)}, {"Retry-After": "1"})
            return
        if entry is None:
            self._send_error_json(503, "result evicted before it could be served; retry")
            return
        data, etag = entry
        self._send_bytes(
            200, data, {"ETag": f'"{etag}"', "X-Repro-Role": role, "Location": f"/result/{key}"}
        )

    def _post_batch(self) -> None:
        body = self._read_body()
        if body is None:
            return
        if self.service.draining:
            self._send_json(503, {"error": "service is draining"}, {"Retry-After": "5"})
            return
        try:
            points = self.service.parse_sweep(body)
        except (SpecError, TaxonomyError, TypeError) as exc:
            self._send_error_json(400, f"invalid sweep: {exc}")
            return
        if not points:
            self._send_error_json(400, "batch expands to zero points")
            return
        batch = self.service.submit_batch(points)
        self._send_json(
            202,
            {
                "batch": batch.id,
                "points": batch.total,
                "keys": batch.keys,
                "location": f"/batch/{batch.id}",
                "stream": f"/batch/{batch.id}/stream",
            },
            {"Location": f"/batch/{batch.id}"},
        )

    def _get_batch(self, batch_id: str) -> None:
        batch = self.service.get_batch(batch_id)
        if batch is None:
            self._send_error_json(404, f"no such batch {batch_id!r}")
            return
        self._send_json(200, batch.snapshot())

    def _stream_batch(self, batch_id: str) -> None:
        batch = self.service.get_batch(batch_id)
        if batch is None:
            self._send_error_json(404, f"no such batch {batch_id!r}")
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        sent = 0
        while True:
            with batch.cond:
                while len(batch.events) <= sent and not batch.done:
                    batch.cond.wait(0.25)
                events = batch.events[sent:]
                done = batch.done
            sent += len(events)
            for event in events:
                self.wfile.write(json.dumps(event, sort_keys=True).encode("utf-8") + b"\n")
            self.wfile.flush()
            if done:
                self.wfile.write(
                    json.dumps(
                        {"done": True, **batch.snapshot()}, sort_keys=True
                    ).encode("utf-8")
                    + b"\n"
                )
                self.wfile.flush()
                return


def make_server(
    service: ExperimentService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """A ready-to-serve :class:`ThreadingHTTPServer` bound to ``service``.

    ``port=0`` picks an ephemeral port; read it back from
    ``server.server_address``.
    """
    handler = type("BoundServiceHandler", (ServiceHandler,), {"service": service})
    # A deep accept backlog: dedup fan-in means hundreds of identical
    # requests arriving in the same instant is the expected load shape.
    server_cls = type(
        "ServiceServer", (ThreadingHTTPServer,), {"request_queue_size": 128}
    )
    server = server_cls((host, port), handler)
    server.daemon_threads = True
    return server
