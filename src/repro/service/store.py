"""Concurrency-safe content-addressed result store.

:class:`ResultStore` is the serving-grade evolution of
:class:`repro.api.cache.ResultCache` — same interface (``get``/``put``/
``stats``/``clear`` keyed by the spec-hash × DEVICE/FABRIC/PROTOCOL
schema-version key), so a :class:`~repro.api.SweepRunner` accepts either —
plus the properties a store needs once many processes hammer it:

* **Sharded layout.**  Entries live under two-level fan-out directories
  (``ab/cd/<key>.json`` for key ``abcd…``), so a store holding hundreds of
  thousands of results never puts them all in one directory.
* **Atomic writes.**  Entry and metadata files are written tempfile-first
  and ``os.replace``\\ d into place: concurrent writers of the same key race
  safely (each lands a complete entry; last rename wins) and a crashed
  writer never leaves a torn file.
* **Per-entry metadata.**  A ``<key>.meta.json`` sidecar records created /
  last-hit timestamps, a hit counter, the entry's byte size, its strong
  ETag (sha256 of the entry bytes, computed at write time), and a ``pinned``
  flag.  Metadata updates are best-effort read-modify-write — a lost
  last-hit update only makes the LRU ordering approximate, never unsafe.
* **LRU eviction with a byte budget.**  ``budget_bytes`` caps the store;
  :meth:`enforce_budget` evicts least-recently-hit entries until under
  budget.  Pinned (golden) entries are **never** evicted, even if the
  pinned set alone exceeds the budget.
* **Key-addressed reads.**  :meth:`read_entry` serves the raw entry bytes
  plus ETag for a bare key — the HTTP layer's pure read path, which never
  parses a spec or constructs a Machine.
* **Legacy adoption.**  A flat ``<kind>-<key>.json`` cache written by
  :class:`ResultCache` is readable in place; entries migrate to the sharded
  layout on first hit, so pointing the service at an existing
  ``.repro-cache`` serves it warm.
"""

from __future__ import annotations

import glob
import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.api.cache import (
    DEFAULT_CACHE_DIR,
    ResultCache,
    decode_entry,
    encode_entry,
    read_entry,
    write_entry_atomic,
)
from repro.api.results import RunResult
from repro.api.spec import ExperimentSpec

_META_SUFFIX = ".meta.json"

#: Subdirectory corrupt entries are moved into.  The name is deliberately
#: longer than two characters so quarantined files escape the sharded
#: ``??/??/*.json`` walk (and the legacy flat ``*-*.json`` glob never
#: descends into subdirectories) — a quarantined entry is invisible to
#: every read, eviction and gc path until an operator inspects it.
_QUARANTINE_DIR = "quarantine"


class CorruptEntryError(RuntimeError):
    """A store entry exists but holds torn/unparseable JSON.

    Raised by the key-addressed serving path after the offending file has
    been moved to the quarantine directory; the caller should answer 503
    with a short ``Retry-After`` — the next request re-simulates the point
    (the key now reads as a miss) instead of serving garbage bytes.
    """


@dataclass
class EntryInfo:
    """One store entry as seen by the admin/eviction walks."""

    key: str
    path: str
    size: int
    kind: str = "?"
    created: float = 0.0
    last_hit: float = 0.0
    hits: int = 0
    pinned: bool = False
    etag: str = ""
    #: "ok" | "stale" (old schema/simulator revision) | "corrupt"
    state: str = "ok"
    legacy: bool = False


class ResultStore(ResultCache):
    """Sharded, metadata-tracked, budget-evicted result store.

    Parameters
    ----------
    directory:
        Store root.  May point at a legacy flat :class:`ResultCache`
        directory — its entries are adopted.
    budget_bytes:
        Byte budget for LRU eviction, or ``None`` for unbounded.  Workers
        inside a sweep pass ``None`` and let the owning process enforce the
        budget once per sweep.
    """

    def __init__(self, directory: str = DEFAULT_CACHE_DIR, budget_bytes: Optional[int] = None):
        super().__init__(directory)
        self.budget_bytes = budget_bytes
        self.evictions = 0
        self.evicted_bytes = 0
        self.quarantined = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def path_for_key(self, key: str) -> str:
        """Sharded entry path: ``<root>/<k[:2]>/<k[2:4]>/<key>.json``."""
        return os.path.join(self.directory, key[:2], key[2:4], f"{key}.json")

    def path_for(self, spec: ExperimentSpec) -> str:
        return self.path_for_key(self.cache_key(spec))

    def meta_path_for_key(self, key: str) -> str:
        return os.path.join(self.directory, key[:2], key[2:4], f"{key}{_META_SUFFIX}")

    def _legacy_path(self, key: str) -> Optional[str]:
        """A flat ``<kind>-<key>.json`` entry left by :class:`ResultCache`."""
        matches = glob.glob(os.path.join(self.directory, f"*-{key}.json"))
        return matches[0] if matches else None

    @property
    def quarantine_dir(self) -> str:
        return os.path.join(self.directory, _QUARANTINE_DIR)

    # ------------------------------------------------------------------
    # Quarantine
    # ------------------------------------------------------------------
    def quarantine(self, key: str, path: Optional[str] = None) -> bool:
        """Move a corrupt entry (and its sidecar) out of the serving tree.

        Quarantined files keep their names under ``quarantine/`` for
        post-mortem inspection but are invisible to every read path, so the
        key immediately reads as a miss and gets recomputed.  Returns True
        if an entry file was actually moved.
        """
        path = path or self.path_for_key(key)
        os.makedirs(self.quarantine_dir, exist_ok=True)
        moved = False
        for victim in (path, self.meta_path_for_key(key)):
            try:
                os.replace(victim, os.path.join(self.quarantine_dir, os.path.basename(victim)))
                moved = moved or not victim.endswith(_META_SUFFIX)
            except OSError:
                continue
        if moved:
            with self._lock:
                self.quarantined += 1
        return moved

    def quarantine_count(self) -> int:
        """Entries currently sitting in the quarantine directory."""
        return len(
            [
                name
                for name in glob.glob(os.path.join(self.quarantine_dir, "*.json"))
                if not name.endswith(_META_SUFFIX)
            ]
        )

    # ------------------------------------------------------------------
    # The ResultCache interface
    # ------------------------------------------------------------------
    def get(self, spec: ExperimentSpec) -> Optional[RunResult]:
        key = self.cache_key(spec)
        payload = read_entry(self.path_for_key(key))
        migrated_from = None
        if payload is None:
            legacy = self._legacy_path(key)
            if legacy is not None:
                payload = read_entry(legacy)
                migrated_from = legacy
        result = decode_entry(payload, spec) if payload is not None else None
        if result is None:
            with self._lock:
                self.misses += 1
            return None
        if migrated_from is not None:
            # Adopt the legacy flat entry into the sharded layout.
            data = write_entry_atomic(self.path_for_key(key), payload)
            self._write_meta(key, result.spec.kind, data, preserve=True)
            try:
                os.unlink(migrated_from)
            except OSError:
                pass
        self._touch(key)
        with self._lock:
            self.hits += 1
        result.cached = True
        return result

    def peek(self, spec: ExperimentSpec) -> Optional[RunResult]:
        """Like :meth:`get` but counter- and metadata-neutral.

        Dedup waiters poll this while a leader runs; a poll loop must not
        inflate miss counters or burn last-hit updates.
        """
        key = self.cache_key(spec)
        payload = read_entry(self.path_for_key(key))
        if payload is None:
            legacy = self._legacy_path(key)
            if legacy is not None:
                payload = read_entry(legacy)
        result = decode_entry(payload, spec) if payload is not None else None
        if result is not None:
            result.cached = True
        return result

    def put(self, result: RunResult, pinned: Optional[bool] = None) -> str:
        key = self.cache_key(result.spec)
        path = self.path_for_key(key)
        data = write_entry_atomic(path, encode_entry(result))
        self._write_meta(key, result.spec.kind, data, preserve=True, pinned=pinned)
        with self._lock:
            self.stores += 1
        if self.budget_bytes is not None:
            self.enforce_budget()
        return path

    def clear(self) -> int:
        """Remove every entry (sharded and legacy flat); returns the count."""
        removed = 0
        for info in self.entries(include_invalid=True):
            try:
                os.unlink(info.path)
                removed += 1
            except OSError:
                continue
            self._unlink_meta(info.key)
        return removed

    def stats(self) -> Dict[str, int]:
        entries, total, pinned = self._usage()
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "evicted_bytes": self.evicted_bytes,
            "quarantined": self.quarantined,
            "entries": entries,
            "bytes": total,
            "pinned": pinned,
        }

    # ------------------------------------------------------------------
    # Key-addressed read path (no spec, no Machine)
    # ------------------------------------------------------------------
    def read_entry(self, key: str) -> Optional[Tuple[bytes, str]]:
        """The raw entry bytes and strong ETag for ``key``, or ``None``.

        This is the serving read path: one file read plus a JSON
        well-formedness check (no result decode, no spec validation, and
        definitely no Machine construction).  A torn entry is moved to
        quarantine and surfaces as :class:`CorruptEntryError` so the HTTP
        layer can answer 503 instead of shipping garbage bytes.
        """
        path = self.path_for_key(key)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            legacy = self._legacy_path(key)
            if legacy is None:
                return None
            path = legacy
            try:
                with open(legacy, "rb") as handle:
                    data = handle.read()
            except OSError:
                return None
        try:
            json.loads(data)
        except ValueError:
            self.quarantine(key, path)
            raise CorruptEntryError(f"store entry {key[:12]}… is corrupt; quarantined")
        meta = self.read_meta(key)
        etag = meta.get("etag") or hashlib.sha256(data).hexdigest()
        self._touch(key)
        return data, etag

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    def read_meta(self, key: str) -> Dict:
        """The sidecar metadata for ``key``; ``{}`` when missing or damaged.

        Sidecars are advisory (they order eviction and carry the ETag), so a
        torn or wrong-shaped one must never take down a read path: anything
        that is not a JSON object degrades to empty metadata.
        """
        meta = read_entry(self.meta_path_for_key(key))
        return meta if isinstance(meta, dict) else {}

    def _write_meta(
        self,
        key: str,
        kind: str,
        data: bytes,
        preserve: bool = False,
        pinned: Optional[bool] = None,
    ) -> None:
        now = time.time()
        old = self.read_meta(key) if preserve else {}
        meta = {
            "key": key,
            "kind": kind,
            "created": old.get("created", now),
            "last_hit": old.get("last_hit", now),
            "hits": old.get("hits", 0),
            "pinned": old.get("pinned", False) if pinned is None else bool(pinned),
            "size": len(data),
            "etag": hashlib.sha256(data).hexdigest(),
        }
        write_entry_atomic(self.meta_path_for_key(key), meta)

    def _touch(self, key: str) -> None:
        """Best-effort last-hit bump; losing a racing update is harmless."""
        path = self.meta_path_for_key(key)
        meta = read_entry(path)
        if not isinstance(meta, dict):
            return
        meta["last_hit"] = time.time()
        meta["hits"] = int(meta.get("hits", 0)) + 1
        try:
            write_entry_atomic(path, meta)
        except OSError:
            pass

    def _unlink_meta(self, key: str) -> None:
        try:
            os.unlink(self.meta_path_for_key(key))
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Pinning
    # ------------------------------------------------------------------
    def pin(self, key: str, pinned: bool = True) -> bool:
        """Mark the entry as golden (never evicted); False if no such entry."""
        path = self.path_for_key(key)
        if not os.path.exists(path):
            legacy = self._legacy_path(key)
            if legacy is None:
                return False
            # Pins need metadata: adopt the legacy entry first.
            payload = read_entry(legacy)
            if payload is None:
                return False
            data = write_entry_atomic(path, payload)
            self._write_meta(key, str(payload.get("spec", {}).get("kind", "?")), data)
            try:
                os.unlink(legacy)
            except OSError:
                pass
        meta = self.read_meta(key)
        if not meta:
            with open(path, "rb") as handle:
                self._write_meta(key, "?", handle.read())
            meta = self.read_meta(key)
        meta["pinned"] = bool(pinned)
        write_entry_atomic(self.meta_path_for_key(key), meta)
        return True

    def resolve_key(self, prefix: str) -> List[str]:
        """Full keys matching a (possibly abbreviated) hex key prefix."""
        return sorted(
            info.key
            for info in self.entries(include_invalid=True)
            if info.key.startswith(prefix)
        )

    # ------------------------------------------------------------------
    # Walks, eviction, gc
    # ------------------------------------------------------------------
    def entries(self, include_invalid: bool = False) -> Iterator[EntryInfo]:
        """Every entry in the store (sharded and legacy flat).

        With ``include_invalid`` the walk also yields entries classified
        ``corrupt`` (unreadable/torn JSON) or ``stale`` (written under an
        old schema or simulator revision); by default only ``ok`` entries.
        """
        seen = set()
        for path in glob.glob(os.path.join(self.directory, "??", "??", "*.json")):
            name = os.path.basename(path)
            if name.endswith(_META_SUFFIX):
                continue
            key = name[: -len(".json")]
            seen.add(key)
            info = self._classify(key, path, legacy=False)
            if include_invalid or info.state == "ok":
                yield info
        for path in glob.glob(os.path.join(self.directory, "*-*.json")):
            key = os.path.basename(path)[: -len(".json")].rsplit("-", 1)[-1]
            if key in seen:
                continue
            info = self._classify(key, path, legacy=True)
            if include_invalid or info.state == "ok":
                yield info

    def _classify(self, key: str, path: str, legacy: bool) -> EntryInfo:
        try:
            size = os.path.getsize(path)
        except OSError:
            size = 0
        payload = read_entry(path)
        result = decode_entry(payload) if payload is not None else None
        if payload is None:
            state = "corrupt"
        elif result is None:
            # Parsed JSON that does not decode under the live schema: either
            # the wrong shape entirely (corrupt) or an old-revision entry.
            try:
                RunResult.from_dict(payload)
                state = "stale"
            except (ValueError, KeyError, TypeError, AttributeError):
                state = "corrupt"
        else:
            state = "ok"
        meta = self.read_meta(key)
        mtime = 0.0
        try:
            mtime = os.path.getmtime(path)
        except OSError:
            pass
        kind = "?"
        if isinstance(payload, dict):
            spec = payload.get("spec")
            if isinstance(spec, dict):
                kind = str(spec.get("kind", "?"))
        return EntryInfo(
            key=key,
            path=path,
            size=size,
            kind=meta.get("kind", kind) if meta else kind,
            created=float(meta.get("created", mtime)) if meta else mtime,
            last_hit=float(meta.get("last_hit", mtime)) if meta else mtime,
            hits=int(meta.get("hits", 0)) if meta else 0,
            pinned=bool(meta.get("pinned", False)) if meta else False,
            etag=str(meta.get("etag", "")) if meta else "",
            state=state,
            legacy=legacy,
        )

    def _usage(self) -> Tuple[int, int, int]:
        entries = total = pinned = 0
        for info in self.entries(include_invalid=True):
            entries += 1
            total += info.size
            if info.pinned:
                pinned += 1
        return entries, total, pinned

    def total_bytes(self) -> int:
        return self._usage()[1]

    def enforce_budget(self, budget_bytes: Optional[int] = None) -> int:
        """Evict least-recently-hit unpinned entries until under budget.

        Returns the number of entries evicted.  Pinned entries are never
        touched: a store whose pinned set exceeds the budget simply stays
        over budget.
        """
        budget = self.budget_bytes if budget_bytes is None else budget_bytes
        if budget is None:
            return 0
        with self._lock:
            infos = list(self.entries(include_invalid=True))
            total = sum(info.size for info in infos)
            if total <= budget:
                return 0
            victims = sorted(
                (info for info in infos if not info.pinned),
                key=lambda info: info.last_hit,
            )
            evicted = 0
            for info in victims:
                if total <= budget:
                    break
                try:
                    os.unlink(info.path)
                except OSError:
                    continue
                self._unlink_meta(info.key)
                total -= info.size
                evicted += 1
                self.evicted_bytes += info.size
            self.evictions += evicted
            return evicted

    def gc(self, dry_run: bool = False) -> Dict[str, int]:
        """Prune corrupt and stale-schema entries (plus orphaned sidecars).

        Today those linger as dead files that every reader re-classifies as
        a miss; gc reclaims them.  Returns a report of what was (or, with
        ``dry_run``, would be) removed.
        """
        report = {
            "stale": 0,
            "corrupt": 0,
            "orphan_meta": 0,
            "tmp": 0,
            "bytes": 0,
            "quarantined": self.quarantine_count(),
        }
        live = set()
        for info in self.entries(include_invalid=True):
            if info.state == "ok":
                live.add(info.key)
                continue
            report[info.state] += 1
            report["bytes"] += info.size
            if not dry_run:
                try:
                    os.unlink(info.path)
                except OSError:
                    pass
                self._unlink_meta(info.key)
        for path in glob.glob(os.path.join(self.directory, "??", "??", f"*{_META_SUFFIX}")):
            key = os.path.basename(path)[: -len(_META_SUFFIX)]
            if key not in live:
                report["orphan_meta"] += 1
                if not dry_run:
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
        for pattern in ("*.tmp", os.path.join("??", "??", "*.tmp")):
            for path in glob.glob(os.path.join(self.directory, pattern)):
                report["tmp"] += 1
                if not dry_run:
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
        return report

    def __repr__(self) -> str:
        return (
            f"<ResultStore {self.directory!r} hits={self.hits} misses={self.misses} "
            f"stores={self.stores} evictions={self.evictions}>"
        )
