"""In-flight-run deduplication: N identical requests, one simulation.

:class:`InFlightRegistry` arbitrates concurrent requests for the same
store key so that exactly one caller (the *leader*) runs the simulation and
every other caller (the *followers*) blocks until the leader's result is
available, then reads it from the store.  It layers two mechanisms:

* **In-process** — a ``key -> _Flight`` table guarded by a mutex.  The
  first thread to claim a key creates the flight; later threads wait on its
  :class:`threading.Event` and receive the leader's result (or exception)
  directly, with no filesystem traffic.
* **Cross-process** — a lock-file + done-marker protocol under
  ``<directory>/``:

  1. The leader atomically creates ``<key>.lock`` (``O_CREAT | O_EXCL``)
     recording its pid and start time.
  2. On success it writes the result to the store, drops a ``<key>.done``
     marker, then removes the lock (marker **before** lock release, so a
     waiter that sees the lock vanish can distinguish "completed" from
     "leader died").  On failure it drops ``<key>.fail`` with the error.
  3. A process that loses the ``O_EXCL`` race polls: result appears in the
     store → done; ``.fail`` marker → raise the leader's error; lock
     vanished with neither → the leader crashed, so the waiter re-claims.
     Locks whose owner pid is dead (or older than ``stale_after``) are
     broken.

  Markers are janitored opportunistically once they are older than
  ``stale_after``.

The store entry itself is the payload; the markers only carry protocol
state, so the whole thing works over any shared filesystem.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Callable, Dict, Optional, Tuple

from repro.api.results import RunResult


class DedupError(RuntimeError):
    """A leader failed (or vanished) and no result can be produced."""


class _Flight:
    """One in-flight key inside this process."""

    __slots__ = ("event", "result", "error", "remote")

    def __init__(self, remote: bool = False):
        self.event = threading.Event()
        self.result: Optional[RunResult] = None
        self.error: Optional[BaseException] = None
        #: True when the leader is another *process*; local waiters then
        #: poll the filesystem protocol instead of a thread event.
        self.remote = remote


class InFlightRegistry:
    """Cross-thread and cross-process exactly-one-computation registry."""

    def __init__(
        self,
        directory: str,
        poll_interval: float = 0.02,
        stale_after: float = 600.0,
    ):
        self.directory = directory
        self.poll_interval = poll_interval
        self.stale_after = stale_after
        self._mutex = threading.Lock()
        self._flights: Dict[str, _Flight] = {}
        #: Keys this process currently leads (claimed, not yet completed or
        #: failed).  A graceful shutdown walks this via :meth:`release_all`
        #: so no ``.lock`` file outlives the process.
        self._owned: set = set()
        self.leaders = 0
        self.followers = 0
        self.remote_followers = 0
        self.lock_breaks = 0
        self.failures = 0

    # ------------------------------------------------------------------
    # Marker paths
    # ------------------------------------------------------------------
    def _lock_path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.lock")

    def _done_path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.done")

    def _fail_path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.fail")

    @staticmethod
    def _unlink(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    def _sweep_markers(self, key: str) -> None:
        """Remove completion markers from a previous run of this key."""
        for path in (self._done_path(key), self._fail_path(key)):
            self._unlink(path)

    def _lock_is_stale(self, path: str) -> bool:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                owner = json.load(handle)
        except (OSError, ValueError):
            # Unreadable lock: stale only once old enough (it may be
            # mid-write by a racing claimant).
            try:
                return time.time() - os.path.getmtime(path) > self.stale_after
            except OSError:
                return False
        created = float(owner.get("created", 0.0))
        if time.time() - created > self.stale_after:
            return True
        pid = int(owner.get("pid", 0))
        if pid and owner.get("host") == os.uname().nodename:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                return True
            except PermissionError:
                pass
        return False

    # ------------------------------------------------------------------
    # Claim / complete / fail / wait
    # ------------------------------------------------------------------
    def claim(self, key: str) -> bool:
        """True if the caller is now the leader for ``key``.

        False means another thread or process already owns the key; recover
        the result with :meth:`wait`.
        """
        with self._mutex:
            flight = self._flights.get(key)
            if flight is not None:
                self.followers += 1 if not flight.remote else 0
                self.remote_followers += 1 if flight.remote else 0
                return False
            # Reserve locally before touching the filesystem so same-process
            # threads serialise on the mutex, not on O_EXCL.
            self._flights[key] = _Flight()
        if self._claim_lockfile(key):
            with self._mutex:
                self._owned.add(key)
            self.leaders += 1
            return True
        with self._mutex:
            self._flights[key].remote = True
        self.remote_followers += 1
        return False

    def _claim_lockfile(self, key: str) -> bool:
        os.makedirs(self.directory, exist_ok=True)
        path = self._lock_path(key)
        payload = json.dumps(
            {"pid": os.getpid(), "host": os.uname().nodename, "created": time.time()}
        ).encode("ascii")
        for attempt in (0, 1):
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if attempt == 0 and self._lock_is_stale(path):
                    self._unlink(path)
                    self.lock_breaks += 1
                    continue
                return False
            try:
                os.write(fd, payload)
            finally:
                os.close(fd)
            self._sweep_markers(key)
            return True
        return False

    def complete(self, key: str, result: Optional[RunResult] = None) -> None:
        """Leader: publish success and wake every waiter."""
        try:
            with open(self._done_path(key), "w", encoding="utf-8") as handle:
                json.dump({"completed": time.time(), "pid": os.getpid()}, handle)
        except OSError:
            pass
        self._unlink(self._lock_path(key))
        with self._mutex:
            self._owned.discard(key)
            flight = self._flights.pop(key, None)
        if flight is not None:
            flight.result = result
            flight.event.set()

    def fail(self, key: str, error: BaseException) -> None:
        """Leader: publish failure and wake every waiter with the error."""
        self.failures += 1
        try:
            with open(self._fail_path(key), "w", encoding="utf-8") as handle:
                json.dump(
                    {"failed": time.time(), "pid": os.getpid(), "error": repr(error)},
                    handle,
                )
        except OSError:
            pass
        self._unlink(self._lock_path(key))
        with self._mutex:
            self._owned.discard(key)
            flight = self._flights.pop(key, None)
        if flight is not None:
            flight.error = error
            flight.event.set()

    def owned_keys(self) -> list:
        """Keys this process currently leads (snapshot)."""
        with self._mutex:
            return sorted(self._owned)

    def release_all(self, error: Optional[BaseException] = None) -> int:
        """Fail every key this process still leads; returns how many.

        The graceful-shutdown path: a terminating service must not leave
        ``.lock`` files behind for other processes to poll against until
        they go stale.  Waiters observe a ``.fail`` marker (or the flight
        error) and re-claim.
        """
        keys = self.owned_keys()
        for key in keys:
            self.fail(key, error or RuntimeError("service shutting down"))
        return len(keys)

    def wait(
        self,
        key: str,
        fetch: Callable[[], Optional[RunResult]],
        timeout: Optional[float] = None,
    ) -> Optional[RunResult]:
        """Follower: block until the in-flight run for ``key`` resolves.

        ``fetch`` re-reads the store (it is the done payload).  Returns the
        result, or ``None`` if the leader vanished without completing — the
        caller should then re-claim.  Raises :class:`DedupError` if the
        leader published a failure.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._mutex:
            flight = self._flights.get(key)
        if flight is not None and not flight.remote:
            budget = None if deadline is None else max(0.0, deadline - time.monotonic())
            if not flight.event.wait(budget):
                raise TimeoutError(f"in-flight wait for {key[:12]}… timed out")
            if flight.error is not None:
                raise DedupError(f"in-flight leader failed: {flight.error!r}") from flight.error
            return flight.result if flight.result is not None else fetch()
        # Remote leader (or no local flight at all): poll the protocol.
        lock = self._lock_path(key)
        while True:
            if os.path.exists(self._fail_path(key)):
                raise DedupError(f"in-flight leader for {key[:12]}… reported failure")
            result = fetch()
            if result is not None:
                self._resolve_remote(key, result)
                return result
            if not os.path.exists(lock):
                # Lock gone: completed (entry may still be landing) or dead.
                result = fetch()
                if result is None and os.path.exists(self._done_path(key)):
                    # Completed but already evicted from the store between
                    # the leader's put and our fetch; one more read, then
                    # give up and let the caller recompute.
                    result = fetch()
                if result is not None:
                    self._resolve_remote(key, result)
                self._drop_remote(key)
                return result
            if self._lock_is_stale(lock):
                # The leader died *while we were waiting* (its pid is gone or
                # the lock aged out).  Checking only at claim time would park
                # every follower here until the timeout; break the lock now
                # and hand control back so the caller re-claims.
                self._unlink(lock)
                self.lock_breaks += 1
                self._drop_remote(key)
                return fetch()
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(f"in-flight wait for {key[:12]}… timed out")
            time.sleep(self.poll_interval)

    def _resolve_remote(self, key: str, result: RunResult) -> None:
        with self._mutex:
            flight = self._flights.pop(key, None)
        if flight is not None:
            flight.result = result
            flight.event.set()

    def _drop_remote(self, key: str) -> None:
        with self._mutex:
            flight = self._flights.pop(key, None)
        if flight is not None:
            flight.event.set()

    # ------------------------------------------------------------------
    # The one-call wrapper
    # ------------------------------------------------------------------
    def run_or_wait(
        self,
        key: str,
        compute: Callable[[], RunResult],
        fetch: Callable[[], Optional[RunResult]],
        timeout: Optional[float] = None,
        max_attempts: int = 3,
    ) -> Tuple[RunResult, str]:
        """Produce the result for ``key`` exactly once across all callers.

        Returns ``(result, role)`` with role ``"leader"``, ``"follower"``
        (same process) or ``"remote"`` (another process computed it).  A
        waiter whose leader dies re-claims, so the call only fails if every
        attempt's leader fails.
        """
        for _ in range(max_attempts):
            cached = fetch()
            if cached is not None:
                return cached, "store"
            if self.claim(key):
                try:
                    result = compute()
                except BaseException as exc:
                    self.fail(key, exc)
                    raise
                self.complete(key, result)
                return result, "leader"
            with self._mutex:
                flight = self._flights.get(key)
            remote = flight is None or flight.remote
            result = self.wait(key, fetch, timeout=timeout)
            if result is not None:
                return result, ("remote" if remote else "follower")
            # Leader vanished without a result: loop and try to lead.
        raise DedupError(f"no leader produced a result for {key[:12]}…")

    # ------------------------------------------------------------------
    def in_flight(self, key: str) -> bool:
        with self._mutex:
            if key in self._flights:
                return True
        return os.path.exists(self._lock_path(key))

    def stats(self) -> Dict[str, int]:
        with self._mutex:
            active = len(self._flights)
        return {
            "in_flight": active,
            "leaders": self.leaders,
            "followers": self.followers,
            "remote_followers": self.remote_followers,
            "deduped": self.followers + self.remote_followers,
            "lock_breaks": self.lock_breaks,
            "failures": self.failures,
        }
