"""repro — reproduction of "Coherent Network Interfaces for Fine-Grain
Communication" (Mukherjee, Falsafi, Hill & Wood, ISCA 1996).

The package is organised as:

* :mod:`repro.sim` — discrete-event simulation kernel,
* :mod:`repro.common` — machine parameters (Table 2), address map, enums,
* :mod:`repro.coherence` — MOESI snooping caches, buses, main memory,
* :mod:`repro.network` — pluggable interconnect fabrics (the paper's ideal
  fixed-latency model plus crossbar/mesh/torus with contention) and
  sliding-window flow control,
* :mod:`repro.ni` — the composable network-interface kit: port primitives
  (:mod:`repro.ni.primitives`), a generative device registry
  (:mod:`repro.ni.registry`) that builds *any* legal taxonomy point, and
  the five evaluated devices (NI2w, CNI4, CNI16Q, CNI512Q, CNI16Qm) as
  pinned compositions,
* :mod:`repro.node` — processor, node and machine assembly,
* :mod:`repro.msglayer` — Tempest-like active-message layer,
* :mod:`repro.apps` — the five macrobenchmark communication skeletons,
* :mod:`repro.experiments` — micro/macro benchmarks and figure/table
  regeneration,
* :mod:`repro.api` — the unified experiment layer: declarative
  :class:`~repro.api.ExperimentSpec`/:class:`~repro.api.SweepSpec` sweeps,
  a parallel, caching :class:`~repro.api.SweepRunner`, and structured
  :class:`~repro.api.ResultSet` results.
"""

from repro.api import (
    ExperimentSpec,
    ResultSet,
    RunResult,
    SweepRunner,
    SweepSpec,
    run_point,
)
from repro.common.params import DEFAULT_PARAMS, MachineParams
from repro.common.types import BusKind
from repro.network import (
    FabricSpec,
    available_fabrics,
    parse_fabric_name,
    register_fabric,
    unregister_fabric,
)
from repro.node.machine import Machine
from repro.node.node import NodeConfig
from repro.ni.registry import DeviceSpec
from repro.ni.taxonomy import (
    EVALUATED_DEVICES,
    available_devices,
    parse_ni_name,
    register_device,
    unregister_device,
)

__version__ = "1.2.0"

__all__ = [
    "MachineParams",
    "DEFAULT_PARAMS",
    "BusKind",
    "Machine",
    "NodeConfig",
    "EVALUATED_DEVICES",
    "parse_ni_name",
    "available_devices",
    "register_device",
    "unregister_device",
    "DeviceSpec",
    "FabricSpec",
    "parse_fabric_name",
    "available_fabrics",
    "register_fabric",
    "unregister_fabric",
    "ExperimentSpec",
    "SweepSpec",
    "SweepRunner",
    "RunResult",
    "ResultSet",
    "run_point",
    "__version__",
]
