"""Record the NI-level message stream of one workload run.

The hook point is each node's ``ni.proc_try_send``: the moment the NI
*accepts* a network message from the processor side.  That stream is
exactly what replay re-issues — it includes every fragment the messaging
layer produced (data, requests, replies, barrier traffic) and excludes
what the wire never carries (local deliveries, hardware acks, elided
spins).  Times are recorded as per-node deltas between accepted sends,
so replay can approximate the original pacing on any target device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from repro.trace.format import write_trace

#: Spec kinds whose runs can be recorded: workload-driven simulations.
RECORDABLE_KINDS = ("macro", "traffic")

#: Cycle budget used when a spec does not pin ``max_cycles``.
DEFAULT_MAX_CYCLES = 2_000_000_000


@dataclass(frozen=True)
class TraceSummary:
    """What one recording produced."""

    path: str
    cycles: int
    messages: int
    payload_bytes: int
    num_nodes: int
    digest: str


def record_trace(spec, path: str) -> TraceSummary:
    """Run ``spec``'s workload once, recording its message stream to
    ``path``.  Returns a :class:`TraceSummary` of what was captured."""
    from repro.api.spec import SpecError
    from repro.apps import create_workload
    from repro.node.machine import Machine

    spec = spec.validate()
    if spec.kind not in RECORDABLE_KINDS:
        raise SpecError(
            f"cannot record kind {spec.kind!r}; recording captures a workload "
            f"run (kinds {RECORDABLE_KINDS})"
        )

    machine = Machine.from_spec(spec)
    num_nodes = len(machine.nodes)
    sim = machine.sim
    events = [[] for _ in range(num_nodes)]
    last_send = [0] * num_nodes
    for node in machine.nodes:
        original = node.ni.proc_try_send

        def recording_send(message, _original=original, _node=node.node_id):
            accepted = yield from _original(message)
            if accepted and not message.is_ack:
                now = sim.now
                events[_node].append(
                    [now - last_send[_node], message.dest, message.payload_bytes]
                )
                last_send[_node] = now
            return accepted

        # Instance-level wrap: only this machine records, and the device
        # model underneath is untouched (timing identical to an unrecorded
        # run — recording is pure observation).
        node.ni.proc_try_send = recording_send

    kwargs = dict(spec.workload_kwargs)
    kwargs.setdefault("seed", spec.resolved_seed())
    workload = create_workload(spec.workload, scale=spec.scale, **kwargs)
    max_cycles = spec.max_cycles if spec.max_cycles is not None else DEFAULT_MAX_CYCLES
    result = workload.run(machine, max_cycles=max_cycles)

    header = write_trace(path, config=_recording_config(spec), events=events)
    return TraceSummary(
        path=path,
        cycles=result.cycles,
        messages=header["messages"],
        payload_bytes=header["payload_bytes"],
        num_nodes=num_nodes,
        digest=header["digest"],
    )


def _recording_config(spec) -> Dict[str, Any]:
    """Provenance stored in the trace header: where the stream came from.

    Informational except for ``num_nodes`` (validated against replay
    specs); replay deliberately accepts any device/bus/fabric target.
    """
    return {
        "kind": spec.kind,
        "workload": spec.workload,
        "scale": spec.scale,
        "seed": spec.resolved_seed(),
        "device": spec.device,
        "bus": spec.bus,
        "snarfing": spec.snarfing,
        "num_nodes": spec.num_nodes,
        "spec_hash": spec.spec_hash(),
    }
