"""Message-level trace record/replay.

Capture one run's NI-level message stream to a compact trace file
(:mod:`repro.trace.record`), then replay it through *any* device x fabric
point (:mod:`repro.trace.replay`) as a cheap sweep accelerator: replay
drives recorded network messages straight through the NI hardware model,
skipping the messaging layer's software path (per-message overhead
cycles, handler dispatch, fragment reassembly, poll loops), so a sweep
over devices and fabrics costs a fraction of fresh simulation while
exercising the identical wire traffic.

Fidelity contract: replaying a trace through the *same* configuration it
was recorded on reproduces the fabric's message and byte counts exactly
(checked in tests and gated in ``benchmarks/bench_traffic.py``).
"""

from repro.trace.format import (
    TRACE_FORMAT,
    TRACE_VERSION,
    TraceError,
    read_header,
    read_trace,
    trace_digest,
    write_trace,
)
from repro.trace.record import RECORDABLE_KINDS, TraceSummary, record_trace
from repro.trace.replay import TraceReplayWorkload, run_replay_point

__all__ = [
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "TraceError",
    "read_header",
    "read_trace",
    "trace_digest",
    "write_trace",
    "RECORDABLE_KINDS",
    "TraceSummary",
    "record_trace",
    "TraceReplayWorkload",
    "run_replay_point",
]
