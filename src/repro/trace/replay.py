"""Replay a recorded message stream through any device x fabric point.

Replay is the sweep accelerator: instead of re-simulating the workload's
software (messaging-layer overhead cycles, handler dispatch, fragment
reassembly, spin loops), each node's program drives the recorded network
messages straight into the NI hardware model — ``proc_try_send`` for the
send side, ``proc_poll`` to consume arrivals — so the wire traffic, the
device's bus/queue behaviour and the fabric contention are all exercised
at a fraction of the event count.

Two pacing modes: ``"recorded"`` (default) re-issues each message at its
recorded inter-send gap, preserving the original burst structure on the
new target; ``"asap"`` drops the gaps and lets backpressure set the pace
(a saturation probe).

Same-config fidelity: the replayed stream *is* the recorded stream, so
``messages_injected`` and ``payload_bytes`` match the trace exactly on
any target that accepts it (asserted in tests, gated in bench_traffic).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Sequence

from repro.apps.registry import register_workload
from repro.apps.workload import Workload
from repro.common.types import NetworkMessage
from repro.node.machine import Machine
from repro.trace.format import read_trace

#: Cycle budget used when a spec does not pin ``max_cycles``.
DEFAULT_MAX_CYCLES = 2_000_000_000

#: Retry delays when the NI refuses a send (window or queue full).  The
#: first retry matches the messaging layer's software cadence; sustained
#: backpressure backs off exponentially so a long-blocked replayer does
#: not burn an uncached status read every 20 cycles (the refusal signal
#: differs per device — window ack vs send-FIFO space — so a bounded
#: probe is the one mechanism that is correct for all of them).
BLOCKED_SEND_BACKOFF_MIN = 20
BLOCKED_SEND_BACKOFF_MAX = 2560

PACING_MODES = ("recorded", "asap")


@register_workload(tags=("trace",))
class TraceReplayWorkload(Workload):
    """Replays a trace file's per-node message streams (see module doc)."""

    name = "replay"
    key_communication = "Recorded stream"
    paper_input = "message-level trace"

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 12345,
        trace: str = "",
        pacing: str = "recorded",
    ):
        super().__init__(scale=scale, seed=seed)
        if not trace:
            raise ValueError("trace replay needs trace=<path to a recorded trace>")
        if pacing not in PACING_MODES:
            raise ValueError(f"unknown pacing {pacing!r}; choose from {PACING_MODES}")
        self.trace = trace
        self.pacing = pacing

    def programs(self, machine: Machine) -> Sequence[Generator]:
        header, events = read_trace(self.trace)
        num_nodes = len(machine.nodes)
        if header["num_nodes"] != num_nodes:
            raise ValueError(
                f"trace {self.trace!r} was recorded on {header['num_nodes']} "
                f"nodes; this machine has {num_nodes}"
            )
        expected = [0] * num_nodes
        for stream in events:
            for _dt, dest, _nbytes in stream:
                expected[dest] += 1
        sim = machine.sim
        paced = self.pacing == "recorded"

        def program(node_id: int, stream: List[List[int]]):
            ni = machine.nodes[node_id].ni
            # Absolute recorded send times: pacing against the original
            # timeline (not the previous *replayed* send) means a late or
            # blocked send never pushes the rest of the schedule — no
            # cumulative drift on slower targets.
            times: List[int] = []
            clock = 0
            for dt, _dest, _nbytes in stream:
                clock += dt
                times.append(clock)
            index = 0
            received = 0
            backoff = BLOCKED_SEND_BACKOFF_MIN
            drained_fires = -1
            pending = None
            while index < len(stream) or received < expected[node_id]:
                # Sampled before draining: the device fires arrival_signal
                # the moment a message becomes pollable, so an unchanged
                # count after an empty drain proves nothing slipped in
                # during the drain's own bus cycles (no lost wake-up).
                fires = ni.arrival_signal.fire_count
                if fires != drained_fires:
                    drained_fires = fires
                    # Drain arrivals: consuming keeps the remote senders'
                    # windows moving, which is the fetch-deadlock avoidance
                    # the messaging layer implements in software.  Skipped
                    # when the fire count says nothing has arrived since
                    # the last drain — an empty poll is a real uncached
                    # bus read on programmed-I/O devices, not free.
                    while True:
                        message = yield from ni.proc_poll()
                        if message is None:
                            break
                        if not message.is_ack:
                            received += 1
                if index < len(stream):
                    if paced and sim.now < times[index]:
                        # Not due yet: sleep straight to the send time in
                        # one event.  Arrivals queue in the NI meanwhile;
                        # the wake-up drain above keeps senders unblocked.
                        yield times[index] - sim.now
                        continue
                    if pending is None:
                        _dt, dest, nbytes = stream[index]
                        pending = NetworkMessage(
                            source=node_id,
                            dest=dest,
                            payload_bytes=nbytes,
                            seq=index,
                        )
                    accepted = yield from ni.proc_try_send(pending)
                    if accepted:
                        index += 1
                        pending = None
                        backoff = BLOCKED_SEND_BACKOFF_MIN
                    else:
                        yield backoff
                        backoff = min(backoff * 2, BLOCKED_SEND_BACKOFF_MAX)
                elif (
                    received < expected[node_id]
                    and ni.arrival_signal.fire_count == fires
                ):
                    # Everything sent; park on the device's arrival signal
                    # until the next message becomes visible (one event per
                    # arrival instead of a poll/backoff spin).  Guarded by
                    # the fire-count bracket: if a message landed mid-drain
                    # we loop and drain again instead of sleeping past it.
                    yield ni.arrival_signal

        return [program(node_id, events[node_id]) for node_id in range(num_nodes)]


def run_replay_point(spec) -> Dict[str, float]:
    """Measure hook for ``kind="replay"`` experiment points.

    Replays ``spec.workload_kwargs['trace']`` on the machine the spec
    describes and reports the fabric counters next to the trace's own
    totals, so fidelity (`network_messages == trace_messages`,
    ``payload_bytes == trace_payload_bytes``) is visible in every result.
    """
    from repro.trace.format import read_header

    machine = Machine.from_spec(spec)
    kwargs = {k: v for k, v in spec.workload_kwargs.items() if k != "seed"}
    workload = TraceReplayWorkload(scale=spec.scale, seed=spec.resolved_seed(), **kwargs)
    max_cycles = spec.max_cycles if spec.max_cycles is not None else DEFAULT_MAX_CYCLES
    result = workload.run(machine, max_cycles=max_cycles)

    header = read_header(spec.workload_kwargs["trace"])
    net = machine.network_stats()
    cycles = float(result.cycles)
    metrics = {
        "cycles": cycles,
        "memory_bus_occupancy": float(result.memory_bus_occupancy),
        "io_bus_occupancy": float(result.io_bus_occupancy),
        "network_messages": float(result.network_messages),
        "messages_delivered": float(net.get("messages_delivered", 0)),
        "payload_bytes": float(net.get("payload_bytes", 0)),
        "trace_messages": float(header["messages"]),
        "trace_payload_bytes": float(header["payload_bytes"]),
    }
    if cycles > 0:
        metrics["messages_per_kcycle"] = 1000.0 * metrics["network_messages"] / cycles
    for key in ("hops", "contention_cycles"):
        if key in net:
            metrics[f"fabric_{key}"] = float(net[key])
    return metrics
