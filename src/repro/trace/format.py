"""Compact on-disk format for message-level traces.

A trace file is one JSON document (gzip-compressed when the path ends in
``.gz``): a small header — format tag, version, recording config, message
and byte totals, and a content digest over the event stream — plus the
per-node event streams themselves.  Each event is a ``[dt, dest, bytes]``
triple: cycles since the node's previous accepted send, destination node,
and payload bytes of one network message.  Delta-encoded times keep the
JSON small and compress extremely well.

The digest is the trace's identity: the replay kind folds it into the
result-store cache key, so two different traces at the same path can
never serve each other's cached results.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import tempfile
from typing import Any, Dict, List, Tuple

TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1

#: Event streams: per node, a list of ``[dt, dest, payload_bytes]``.
Events = List[List[List[int]]]


class TraceError(ValueError):
    """Raised for unreadable, corrupt or incompatible trace files."""


_HEADER_CACHE: Dict[str, Tuple[Tuple[int, int], Dict[str, Any]]] = {}  # repro: allow[MUTSTATE] header memo keyed by (mtime, size), validation re-reads on change


def events_digest(events: Events) -> str:
    """Stable content digest over the event streams."""
    blob = json.dumps(events, separators=(",", ":")).encode("ascii")
    return hashlib.sha256(blob).hexdigest()


def write_trace(path: str, config: Dict[str, Any], events: Events) -> Dict[str, Any]:
    """Serialise a trace atomically; returns the header written."""
    messages = sum(len(stream) for stream in events)
    payload_bytes = sum(event[2] for stream in events for event in stream)
    header = {
        "format": TRACE_FORMAT,
        "version": TRACE_VERSION,
        "num_nodes": len(events),
        "messages": messages,
        "payload_bytes": payload_bytes,
        "digest": events_digest(events),
        "config": dict(config),
    }
    document = dict(header)
    document["events"] = events
    data = json.dumps(document, sort_keys=True, separators=(",", ":")).encode("utf-8")
    if path.endswith(".gz"):
        data = gzip.compress(data, mtime=0)
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    _HEADER_CACHE.pop(os.path.abspath(path), None)
    return header


def _load_document(path: str) -> Dict[str, Any]:
    try:
        with open(path, "rb") as handle:
            data = handle.read()
        if path.endswith(".gz"):
            data = gzip.decompress(data)
        document = json.loads(data.decode("utf-8"))
    except (OSError, ValueError) as exc:
        raise TraceError(f"cannot read trace {path!r}: {exc}") from None
    if not isinstance(document, dict) or document.get("format") != TRACE_FORMAT:
        raise TraceError(f"{path!r} is not a {TRACE_FORMAT} file")
    if document.get("version") != TRACE_VERSION:
        raise TraceError(
            f"{path!r} has trace version {document.get('version')!r}; "
            f"this build reads version {TRACE_VERSION}"
        )
    return document


def _header_of(document: Dict[str, Any]) -> Dict[str, Any]:
    return {key: document[key] for key in (
        "format",
        "version",
        "num_nodes",
        "messages",
        "payload_bytes",
        "digest",
        "config",
    )}


def read_trace(path: str) -> Tuple[Dict[str, Any], Events]:
    """Load and verify a trace; returns ``(header, events)``.

    Structural and integrity problems (wrong node count, digest mismatch)
    raise :class:`TraceError` — a truncated or hand-edited trace must not
    silently replay as something else.
    """
    document = _load_document(path)
    try:
        header = _header_of(document)
        events = document["events"]
    except KeyError as exc:
        raise TraceError(f"{path!r} is missing trace field {exc}") from None
    if not isinstance(events, list) or len(events) != header["num_nodes"]:
        raise TraceError(f"{path!r}: event streams do not match num_nodes")
    if events_digest(events) != header["digest"]:
        raise TraceError(f"{path!r}: event stream does not match its digest")
    return header, events


def read_header(path: str) -> Dict[str, Any]:
    """The trace's header only, memoised on ``(mtime, size)``.

    Validation and cache-key construction call this repeatedly for the
    same file; the memo makes those calls cheap without ever serving a
    stale header after the file changes.
    """
    key = os.path.abspath(path)
    try:
        stat = os.stat(key)
        stamp = (stat.st_mtime_ns, stat.st_size)
    except OSError as exc:
        raise TraceError(f"cannot read trace {path!r}: {exc}") from None
    hit = _HEADER_CACHE.get(key)
    if hit is not None and hit[0] == stamp:
        return dict(hit[1])
    document = _load_document(path)
    try:
        header = _header_of(document)
    except KeyError as exc:
        raise TraceError(f"{path!r} is missing trace field {exc}") from None
    _HEADER_CACHE[key] = (stamp, header)
    return dict(header)


def trace_digest(path: str) -> str:
    """The trace's content digest (replay's cache-key token)."""
    return read_header(path)["digest"]
