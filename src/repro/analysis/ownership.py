"""Static ownership map of the source tree for the partition-safety lint.

The dynamic side of the analyzer resolves *objects* to partitions via
:meth:`repro.node.machine.Machine.partition_map`; this module is the static
mirror: it resolves *modules* (by their path under ``src/repro/``) to the
architectural domain they belong to, so lint rules can scope themselves the
same way the PDES decomposition does:

* ``kernel`` — the simulation kernel and shared value types (``sim/``,
  ``common/``).  Deterministic by construction; wall-clock and RNG are
  banned here.
* ``node`` — code that runs inside one node's partition (``node/``,
  ``ni/``, ``msglayer/``, the coherent cache).  Must never reach into
  another node except through a mediation layer.
* ``mediation`` — the layers that are *allowed* to touch multiple
  partitions: the snooping bus, the home directory and the network fabric.
* ``assembly`` — machine construction/reporting (``node/machine.py``),
  which legitimately iterates over all nodes.
* ``coherence`` — protocol tables and the model checker (the rest of
  ``coherence/``).
* ``harness`` — experiment drivers, workloads, the api layer and this
  analysis package; ordinary Python rules apply, simulator-idiom rules
  mostly do not.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterator, Tuple

#: Root of the linted package, resolved relative to this file so the lint
#: works from any CWD (tests, CI, editable installs).
SRC_ROOT = Path(__file__).resolve().parent.parent

#: Modules that form the cross-partition mediation layer.
MEDIATION_MODULES = frozenset(
    {
        "coherence/bus.py",
        "coherence/directory.py",
    }
)


def domain_for(relpath: str) -> str:
    """Architectural domain of a module, from its path under ``src/repro``."""
    relpath = relpath.replace(os.sep, "/")
    if relpath in MEDIATION_MODULES or relpath.startswith("network/"):
        return "mediation"
    if relpath == "node/machine.py":
        return "assembly"
    if (
        relpath.startswith(("node/", "ni/", "msglayer/"))
        or relpath == "coherence/cache.py"
    ):
        return "node"
    if relpath.startswith(("sim/", "common/")):
        return "kernel"
    if relpath.startswith("coherence/"):
        return "coherence"
    return "harness"


#: Domains whose modules are clients of the simulation kernel: scheduling
#: state must live on instances (per-Simulator), never at module level.
KERNEL_CLIENT_DOMAINS = frozenset({"kernel", "node", "mediation", "coherence", "assembly"})

#: Domains where simulated time is the only clock (WALLCLOCK rule scope).
SIMULATED_TIME_PREFIXES = ("sim/", "coherence/", "ni/")


def iter_modules(root: Path = SRC_ROOT) -> Iterator[Tuple[str, Path]]:
    """Yield ``(relpath, abspath)`` for every ``.py`` module under ``root``."""
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        yield rel, path
