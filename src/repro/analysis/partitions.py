"""Runtime event-to-partition attribution for the conflict detector.

Every kernel event carries a callback; the object that owns that callback
determines which PDES partition the event executes in:

* bound methods resolve through ``__self__`` against the machine's
  :meth:`~repro.node.machine.Machine.partition_map` (fabric delivery
  callbacks land in ``"fabric"``, device/bus callbacks in their node),
* :class:`~repro.sim.process.Process` resumes resolve by the process's
  owning object when its name follows the simulator's naming conventions
  (``node{i}.*``, ``workload-cpu{i}``, ``cpu{i}``); the result is cached
  on the process instance,
* anything else (test harness callbacks, ad-hoc lambdas) falls into the
  ``"external"`` partition, which the conflict detector treats as its own
  partition — loud, never silently merged.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, Optional

from repro.node.machine import Machine
from repro.sim.process import Process

#: Partition of callbacks the resolver cannot attribute.
EXTERNAL = "external"

_NAME_PATTERNS = (
    re.compile(r"^node(\d+)\."),
    re.compile(r"^workload-cpu(\d+)$"),
    re.compile(r"^cpu(\d+)\b"),
    re.compile(r"^ni(\d+)\."),
)


def partition_from_name(name: str) -> Optional[str]:
    """Partition implied by a process/signal name, or None."""
    for pattern in _NAME_PATTERNS:
        match = pattern.match(name)
        if match is not None:
            return f"node{match.group(1)}"
    return None


class PartitionResolver:
    """Resolves scheduled callbacks (and plain objects) to partition labels."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self._by_id: Dict[int, str] = {}
        #: Keep every mapped object alive for the resolver's lifetime so
        #: id() keys can never be recycled onto new objects.
        self._pinned: list = []
        for label, objects in machine.partition_map().items():
            for obj in objects:
                self._by_id[id(obj)] = label
                self._pinned.append(obj)

    def resolve_owner(self, owner: object) -> str:
        """Partition of a component object (cache, bus, NI, fabric, ...)."""
        label = self._by_id.get(id(owner))
        if label is not None:
            return label
        if isinstance(owner, Process):
            return self._resolve_process(owner)
        # Fall back to the object's own declaration (AbstractNI.partition)
        # or its name, before giving up.
        declared = getattr(owner, "partition", None)
        if isinstance(declared, str):
            return declared
        name = getattr(owner, "name", None)
        if isinstance(name, str):
            from_name = partition_from_name(name)
            if from_name is not None:
                return from_name
        return EXTERNAL

    def _resolve_process(self, process: Process) -> str:
        cached = process.__dict__.get("_analysis_partition")
        if cached is not None:
            return cached
        label = partition_from_name(process.name) or EXTERNAL
        # Cache on the instance: processes are transient, so an id()-keyed
        # side table could alias a dead process with a new one.
        process._analysis_partition = label
        return label

    def resolve_callback(self, callback: Callable) -> str:
        """Partition of a scheduled callback (the event's executor)."""
        owner = getattr(callback, "__self__", None)
        if owner is not None:
            return self.resolve_owner(owner)
        return EXTERNAL
