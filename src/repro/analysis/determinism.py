"""Schedule-perturbation determinism sanitizer.

The kernel breaks same-cycle ties by schedule order (the ``seq`` counter).
A future PDES merge — and, today, any refactor that reorders scheduling —
is only safe if the simulated physics never depends on the relative order
of *independent* same-cycle events.  This pass checks exactly that:

1. run the conflict detector (:mod:`repro.analysis.conflicts`) to learn
   which partition pairs actually interact within a cycle,
2. re-run the same :class:`ExperimentSpec` under an
   :class:`OrderShuffleSimulator` that randomly permutes same-cycle
   execution order between partitions the detector proved independent,
   while preserving order inside each partition and across every
   conflicting pair (a constrained random merge of per-partition queues),
3. close the constraint set under the reorderings it licenses: each
   shuffled run is itself conflict-tracked, and a reorder that
   manufactures a race the canonical schedule never exhibited (e.g. a
   fabric delivery shifted onto the same cycle as a node's queue poll)
   extends the constraints and redoes that seed until no new edges
   appear,
4. assert the full stats fingerprint — cycle count, bus occupancies,
   network/coherence/per-node/messaging counters — stays **bit-identical**
   across seeds.

Spin-wait elision counters (``elided_*``) are excluded from fingerprints:
elision arming probes untracked wall-progress state, so legal reorderings
may change how much spinning was elided without changing the physics.

``self_test`` injects a deliberately order-dependent two-process workload
that the sanitizer must catch, plus an independent workload and a
constrained run as positive controls.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.conflicts import (
    InstrumentedSimulator,
    analyze_spec,
    run_spec_machine,
)
from repro.analysis.partitions import EXTERNAL, PartitionResolver, partition_from_name
from repro.sim.engine import Simulator


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
def strip_elided(value):
    """Recursively drop dict keys mentioning spin-wait elision."""
    if isinstance(value, dict):
        return {
            k: strip_elided(v)
            for k, v in value.items()
            if not (isinstance(k, str) and "elided" in k)
        }
    if isinstance(value, (list, tuple)):
        return [strip_elided(v) for v in value]
    return value


def machine_fingerprint(machine, result) -> Dict:
    """Every observable statistic of a finished macro run, elision-free."""
    return strip_elided(
        {
            "cycles": result.cycles,
            "memory_bus_occupancy": machine.total_memory_bus_occupancy(),
            "io_bus_occupancy": machine.total_io_bus_occupancy(),
            "user_messages": result.user_messages,
            "network_messages": result.network_messages,
            "network": machine.network_stats(),
            "coherence": machine.coherence_stats(),
            "nodes": [node.stats_snapshot() for node in machine.nodes],
            "messaging": [layer.stats.as_dict() for layer in machine.messaging],
        }
    )


def fingerprint_digest(fingerprint: Dict) -> str:
    blob = json.dumps(fingerprint, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def diff_fingerprints(base, other, path: str = "") -> List[str]:
    """Human-readable paths where two fingerprints disagree."""
    if isinstance(base, dict) and isinstance(other, dict):
        out: List[str] = []
        for key in sorted(set(base) | set(other)):
            sub = f"{path}.{key}" if path else str(key)
            if key not in base:
                out.append(f"{sub}: missing in baseline")
            elif key not in other:
                out.append(f"{sub}: missing in shuffled run")
            else:
                out.extend(diff_fingerprints(base[key], other[key], sub))
        return out
    if isinstance(base, list) and isinstance(other, list):
        if len(base) != len(other):
            return [f"{path}: length {len(base)} != {len(other)}"]
        out = []
        for i, (a, b) in enumerate(zip(base, other)):
            out.extend(diff_fingerprints(a, b, f"{path}[{i}]"))
        return out
    if base != other:
        return [f"{path}: {base!r} != {other!r}"]
    return []


# ----------------------------------------------------------------------
# The shuffling simulator
# ----------------------------------------------------------------------
class OrderShuffleSimulator(Simulator):
    """Kernel whose same-cycle tie-break is a constrained random merge.

    Events are grouped per partition.  Within a partition, schedule order
    is always preserved (each group's batch queue is seq-ordered).  Across
    partitions, the head of group ``P`` is *ready* unless some group ``Q``
    that is order-constrained against ``P`` has an earlier (smaller-seq)
    head; a seeded RNG picks uniformly among ready heads.  The smallest-seq
    head is always ready, so the merge can never deadlock, and with an
    empty constraint set this is a uniform shuffle of independent events.

    ``constraints`` is an iterable of 2-element collections of partition
    labels.  The ``external`` partition is implicitly constrained against
    everything (unattributed callbacks stay in canonical order).
    """

    def __init__(
        self,
        seed: int = 0,
        constraints: Iterable = (),
        group_fn=None,
    ) -> None:
        super().__init__()
        self._rng = random.Random(seed)
        self._constraints = {frozenset(pair) for pair in constraints}
        self._group_fn = group_fn
        #: Number of pick_next calls that had a real choice to make.
        self.shuffle_choices = 0
        self.enable_hooks()

    def bind_machine(self, machine) -> PartitionResolver:
        """Use ``machine``'s partition map for event grouping."""
        resolver = PartitionResolver(machine)
        self._group_fn = resolver.resolve_callback
        return resolver

    def event_group(self, event):
        fn = self._group_fn
        if fn is not None:
            return fn(event.callback)
        owner = getattr(event.callback, "__self__", None)
        name = getattr(owner, "name", "") if owner is not None else ""
        return partition_from_name(name) or EXTERNAL if name else EXTERNAL

    def _constrained(self, a: str, b: str) -> bool:
        if a == EXTERNAL or b == EXTERNAL:
            return True
        return frozenset((a, b)) in self._constraints

    def pick_next(self):
        groups = [(g, dq) for g, dq in self._batch.items() if dq]
        if len(groups) == 1:
            return groups[0][1].popleft()
        groups.sort(key=lambda kv: kv[1][0].seq)
        ready = []
        for group, dq in groups:
            seq = dq[0].seq
            blocked = False
            for other, odq in groups:
                if other is not group and odq[0].seq < seq and self._constrained(
                    group, other
                ):
                    blocked = True
                    break
            if not blocked:
                ready.append(dq)
        if not ready:  # unreachable: the min-seq head is never blocked
            return groups[0][1].popleft()
        if len(ready) == 1:
            return ready[0].popleft()
        self.shuffle_choices += 1
        return self._rng.choice(ready).popleft()


class TrackedShuffleSimulator(InstrumentedSimulator):
    """Constrained-merge shuffle that conflict-tracks its own schedule.

    The constraint set inferred from the canonical schedule is not
    automatically closed under the reorderings it licenses: shifting one
    independent event within its cycle changes downstream timing, which
    can put a fabric delivery and a node's queue poll on the *same* cycle
    for the first time — a race the canonical run never exhibited, between
    a pair the detector therefore never constrained.  Running the shuffle
    with the conflict tracker attached lets the sanitizer verify post-hoc
    that no reorder it performed was between dependent events, and extend
    the constraint set and redo the seed when one was
    (:func:`sanitize_spec`'s fixpoint loop).
    """

    def __init__(self, seed: int = 0, constraints: Iterable = ()) -> None:
        super().__init__()
        self._rng = random.Random(seed)
        self._constraints = {frozenset(pair) for pair in constraints}
        #: Number of pick_next calls that had a real choice to make.
        self.shuffle_choices = 0

    def event_group(self, event):
        resolver = self._resolver
        if resolver is not None:
            return resolver.resolve_callback(event.callback)
        return EXTERNAL

    # Same constrained random merge as the untracked shuffler.
    _constrained = OrderShuffleSimulator._constrained
    pick_next = OrderShuffleSimulator.pick_next


# ----------------------------------------------------------------------
# Spec-level sanitizer
# ----------------------------------------------------------------------
@dataclass
class ShuffleRun:
    seed: int
    identical: bool
    shuffle_choices: int
    diffs: List[str] = field(default_factory=list)
    #: Shuffled runs it took this seed to close the constraint set (1 =
    #: the first shuffle manufactured no new conflict edges).
    fixpoint_rounds: int = 1

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "identical": self.identical,
            "shuffle_choices": self.shuffle_choices,
            "diffs": self.diffs,
            "fixpoint_rounds": self.fixpoint_rounds,
        }


@dataclass
class DeterminismResult:
    """Outcome of sanitizing one experiment point."""

    spec_desc: Dict
    baseline_digest: str
    constraints: List[List[str]]
    runs: List[ShuffleRun]
    conflict_summary: Optional[Dict] = None
    #: Pairs added by the fixpoint loop — races first manufactured by a
    #: shuffled schedule, absent from the canonical run's conflict edges.
    inferred_constraints: List[List[str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(run.identical for run in self.runs)

    def to_dict(self) -> Dict:
        return {
            "spec": self.spec_desc,
            "ok": self.ok,
            "baseline_digest": self.baseline_digest,
            "constraints": self.constraints,
            "inferred_constraints": self.inferred_constraints,
            "runs": [run.to_dict() for run in self.runs],
            "conflict_summary": self.conflict_summary,
        }


def sanitize_spec(
    spec,
    seeds: Tuple[int, ...] = (11, 23, 37),
    constraints: Optional[Iterable] = None,
    max_diffs: int = 20,
    max_fixpoint_rounds: int = 8,
) -> DeterminismResult:
    """Check one macro spec for same-cycle order dependence.

    When ``constraints`` is None, a conflict-detector pass derives the
    partition pairs that must stay ordered; independent pairs are then
    shuffled with each seed and the stats fingerprint must stay
    bit-identical to the plain-kernel baseline.

    Each shuffled run is itself conflict-tracked.  A reorder that puts two
    previously never-colliding partitions on the same cycle manufactures a
    race the canonical pass could not have seen; such pairs were never
    independent, so they join the constraint set and the seed is redone
    until a shuffle closes without new edges (bounded by
    ``max_fixpoint_rounds``).  Only then does the fingerprint comparison
    count — the sanitizer's claim is invariance under reorderings of
    *proven*-independent events, not of lucky ones.
    """
    conflict_summary = None
    if constraints is None:
        tracker, _ = analyze_spec(spec)
        constraints = tracker.constraint_pairs()
        conflict_summary = {
            "edges": len(tracker.edges),
            "mediation_only": not tracker.non_mediation_edges(),
        }
    constraint_set = {frozenset(pair) for pair in constraints}
    machine, result = run_spec_machine(spec)
    baseline = machine_fingerprint(machine, result)
    runs: List[ShuffleRun] = []
    inferred: List[List[str]] = []
    for seed in seeds:
        for rounds in range(1, max_fixpoint_rounds + 1):
            sim = TrackedShuffleSimulator(seed=seed, constraints=constraint_set)
            shuffled_machine, shuffled_result = run_spec_machine(spec, simulator=sim)
            sim.finish()
            new_pairs = sim.tracker.constraint_pairs() - constraint_set
            if not new_pairs:
                break
            constraint_set |= new_pairs
            inferred.extend(sorted(sorted(pair) for pair in new_pairs))
        fingerprint = machine_fingerprint(shuffled_machine, shuffled_result)
        diffs = diff_fingerprints(baseline, fingerprint)
        runs.append(
            ShuffleRun(
                seed=seed,
                identical=not diffs,
                shuffle_choices=sim.shuffle_choices,
                diffs=diffs[:max_diffs],
                fixpoint_rounds=rounds,
            )
        )
    return DeterminismResult(
        spec_desc={
            "workload": spec.workload,
            "device": spec.device,
            "bus": spec.bus,
            "num_nodes": spec.num_nodes,
            "scale": spec.scale,
            "fabric": spec.params.get("fabric", "ideal"),
        },
        baseline_digest=fingerprint_digest(baseline),
        constraints=sorted(sorted(pair) for pair in constraint_set),
        runs=runs,
        conflict_summary=conflict_summary,
        inferred_constraints=inferred,
    )


# ----------------------------------------------------------------------
# Self-test: the sanitizer must catch a planted order dependence
# ----------------------------------------------------------------------
def _probe_run(
    seed: Optional[int],
    constraints: Iterable = (),
    dependent: bool = True,
    iterations: int = 20,
) -> Tuple[int, int, int]:
    """Two processes in different partitions mutating shared state.

    ``dependent=True`` makes the mutations non-commutative (``+3`` vs
    ``*2`` on one shared cell) so the final value encodes the interleave;
    ``dependent=False`` gives each process a private cell.  ``seed=None``
    runs the plain canonical kernel.
    """
    from repro.sim.process import start_process

    if seed is None:
        sim = Simulator()
    else:
        sim = OrderShuffleSimulator(seed=seed, constraints=constraints)
    state = {"shared": 1, "a": 0, "b": 0}

    def adder():
        for _ in range(iterations):
            if dependent:
                state["shared"] = state["shared"] + 3
            else:
                state["a"] = state["a"] + 3
            yield 1

    def doubler():
        for _ in range(iterations):
            if dependent:
                state["shared"] = (state["shared"] * 2) % 100003
            else:
                state["b"] = (state["b"] * 2 + 1) % 100003
            yield 1

    start_process(sim, adder(), name="node0.probe")
    start_process(sim, doubler(), name="node1.probe")
    sim.run()
    return (state["shared"], state["a"], state["b"])


def self_test(verbose: bool = False) -> List[str]:
    """Returns a list of failure strings (empty = pass)."""
    failures: List[str] = []
    probe_seeds = (1, 2, 3, 4, 5)

    # 1. A planted order-dependent workload must be caught: at least one
    #    shuffled interleave must change the observable outcome.
    canonical = _probe_run(None, dependent=True)
    shuffled = [_probe_run(seed, dependent=True) for seed in probe_seeds]
    caught = any(outcome != canonical for outcome in shuffled)
    if verbose:
        print(f"dependent probe: canonical={canonical} shuffled={shuffled}")
    if not caught:
        failures.append(
            "sanitizer missed the planted order dependence: every shuffled "
            f"run matched the canonical outcome {canonical}"
        )

    # 2. Positive control: constraining the conflicting pair must restore
    #    the canonical outcome exactly.
    pair = [("node0", "node1")]
    constrained = [
        _probe_run(seed, constraints=pair, dependent=True) for seed in probe_seeds
    ]
    if any(outcome != canonical for outcome in constrained):
        failures.append(
            "constrained merge failed to preserve order of a conflicting "
            f"pair: {constrained} != {canonical}"
        )

    # 3. An independent workload must be shuffle-invariant.
    canonical_indep = _probe_run(None, dependent=False)
    indep = [_probe_run(seed, dependent=False) for seed in probe_seeds[:3]]
    if any(outcome != canonical_indep for outcome in indep):
        failures.append(
            f"independent probe drifted under shuffling: {indep} != {canonical_indep}"
        )

    # 4. The conflict detector must see its planted two-partition conflict.
    from repro.analysis.conflicts import conflict_fixture

    tracker = conflict_fixture(conflict_cycle=100)
    edge = tracker.edges.get(("node0", "node1", "ni_queue"))
    if edge is None or edge.first_cycle != 100:
        failures.append(
            "conflict detector missed the planted node0/node1 conflict at "
            f"cycle 100 (edges: {list(tracker.edges)})"
        )
    return failures
