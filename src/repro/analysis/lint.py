"""Static cross-partition lint: an ``ast`` rule engine over ``src/repro``.

The rules encode the simulator's partition discipline (see
:mod:`repro.analysis.ownership` for the domain map):

* ``CROSS`` — node-domain code must not reach across partitions: no access
  to the machine-wide node/messaging lists and no digging into the
  fabric's endpoint tables outside the mediation layers.
* ``MUTSTATE`` — no module-level mutable state in kernel clients; two
  machines in one process must never share scheduling or statistics state.
* ``SLOTS`` — hot-path event/message classes (``*Event``, ``*Message``,
  ``*Transaction``, ``*Response``) must declare ``__slots__`` (directly or
  via ``dataclass(slots=True)``).
* ``WALLCLOCK`` — no wall-clock (``time.time``/``perf_counter``) or
  ``random`` use where simulated time rules (``sim/``, ``coherence/``,
  ``ni/``); nondeterminism there breaks bit-identical replay.
* ``STATKEY`` — stat-key literals a module *consumes* must exist in the
  generated producer registry (:mod:`repro.analysis.statkeys`); a typo'd
  key reads as a silent zero otherwise.

Rules are pluggable through :func:`register_rule` (mirroring the protocol
and device registries), findings can be waived per line with
``# repro: allow[RULE] reason`` comments, and :func:`report_to_dict` gives
the JSON shape the CLI and CI emit.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.analysis.ownership import (
    KERNEL_CLIENT_DOMAINS,
    SIMULATED_TIME_PREFIXES,
    SRC_ROOT,
    domain_for,
    iter_modules,
)
from repro.analysis.statkeys import StatKeyRegistry, consumed_keys, generate_registry


class LintError(RuntimeError):
    """Raised for misuse of the lint engine (bad rule registrations)."""


# ----------------------------------------------------------------------
# Findings and waivers
# ----------------------------------------------------------------------
@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    waived: bool = False
    waiver_reason: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "waived": self.waived,
            "waiver_reason": self.waiver_reason,
        }


_WAIVER_RE = re.compile(
    r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s-]+)\]\s*(.*)$"
)


def parse_waivers(lines: List[str]) -> Dict[int, Tuple[frozenset, str]]:
    """Per-line waivers: ``lineno -> (rule ids, reason)`` (1-based)."""
    waivers: Dict[int, Tuple[frozenset, str]] = {}
    for lineno, line in enumerate(lines, start=1):
        match = _WAIVER_RE.search(line)
        if match is not None:
            rules = frozenset(
                part.strip().upper() for part in match.group(1).split(",") if part.strip()
            )
            waivers[lineno] = (rules, match.group(2).strip())
    return waivers


# ----------------------------------------------------------------------
# Module model and rule registry
# ----------------------------------------------------------------------
@dataclass
class ModuleFile:
    """A parsed module plus the metadata rules scope themselves by."""

    relpath: str
    domain: str
    tree: ast.Module
    lines: List[str]


@dataclass
class LintContext:
    """Cross-module inputs shared by all rules in one lint run."""

    stat_registry: StatKeyRegistry


class Rule:
    """Base class for lint rules.

    Subclasses set ``id``/``summary``, optionally restrict themselves via
    :meth:`applies_to`, and yield ``(lineno, col, message)`` from
    :meth:`check`.
    """

    id = "RULE"
    summary = ""

    def applies_to(self, module: ModuleFile) -> bool:
        return True

    def check(self, module: ModuleFile, context: LintContext) -> Iterator[Tuple[int, int, str]]:
        raise NotImplementedError


_RULES: Dict[str, Rule] = {}


def register_rule(rule=None, *, replace: bool = False):
    """Register a lint rule (decorator or direct call).

    Accepts a :class:`Rule` instance or a zero-argument rule class, exactly
    like the protocol/device registries accept specs or builders::

        @register_rule
        class NoFooRule(Rule):
            id = "NOFOO"
            ...
    """
    if rule is None:
        return lambda actual: register_rule(actual, replace=replace)
    instance = rule() if isinstance(rule, type) else rule
    if not isinstance(instance, Rule):
        raise LintError(f"register_rule needs a Rule, got {instance!r}")
    rule_id = instance.id.upper()
    if not replace and rule_id in _RULES:
        raise LintError(f"lint rule {rule_id!r} already registered (use replace=True)")
    _RULES[rule_id] = instance
    return rule


def registered_rules() -> Dict[str, Rule]:
    return dict(_RULES)


# ----------------------------------------------------------------------
# Built-in rules
# ----------------------------------------------------------------------
#: Machine-wide collections only assembly/harness code may walk.
_CROSS_MACHINE_ATTRS = frozenset({"nodes", "messaging"})
#: Fabric internals only the mediation layer may touch.
_CROSS_FABRIC_ATTRS = frozenset({"_endpoints", "_ack_handlers"})


@register_rule
class CrossPartitionRule(Rule):
    id = "CROSS"
    summary = (
        "node-partition code must not reach other nodes except through "
        "the bus/fabric/directory mediation layers"
    )

    def applies_to(self, module: ModuleFile) -> bool:
        return module.domain == "node"

    def check(self, module, context):
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr in _CROSS_MACHINE_ATTRS and isinstance(node.value, ast.Attribute):
                # `x.nodes` / `x.messaging` where x is itself an attribute
                # chain (e.g. `self.machine.nodes`): walking the machine's
                # node list from inside a partition.  A bare local like
                # `graph.nodes` (workload-shaped data) stays legal.
                yield (
                    node.lineno,
                    node.col_offset,
                    f"access to machine-wide '.{node.attr}' from node-partition code",
                )
            elif node.attr in _CROSS_FABRIC_ATTRS:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"fabric internal '.{node.attr}' touched outside the mediation layer",
                )


_MUTABLE_CALLS = frozenset(
    {"dict", "list", "set", "deque", "defaultdict", "Counter", "OrderedDict", "bytearray"}
)


@register_rule
class ModuleMutableStateRule(Rule):
    id = "MUTSTATE"
    summary = "no module-level mutable state in kernel clients"

    def applies_to(self, module: ModuleFile) -> bool:
        return module.domain in KERNEL_CLIENT_DOMAINS

    def _mutable(self, value: ast.AST) -> bool:
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(value, ast.Call):
            func = value.func
            name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
            return name in _MUTABLE_CALLS
        return False

    def check(self, module, context):
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Assign):
                value, targets = stmt.value, stmt.targets
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                value, targets = stmt.value, [stmt.target]
            else:
                continue
            names_list = [t.id for t in targets if isinstance(t, ast.Name)]
            if names_list and all(
                n.startswith("__") and n.endswith("__") for n in names_list
            ):
                continue  # __all__ and friends: export metadata, not state
            if self._mutable(value):
                names = ", ".join(names_list) or "<target>"
                yield (
                    stmt.lineno,
                    stmt.col_offset,
                    f"module-level mutable state '{names}' in a kernel client "
                    "(two machines in one process would share it)",
                )


_HOT_CLASS_RE = re.compile(r".+(Event|Message|Transaction|Response)$")


@register_rule
class SlotsRule(Rule):
    id = "SLOTS"
    summary = "hot-path event/message classes must declare __slots__"

    def applies_to(self, module: ModuleFile) -> bool:
        return module.domain in ("kernel", "node", "mediation", "coherence")

    def _has_slots(self, cls: ast.ClassDef) -> bool:
        for stmt in cls.body:
            if isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__slots__" for t in stmt.targets
            ):
                return True
            if isinstance(stmt, ast.AnnAssign) and (
                isinstance(stmt.target, ast.Name) and stmt.target.id == "__slots__"
            ):
                return True
        for deco in cls.decorator_list:
            if isinstance(deco, ast.Call):
                name = (
                    deco.func.id
                    if isinstance(deco.func, ast.Name)
                    else getattr(deco.func, "attr", None)
                )
                if name == "dataclass" and any(
                    kw.arg == "slots"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in deco.keywords
                ):
                    return True
        return False

    def check(self, module, context):
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not _HOT_CLASS_RE.match(node.name):
                continue
            if node.name.endswith("Error"):
                continue
            if not self._has_slots(node):
                yield (
                    node.lineno,
                    node.col_offset,
                    f"hot-path class {node.name!r} has no __slots__ "
                    "(instances are allocated per event/message)",
                )


_WALLCLOCK_FUNCS = frozenset(
    {"time", "perf_counter", "monotonic", "time_ns", "perf_counter_ns", "monotonic_ns"}
)


@register_rule
class WallClockRule(Rule):
    id = "WALLCLOCK"
    summary = "no wall-clock or random in simulated-time code (sim/, coherence/, ni/)"

    def applies_to(self, module: ModuleFile) -> bool:
        return module.relpath.startswith(SIMULATED_TIME_PREFIXES)

    def check(self, module, context):
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
                base = node.value.id
                if base in ("time", "_time") and node.attr in _WALLCLOCK_FUNCS:
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"wall-clock call '{base}.{node.attr}' in simulated-time code",
                    )
                elif base == "random":
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"'random.{node.attr}' in simulated-time code "
                        "(seedable determinism belongs to the harness)",
                    )
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                names = (
                    [node.module]
                    if isinstance(node, ast.ImportFrom)
                    else [alias.name for alias in node.names]
                )
                if "random" in names:
                    yield (
                        node.lineno,
                        node.col_offset,
                        "import of 'random' in simulated-time code",
                    )


@register_rule
class StatKeyRule(Rule):
    id = "STATKEY"
    summary = "consumed stat-key literals must exist in the generated producer registry"

    def check(self, module, context):
        registry = context.stat_registry
        for lineno, col, key in consumed_keys(module.tree):
            if key not in registry:
                yield (
                    lineno,
                    col,
                    f"stat key {key!r} is consumed but never produced "
                    "(typo'd keys read as silent zeros)",
                )


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    modules_checked: int = 0

    @property
    def active(self) -> List[Finding]:
        return [f for f in self.findings if not f.waived]

    @property
    def waived(self) -> List[Finding]:
        return [f for f in self.findings if f.waived]

    @property
    def ok(self) -> bool:
        return not self.active

    def to_dict(self) -> Dict:
        counts: Dict[str, int] = {}
        for finding in self.active:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return {
            "ok": self.ok,
            "modules_checked": self.modules_checked,
            "counts_by_rule": counts,
            "findings": [f.to_dict() for f in self.active],
            "waived": [f.to_dict() for f in self.waived],
            "rules": {rule_id: rule.summary for rule_id, rule in sorted(_RULES.items())},
        }


def _make_context(root: Path) -> LintContext:
    return LintContext(stat_registry=generate_registry(root))


def _check_module(
    module: ModuleFile, context: LintContext, rules: Iterable[Rule]
) -> List[Finding]:
    waivers = parse_waivers(module.lines)
    findings: List[Finding] = []
    for rule in rules:
        if not rule.applies_to(module):
            continue
        for lineno, col, message in rule.check(module, context):
            finding = Finding(rule.id, module.relpath, lineno, col, message)
            waiver = waivers.get(lineno)
            if waiver is not None and rule.id.upper() in waiver[0]:
                finding.waived = True
                finding.waiver_reason = waiver[1]
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_source(
    source: str,
    relpath: str,
    context: Optional[LintContext] = None,
    root: Path = SRC_ROOT,
) -> List[Finding]:
    """Lint one module given as text (fixtures, tests, editor buffers)."""
    if context is None:
        context = _make_context(root)
    module = ModuleFile(
        relpath=relpath,
        domain=domain_for(relpath),
        tree=ast.parse(source, filename=relpath),
        lines=source.splitlines(),
    )
    return _check_module(module, context, _RULES.values())


def lint_tree(root: Path = SRC_ROOT) -> LintReport:
    """Lint every module under ``root`` (default: the repro package)."""
    context = _make_context(root)
    report = LintReport()
    rules = list(_RULES.values())
    for relpath, path in iter_modules(root):
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            report.findings.append(
                Finding("SYNTAX", relpath, exc.lineno or 0, 0, f"syntax error: {exc.msg}")
            )
            continue
        module = ModuleFile(relpath, domain_for(relpath), tree, source.splitlines())
        report.findings.extend(_check_module(module, context, rules))
        report.modules_checked += 1
    return report


# ----------------------------------------------------------------------
# Self-test fixtures: one minimal offending snippet per built-in rule
# ----------------------------------------------------------------------
FIXTURES: Dict[str, Tuple[str, str, int]] = {
    # rule id -> (virtual relpath, snippet, offending 1-based line)
    "CROSS": (
        "ni/_fixture.py",
        "def peek_remote(self, i):\n    return self.machine.nodes[i].ni\n",
        2,
    ),
    "MUTSTATE": (
        "ni/_fixture.py",
        "_PENDING = {}\n",
        1,
    ),
    "SLOTS": (
        "sim/_fixture.py",
        "class WakeEvent:\n    def __init__(self):\n        self.when = 0\n",
        1,
    ),
    "WALLCLOCK": (
        "sim/_fixture.py",
        "import time\n\ndef stamp():\n    return time.time()\n",
        4,
    ),
    "STATKEY": (
        "node/_fixture.py",
        "def read(stats):\n    return stats.get('no_such_stat_key_xyz')\n",
        2,
    ),
}


def self_test(verbose: bool = False) -> List[str]:
    """Prove every built-in rule fires on its fixture and every waiver works.

    Returns a list of failure descriptions (empty means the engine passed).
    """
    failures: List[str] = []
    context = _make_context(SRC_ROOT)
    for rule_id, (relpath, snippet, line) in FIXTURES.items():
        findings = lint_source(snippet, relpath, context=context)
        hits = [f for f in findings if f.rule == rule_id and f.line == line]
        if not hits:
            failures.append(
                f"{rule_id}: fixture produced no finding at {relpath}:{line} "
                f"(got {[f.rule for f in findings]})"
            )
            continue
        if verbose:
            print(f"  {rule_id}: fixture flagged ({hits[0].message})")
        # The same snippet with a waiver comment on the offending line must
        # come back waived.
        lines = snippet.splitlines()
        lines[line - 1] += f"  # repro: allow[{rule_id}] fixture waiver"
        waived = lint_source("\n".join(lines) + "\n", relpath, context=context)
        still_active = [f for f in waived if f.rule == rule_id and f.line == line and not f.waived]
        if still_active:
            failures.append(f"{rule_id}: waiver comment did not suppress the finding")
        elif verbose:
            print(f"  {rule_id}: waiver suppressed")
    return failures
