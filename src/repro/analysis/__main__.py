"""Command-line surface of the partition-safety analyzer.

Usage::

    python -m repro.analysis lint [--json]
    python -m repro.analysis statkeys [--json]
    python -m repro.analysis conflicts [--quick] [--out partition_conflict_report.json]
    python -m repro.analysis determinism [--quick] [--seeds 11 23 37] [--out PATH]
    python -m repro.analysis --self-test [--verbose]

``conflicts`` and ``determinism`` default to the fig8 macro trio
(gauss/em3d/appbt) x {CNI4Q, CNI16Q} x {ideal, mesh4x4} at 16 nodes;
``--quick`` shrinks that to one workload per axis at 4 nodes for CI.
Both exit non-zero when the partition claim fails (a non-mediation
conflict edge, or a fingerprint drift under tie-break shuffles), as does
``lint`` on unwaived findings.  ``run.py analyze ...`` forwards here.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis import determinism as determinism_mod
from repro.analysis import lint as lint_mod
from repro.analysis.conflicts import ConflictReport, analyze_spec
from repro.analysis.determinism import sanitize_spec
from repro.analysis.statkeys import generate_registry

#: The fig8 macrobenchmark trio (paper Section 5).
MACRO_TRIO = ("gauss", "em3d", "appbt")
DEFAULT_DEVICES = ("CNI4Q", "CNI16Q")
DEFAULT_FABRICS = ("ideal", "mesh4x4")


def _print(text: str) -> None:
    sys.stdout.write(text)
    sys.stdout.flush()


def matrix_specs(
    workloads=MACRO_TRIO,
    devices=DEFAULT_DEVICES,
    fabrics=DEFAULT_FABRICS,
    num_nodes: int = 16,
    scale: float = 1.0,
    seed: int = 12345,
) -> List:
    """The analysis matrix as validated macro ExperimentSpecs."""
    from repro.api.spec import ExperimentSpec

    specs = []
    for workload in workloads:
        for device in devices:
            for fabric in fabrics:
                params = {} if fabric == "ideal" else {"fabric": fabric}
                specs.append(
                    ExperimentSpec(
                        kind="macro",
                        device=device,
                        workload=workload,
                        num_nodes=num_nodes,
                        scale=scale,
                        seed=seed,
                        params=params,
                    ).validate()
                )
    return specs


def _matrix_from_args(args) -> List:
    if args.quick:
        return matrix_specs(
            workloads=tuple(args.workloads or ("gauss",)),
            devices=tuple(args.devices or ("CNI16Q",)),
            fabrics=tuple(args.fabrics or ("ideal", "mesh")),
            num_nodes=args.nodes or 4,
            scale=args.scale or 0.25,
            seed=args.seed,
        )
    return matrix_specs(
        workloads=tuple(args.workloads or MACRO_TRIO),
        devices=tuple(args.devices or DEFAULT_DEVICES),
        fabrics=tuple(args.fabrics or DEFAULT_FABRICS),
        num_nodes=args.nodes or 16,
        scale=args.scale or 1.0,
        seed=args.seed,
    )


def _add_matrix_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--quick", action="store_true", help="small CI-sized matrix")
    sub.add_argument("--workloads", nargs="*", help=f"default: {' '.join(MACRO_TRIO)}")
    sub.add_argument("--devices", nargs="*", help=f"default: {' '.join(DEFAULT_DEVICES)}")
    sub.add_argument("--fabrics", nargs="*", help=f"default: {' '.join(DEFAULT_FABRICS)}")
    sub.add_argument("--nodes", type=int, help="nodes per point (default 16, quick 4)")
    sub.add_argument("--scale", type=float, help="macro scale (default 1.0, quick 0.25)")
    sub.add_argument("--seed", type=int, default=12345, help="workload seed")


def cmd_lint(args) -> int:
    report = lint_mod.lint_tree()
    if args.json:
        _print(json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n")
    else:
        for finding in report.findings:
            if finding.waived and not args.show_waived:
                continue
            status = "waived" if finding.waived else "FAIL"
            _print(f"[{status}] {finding.location()}: {finding.rule}: {finding.message}\n")
        _print(
            f"lint: {report.modules_checked} modules, "
            f"{len(report.active)} active, {len(report.waived)} waived\n"
        )
    return 0 if report.ok else 1


def cmd_statkeys(args) -> int:
    registry = generate_registry()
    if args.json:
        _print(json.dumps(registry.to_dict(), indent=2, sort_keys=True) + "\n")
    else:
        for key in sorted(registry.literals):
            _print(f"{key}\n")
        for pattern in sorted(registry.patterns):
            _print(f"~ {pattern}\n")
        _print(
            f"statkeys: {len(registry.literals)} literal keys, "
            f"{len(registry.patterns)} patterns\n"
        )
    return 0


def cmd_conflicts(args) -> int:
    specs = _matrix_from_args(args)
    report = ConflictReport()
    for i, spec in enumerate(specs, 1):
        fabric = spec.params.get("fabric", "ideal")
        _print(f"[{i}/{len(specs)}] {spec.describe()} [{fabric}] ... ")
        tracker, result = analyze_spec(spec)
        report.add_point(spec, tracker, result.cycles)
        edges = len(tracker.edges)
        bad = len(tracker.non_mediation_edges())
        _print(f"{edges} edges, {bad} non-mediation\n")
    report.write(args.out)
    _print(f"(wrote {args.out})\n")
    if not report.mediation_only:
        _print("FAIL: conflict edges outside mediation layers\n")
        return 1
    _print("ok: all conflict edges go through mediation layers\n")
    return 0


def cmd_determinism(args) -> int:
    specs = _matrix_from_args(args)
    results = []
    failed = 0
    for i, spec in enumerate(specs, 1):
        fabric = spec.params.get("fabric", "ideal")
        _print(f"[{i}/{len(specs)}] {spec.describe()} [{fabric}] ... ")
        outcome = sanitize_spec(spec, seeds=tuple(args.seeds))
        results.append(outcome.to_dict())
        choices = sum(run.shuffle_choices for run in outcome.runs)
        if outcome.ok:
            _print(f"bit-identical across {len(outcome.runs)} shuffles ({choices} choices)\n")
        else:
            failed += 1
            _print("DRIFT\n")
            for run in outcome.runs:
                for diff in run.diffs[:5]:
                    _print(f"    seed {run.seed}: {diff}\n")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(
                {"schema": "determinism_report/v1", "points": results},
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        _print(f"(wrote {args.out})\n")
    if failed:
        _print(f"FAIL: {failed}/{len(specs)} points drifted under tie-break shuffles\n")
        return 1
    _print(f"ok: {len(specs)} points bit-identical under tie-break shuffles\n")
    return 0


def run_self_test(verbose: bool = False) -> int:
    failures = lint_mod.self_test(verbose=verbose)
    failures += determinism_mod.self_test(verbose=verbose)
    if failures:
        for failure in failures:
            _print(f"FAIL: {failure}\n")
        return 1
    _print("self-test: lint rules, conflict detector and sanitizer all catch their planted defects\n")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify the analyzer catches planted defects",
    )
    parser.add_argument("--verbose", action="store_true")
    sub = parser.add_subparsers(dest="command")

    lint_p = sub.add_parser("lint", help="static simulator-idiom lint")
    lint_p.add_argument("--json", action="store_true")
    lint_p.add_argument("--show-waived", action="store_true")

    keys_p = sub.add_parser("statkeys", help="dump the generated stat-key registry")
    keys_p.add_argument("--json", action="store_true")

    conf_p = sub.add_parser("conflicts", help="same-cycle cross-partition conflict detection")
    _add_matrix_args(conf_p)
    conf_p.add_argument("--out", default="partition_conflict_report.json")

    det_p = sub.add_parser("determinism", help="schedule-perturbation determinism sanitizer")
    _add_matrix_args(det_p)
    det_p.add_argument("--seeds", nargs="*", type=int, default=[11, 23, 37])
    det_p.add_argument("--out", help="write a JSON determinism report")

    args = parser.parse_args(argv)
    if args.self_test:
        return run_self_test(verbose=args.verbose)
    if args.command == "lint":
        return cmd_lint(args)
    if args.command == "statkeys":
        return cmd_statkeys(args)
    if args.command == "conflicts":
        return cmd_conflicts(args)
    if args.command == "determinism":
        return cmd_determinism(args)
    parser.print_help()
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
