"""Dynamic same-cycle conflict detector (the PDES merge work-list).

An :class:`InstrumentedSimulator` runs any machine through the kernel's
hooked drain, tagging every event with its owning partition (resolved from
the scheduling object — see :mod:`repro.analysis.partitions`) and recording
per-cycle read/write footprints on the shared structures that cross
partitions:

* NI receive queues (``ni_queue``) — written by fabric deliveries, drained
  by the node's extraction process,
* sliding windows (``window``) — reserved by the node, credited by fabric
  acks,
* cross-partition signals (``signal``) — waited on by node processes,
  fired by fabric deliveries,
* bus transactions and directory lookups (``bus``/``directory``) — via the
  interconnect's ``access_probe``; per-node buses should never show
  cross-partition edges.

Two accesses *conflict* when they touch the same structure in the same
cycle from **different** partitions, at least one is a write, and neither
event is an intra-cycle ancestor of the other (a delivery that wakes the
process which then reads the queue is causally ordered, not a race).  The
resulting per-edge counts are exactly the event pairs a conservative PDES
merge (ROADMAP item 1) must order, reported as
``partition_conflict_report.json``.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.partitions import EXTERNAL, PartitionResolver, partition_from_name
from repro.sim.engine import Simulator
from repro.sim.process import Signal

#: Structure categories that are mediation layers by construction: a
#: cross-partition edge through them is expected and PDES-orderable.
MEDIATION_CATEGORIES = frozenset({"bus", "directory", "fabric"})
#: The partition label of the fabric itself.
FABRIC_PARTITION = "fabric"


@dataclass
class ConflictEdge:
    """Aggregated conflicts between two partitions on one structure kind."""

    partition_a: str
    partition_b: str
    category: str
    count: int = 0
    first_cycle: Optional[int] = None
    example_key: str = ""

    def to_dict(self) -> Dict:
        return {
            "partitions": [self.partition_a, self.partition_b],
            "category": self.category,
            "count": self.count,
            "first_cycle": self.first_cycle,
            "example_key": self.example_key,
        }


class ConflictTracker:
    """Per-cycle read/write footprint recorder and conflict aggregator."""

    def __init__(self) -> None:
        self._cycle: Optional[int] = None
        self._current_token: Optional[int] = None
        self._current_partition: Optional[str] = None
        #: (category, key) -> [(token, partition, is_write)] for this cycle.
        self._accesses: Dict[Tuple[str, str], List[Tuple[int, str, bool]]] = {}
        #: token -> parent token (intra-cycle causality; cleared per cycle).
        self._parents: Dict[int, int] = {}
        self.edges: Dict[Tuple[str, str, str], ConflictEdge] = {}
        self.events_by_partition: Dict[str, int] = {}
        self.cycles_with_conflicts = 0
        self.access_count = 0

    # -- driven by the instrumented simulator ---------------------------
    def note_parent(self, token: int, parent_token: int) -> None:
        self._parents[token] = parent_token

    def begin_event(self, cycle: int, token: Optional[int], partition: str) -> None:
        if cycle != self._cycle:
            self.flush()
            self._cycle = cycle
        self._current_token = token
        self._current_partition = partition
        self.events_by_partition[partition] = self.events_by_partition.get(partition, 0) + 1

    # -- driven by the tracked structures --------------------------------
    def access(self, category: str, key: str, write: bool) -> None:
        """Record one structure access by the currently executing event."""
        if self._current_token is None:
            return  # construction/teardown code outside any simulated event
        self.access_count += 1
        entry = (self._current_token, self._current_partition, write)
        bucket = self._accesses.get((category, key))
        if bucket is None:
            self._accesses[(category, key)] = [entry]
        else:
            bucket.append(entry)

    # -- aggregation -----------------------------------------------------
    def _related(self, token_a: int, token_b: int) -> bool:
        """Whether one event is an intra-cycle ancestor of the other."""
        parents = self._parents
        seen = token_a
        while seen is not None:
            if seen == token_b:
                return True
            seen = parents.get(seen)
        seen = token_b
        while seen is not None:
            if seen == token_a:
                return True
            seen = parents.get(seen)
        return False

    def flush(self) -> None:
        """Close the current cycle: turn its footprints into conflict edges."""
        cycle = self._cycle
        found = False
        for (category, key), accesses in self._accesses.items():
            if len(accesses) < 2:
                continue
            partitions = {p for (_, p, _) in accesses}
            if len(partitions) < 2:
                continue
            # Pairwise over partitions: an edge exists when some pair of
            # accesses from different partitions includes a write and is
            # not causally ordered within the cycle.
            reported: set = set()
            for i, (tok_a, part_a, w_a) in enumerate(accesses):
                for tok_b, part_b, w_b in accesses[i + 1:]:
                    if part_a == part_b or not (w_a or w_b):
                        continue
                    pair = (min(part_a, part_b), max(part_a, part_b))
                    if pair in reported:
                        continue
                    if self._related(tok_a, tok_b):
                        continue
                    reported.add(pair)
                    edge_key = (pair[0], pair[1], category)
                    edge = self.edges.get(edge_key)
                    if edge is None:
                        edge = self.edges[edge_key] = ConflictEdge(
                            pair[0], pair[1], category
                        )
                    edge.count += 1
                    if edge.first_cycle is None:
                        edge.first_cycle = cycle
                        edge.example_key = key
                    found = True
        if found:
            self.cycles_with_conflicts += 1
        self._accesses.clear()
        self._parents.clear()
        self._current_token = None
        self._current_partition = None

    # -- reporting --------------------------------------------------------
    def constraint_pairs(self) -> set:
        """The partition pairs a PDES merge (or shuffle) must keep ordered."""
        return {frozenset((e.partition_a, e.partition_b)) for e in self.edges.values()}

    def non_mediation_edges(self) -> List[ConflictEdge]:
        """Edges that do NOT go through a mediation layer: direct node-to-
        node sharing the partition claim says must not exist."""
        out = []
        for edge in self.edges.values():
            if edge.category in MEDIATION_CATEGORIES:
                continue
            if FABRIC_PARTITION in (edge.partition_a, edge.partition_b):
                continue
            out.append(edge)
        return out

    def to_dict(self) -> Dict:
        edges = sorted(
            self.edges.values(), key=lambda e: (-e.count, e.partition_a, e.partition_b)
        )
        return {
            "edges": [e.to_dict() for e in edges],
            "non_mediation_edges": [e.to_dict() for e in self.non_mediation_edges()],
            "mediation_only": not self.non_mediation_edges(),
            "events_by_partition": dict(sorted(self.events_by_partition.items())),
            "cycles_with_conflicts": self.cycles_with_conflicts,
            "accesses_recorded": self.access_count,
        }


# ----------------------------------------------------------------------
# Tracked structure wrappers
# ----------------------------------------------------------------------
class TrackedDeque(deque):
    """A deque reporting every append/popleft/inspection to the tracker."""

    def __init__(self, tracker: ConflictTracker, category: str, key: str, items=()):
        super().__init__(items)
        self._tracker = tracker
        self._category = category
        self._key = key

    def append(self, item) -> None:
        self._tracker.access(self._category, self._key, True)
        deque.append(self, item)

    def popleft(self):
        self._tracker.access(self._category, self._key, True)
        return deque.popleft(self)

    def __bool__(self) -> bool:
        self._tracker.access(self._category, self._key, False)
        return len(self) > 0


class _TrackedWaiters(list):
    """Signal waiter list: enqueueing a waiter is a write to the signal."""

    def __init__(self, tracker: ConflictTracker, key: str, items=()):
        super().__init__(items)
        self._tracker = tracker
        self._key = key

    def append(self, item) -> None:
        self._tracker.access("signal", self._key, True)
        list.append(self, item)


def _track_signal(signal: Signal, tracker: ConflictTracker, key: str) -> None:
    """Record waiter enqueues and fires on ``signal`` as signal accesses.

    ``Signal.fire`` replaces ``_waiters`` with a fresh plain list, so the
    wrapped fire re-installs a tracked list after delegating.
    """
    signal._waiters = _TrackedWaiters(tracker, key, signal._waiters)
    original_fire = signal.fire

    def tracked_fire(payload=None):
        tracker.access("signal", key, True)
        original_fire(payload)
        if not isinstance(signal._waiters, _TrackedWaiters):
            signal._waiters = _TrackedWaiters(tracker, key, signal._waiters)

    signal.fire = tracked_fire


def _track_window(window, tracker: ConflictTracker, key: str) -> None:
    original_reserve = window.reserve
    original_on_ack = window.on_ack
    original_can_send = window.can_send

    def reserve(dest):
        tracker.access("window", key, True)
        original_reserve(dest)

    def on_ack(dest):
        tracker.access("window", key, True)
        original_on_ack(dest)

    def can_send(dest):
        tracker.access("window", key, False)
        return original_can_send(dest)

    window.reserve = reserve
    window.on_ack = on_ack
    window.can_send = can_send


def _track_directory(directory, tracker: ConflictTracker, key: str) -> None:
    original_holders = directory.holders
    original_record = directory.record

    def holders(txn, home):
        # holders() prunes stale entries, so it mutates as it reads.
        tracker.access("directory", key, True)
        return original_holders(txn, home)

    def record(txn):
        tracker.access("directory", key, True)
        original_record(txn)

    directory.holders = holders
    directory.record = record


def _track_fabric(fabric, tracker: ConflictTracker) -> None:
    """Record injections and ack sends as writes to one shared fabric key.

    Injection order *is* fabric state: delivery/ack events are sequenced
    (and, on topology fabrics, links reserved) at injection time, so two
    nodes injecting in the same cycle conflict through the fabric even when
    their messages target different destinations.  One conservative shared
    key makes every same-cycle injection pair a ``fabric``-category edge —
    a mediation-layer edge, and exactly the arbitration a PDES merge must
    make deterministic.
    """
    key = "fabric.arbitration"
    original_inject = fabric.inject
    original_send_ack = fabric.send_ack

    def inject(message):
        tracker.access("fabric", key, True)
        original_inject(message)

    def send_ack(from_node, to_node):
        tracker.access("fabric", key, True)
        original_send_ack(from_node, to_node)

    fabric.inject = inject
    fabric.send_ack = send_ack


def _track_spin_guard(guard, tracker: ConflictTracker, keys) -> None:
    """Record a spin guard's asynchronous-activity probes as reads.

    ``SpinGuard.probe_state`` samples monotonic activity counters — fabric
    delivery counts, ack/window signal fire counts — whose writers are
    fabric-partition events.  Sampling them is a genuine cross-partition
    read: whether a same-cycle fabric delivery lands before or after the
    sample flips the elision arming decision (one more or one fewer real
    poll iteration).  The sample is recorded as a read of every structure
    the probes observe, so those races surface as ordinary conflict edges.
    ``probe_state`` evaluates every probe, so wrapping the first one is
    enough to cover each sample exactly once.
    """
    if guard is None or not guard.probes:
        return
    first = guard.probes[0]

    def tracked_first(_first=first, _keys=tuple(keys)):
        for category, key in _keys:
            tracker.access(category, key, False)
        return _first()

    guard.probes = (tracked_first,) + tuple(guard.probes[1:])


def instrument_machine(machine, tracker: ConflictTracker) -> None:
    """Install tracked wrappers on every shared structure of ``machine``."""
    _track_fabric(machine.fabric, tracker)
    for node in machine.nodes:
        ni = node.ni
        ni._net_in = TrackedDeque(
            tracker, "ni_queue", f"{ni.name}.net_in", ni._net_in
        )
        _track_window(ni.window, tracker, f"node{node.node_id}.window")
        _track_signal(ni.arrival_signal, tracker, ni.arrival_signal.name)
        _track_signal(ni._net_in_signal, tracker, ni._net_in_signal.name)
        _track_signal(ni.window.slot_freed, tracker, f"node{node.node_id}.window-freed")
        interconnect = node.interconnect
        bus_key = f"{interconnect.name}.bus"

        def probe(txn, timing_bus, _tracker=tracker, _key=bus_key):
            _tracker.access("bus", f"{_key}.{timing_bus.value}", True)

        interconnect.access_probe = probe
        if interconnect.directory is not None:
            _track_directory(
                interconnect.directory, tracker, f"{interconnect.name}.directory"
            )
    for layer in machine.messaging:
        ni = layer.ni
        node_id = layer.node_id
        guard_keys = (
            ("ni_queue", f"{ni.name}.net_in"),
            ("window", f"node{node_id}.window"),
            ("signal", ni.arrival_signal.name),
            ("signal", f"node{node_id}.window-freed"),
        )
        _track_spin_guard(layer._recv_spin_guard, tracker, guard_keys)
        _track_spin_guard(layer._send_spin_guard, tracker, guard_keys)


# ----------------------------------------------------------------------
# The instrumented simulator
# ----------------------------------------------------------------------
class InstrumentedSimulator(Simulator):
    """Simulator that attributes every event to a partition and feeds the
    conflict tracker through the kernel's hooked drain."""

    def __init__(self) -> None:
        super().__init__()
        self.tracker = ConflictTracker()
        self._resolver: Optional[PartitionResolver] = None
        self._tokens: Dict[int, int] = {}
        self._next_token = 0
        self._current_token: Optional[int] = None
        self.enable_hooks()

    def bind_machine(self, machine) -> ConflictTracker:
        """Resolve partitions against ``machine`` and instrument it.

        Must be called after the machine is built (on this simulator) and
        before it runs.
        """
        self._resolver = PartitionResolver(machine)
        instrument_machine(machine, self.tracker)
        return self.tracker

    def _partition_of(self, callback) -> str:
        resolver = self._resolver
        if resolver is not None:
            return resolver.resolve_callback(callback)
        owner = getattr(callback, "__self__", None)
        name = getattr(owner, "name", "") if owner is not None else ""
        return partition_from_name(name) or EXTERNAL

    # -- kernel hooks -----------------------------------------------------
    def on_enqueue(self, event, parent) -> None:
        token = self._next_token
        self._next_token = token + 1
        self._tokens[id(event)] = token
        if parent is not None and self._current_token is not None:
            self.tracker.note_parent(token, self._current_token)
            if event.time == self.now:
                # Same-cycle schedule fan-in: a partition executes its
                # same-cycle events in creation order, so two events (in
                # any partitions) that each enqueue a same-cycle child
                # into partition P fix those children's relative order.
                # The children share P's node state, so the parents'
                # order is physics — record the enqueue as a write to a
                # per-target-partition scheduling key and let it surface
                # as an ordinary conflict edge.
                target = self._partition_of(event.callback)
                self.tracker.access("schedule", f"{target}.schedule", True)

    def on_execute(self, event) -> None:
        token = self._tokens.pop(id(event), None)
        self._current_token = token
        self.tracker.begin_event(event.time, token, self._partition_of(event.callback))

    def finish(self) -> ConflictTracker:
        """Flush the last cycle and return the tracker."""
        self.tracker.flush()
        return self.tracker


# ----------------------------------------------------------------------
# Spec-level entry point and report assembly
# ----------------------------------------------------------------------
class AnalysisError(RuntimeError):
    """Raised for unsupported analysis requests."""


def run_spec_machine(spec, simulator: Optional[Simulator] = None):
    """Build and run one macro :class:`ExperimentSpec` point.

    Returns ``(machine, workload_result)``.  Mirrors the api runner's
    ``_run_macro`` path, but accepts an injected simulator so the
    instrumented/shuffled kernels can drive the identical workload.
    """
    from repro.apps import create_workload
    from repro.node.machine import Machine

    spec = spec.validate()
    if spec.kind != "macro":
        raise AnalysisError(
            f"partition analysis runs macro specs only, got kind={spec.kind!r}"
        )
    machine = Machine.from_spec(spec, simulator=simulator)
    bind = getattr(simulator, "bind_machine", None)
    if bind is not None:
        bind(machine)
    kwargs = dict(spec.workload_kwargs)
    kwargs.setdefault("seed", spec.resolved_seed())
    workload = create_workload(spec.workload, scale=spec.scale, **kwargs)
    result = workload.run(machine, max_cycles=spec.max_cycles or 2_000_000_000)
    return machine, result


def analyze_spec(spec) -> Tuple[ConflictTracker, object]:
    """Run one spec under the instrumented kernel; returns (tracker, result)."""
    sim = InstrumentedSimulator()
    _machine, result = run_spec_machine(spec, simulator=sim)
    return sim.finish(), result


@dataclass
class ConflictReport:
    """Merged conflict analysis over a set of experiment points."""

    points: List[Dict] = field(default_factory=list)

    def add_point(self, spec, tracker: ConflictTracker, cycles: int) -> None:
        self.points.append(
            {
                "spec": {
                    "workload": spec.workload,
                    "device": spec.device,
                    "bus": spec.bus,
                    "num_nodes": spec.num_nodes,
                    "scale": spec.scale,
                    "fabric": spec.params.get("fabric", "ideal"),
                },
                "cycles": cycles,
                **tracker.to_dict(),
            }
        )

    @property
    def mediation_only(self) -> bool:
        return all(point["mediation_only"] for point in self.points)

    def to_dict(self) -> Dict:
        merged: Dict[Tuple[str, str, str], int] = {}
        for point in self.points:
            for edge in point["edges"]:
                key = (edge["partitions"][0], edge["partitions"][1], edge["category"])
                merged[key] = merged.get(key, 0) + edge["count"]
        return {
            "schema": "partition_conflict_report/v1",
            "mediation_only": self.mediation_only,
            "merged_edges": [
                {"partitions": [a, b], "category": cat, "count": count}
                for (a, b, cat), count in sorted(
                    merged.items(), key=lambda kv: (-kv[1], kv[0])
                )
            ],
            "points": self.points,
        }

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")


# ----------------------------------------------------------------------
# Deterministic two-partition fixture (self-test + unit tests)
# ----------------------------------------------------------------------
def conflict_fixture(conflict_cycle: int = 100):
    """A minimal two-partition run with one known conflicting cycle.

    Two processes — partitions ``node0`` and ``node1`` by name — touch one
    tracked queue in the same cycle: node0 appends (write), node1 polls
    (read), with no causal link.  Returns the finished tracker; the
    expected edge is ``node0 <-> node1`` on ``ni_queue`` first seen at
    ``conflict_cycle``.
    """
    from repro.sim.process import start_process

    sim = InstrumentedSimulator()
    queue = TrackedDeque(sim.tracker, "ni_queue", "fixture.queue")

    def writer():
        yield conflict_cycle
        queue.append("payload")
        yield 10

    def reader():
        yield conflict_cycle
        if queue:
            queue.popleft()
        yield 10

    start_process(sim, writer(), name="node0.fixture")
    start_process(sim, reader(), name="node1.fixture")
    sim.run()
    return sim.finish()
