"""Generated registry of statistics keys produced anywhere in ``src/repro``.

Stat counters (:class:`repro.sim.stats.Counter`) are schema-less string
keys: a consumer asking for ``"membus_ocupancy_cycles"`` gets a silent zero
instead of an error.  The ``STATKEY`` lint rule closes that hole by
checking every *consumed* literal against the registry this module
generates from the *producer* sites:

* ``X.add("key", ...)`` calls,
* subscript stores ``counts["key"] += n`` / ``stats["key"] = n`` on
  receivers whose terminal name is stats-shaped (``stats``, ``raw``,
  ``counts``, ...),
* f-string producers (``stats.add(f"poll_{kind}")``) and module-level
  ``*_KEY`` dict-comprehension values (the precomputed per-op key tables of
  the bus), which register a regex *pattern* with the dynamic part
  wildcarded.

The registry is regenerated on every lint run — it is derived state, never
checked in — and can be dumped with ``python -m repro.analysis statkeys``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set

from repro.analysis.ownership import SRC_ROOT, iter_modules

#: Terminal receiver names treated as stat-counter objects by the
#: producer/consumer heuristics (``self.stats``, ``agent.stats.raw``,
#: ``counts``, ...).
STAT_RECEIVER_NAMES = frozenset(
    {"stats", "raw", "counts", "_counts", "txn_counts", "counters", "device_stats"}
)


def _terminal_name(node: ast.AST) -> Optional[str]:
    """The last identifier of a Name/Attribute chain, else None."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_stat_receiver(node: ast.AST) -> bool:
    name = _terminal_name(node)
    return name is not None and name in STAT_RECEIVER_NAMES


def _fstring_pattern(node: ast.JoinedStr) -> Optional[str]:
    """Regex for an f-string key: literal parts kept, holes wildcarded."""
    parts: List[str] = []
    literal = False
    for value in node.values:
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            parts.append(re.escape(value.value))
            literal = True
        else:
            parts.append(".+")
    if not literal:
        return None  # a pure hole would match everything
    return "".join(parts)


@dataclass
class StatKeyRegistry:
    """All stat keys the source tree can produce."""

    literals: Set[str] = field(default_factory=set)
    patterns: List[str] = field(default_factory=list)
    producers: Dict[str, List[str]] = field(default_factory=dict)
    _compiled: Optional[List[re.Pattern]] = None

    def add_literal(self, key: str, site: str) -> None:
        self.literals.add(key)
        self.producers.setdefault(key, []).append(site)

    def add_pattern(self, pattern: str, site: str) -> None:
        if pattern not in self.patterns:
            self.patterns.append(pattern)
        self.producers.setdefault(f"~{pattern}", []).append(site)
        self._compiled = None

    def __contains__(self, key: str) -> bool:
        if key in self.literals:
            return True
        if self._compiled is None:
            self._compiled = [re.compile(p) for p in self.patterns]
        return any(p.fullmatch(key) for p in self._compiled)

    def to_dict(self) -> Dict:
        return {
            "literals": sorted(self.literals),
            "patterns": sorted(self.patterns),
            "producers": {k: sorted(v) for k, v in sorted(self.producers.items())},
        }


class _ProducerScan(ast.NodeVisitor):
    def __init__(self, registry: StatKeyRegistry, relpath: str):
        self.registry = registry
        self.relpath = relpath

    def _site(self, node: ast.AST) -> str:
        return f"{self.relpath}:{node.lineno}"

    def _register_key(self, key_node: ast.AST, site: str) -> None:
        if isinstance(key_node, ast.Constant) and isinstance(key_node.value, str):
            self.registry.add_literal(key_node.value, site)
        elif isinstance(key_node, ast.JoinedStr):
            pattern = _fstring_pattern(key_node)
            if pattern is not None:
                self.registry.add_pattern(pattern, site)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "add"
            and node.args
            and _is_stat_receiver(func.value)
        ):
            self._register_key(node.args[0], self._site(node))
        self.generic_visit(node)

    def _visit_store_target(self, target: ast.AST) -> None:
        if (
            isinstance(target, ast.Subscript)
            and _is_stat_receiver(target.value)
        ):
            self._register_key(target.slice, self._site(target))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._visit_store_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._visit_store_target(node.target)
        self.generic_visit(node)


def _scan_key_tables(tree: ast.Module, registry: StatKeyRegistry, relpath: str) -> None:
    """Register f-string values of module-level ``*_KEY`` dict comprehensions.

    The bus precomputes per-op stat keys once (``_TXN_OP_KEY = {op:
    f"txn_{op.value}" ...}``) and then stores through them dynamically;
    the comprehension value is the only static trace of those key shapes.
    """
    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        name = _terminal_name(stmt.targets[0]) if len(stmt.targets) == 1 else None
        if name is None or "KEY" not in name.upper():
            continue
        value = stmt.value
        if isinstance(value, ast.DictComp) and isinstance(value.value, ast.JoinedStr):
            pattern = _fstring_pattern(value.value)
            if pattern is not None:
                registry.add_pattern(pattern, f"{relpath}:{stmt.lineno}")


def generate_registry(root: Path = SRC_ROOT) -> StatKeyRegistry:
    """Scan every module under ``root`` and build the producer registry."""
    registry = StatKeyRegistry()
    for relpath, path in iter_modules(root):
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        except SyntaxError:
            continue
        _ProducerScan(registry, relpath).visit(tree)
        _scan_key_tables(tree, registry, relpath)
    return registry


def consumed_keys(tree: ast.AST) -> List[tuple]:
    """``(lineno, col, key)`` for every stat-key literal a module consumes.

    Consumers are ``X.get("key" [, default])`` calls and subscript *loads*
    ``X["key"]`` on stats-shaped receivers.
    """
    out: List[tuple] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "get"
                and node.args
                and _is_stat_receiver(func.value)
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                out.append((node.lineno, node.col_offset, node.args[0].value))
        elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
            if (
                _is_stat_receiver(node.value)
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)
            ):
                out.append((node.lineno, node.col_offset, node.slice.value))
    return out
