"""Partition-safety analyzer: lint, conflict detection, determinism.

Three cooperating passes that check the simulator's partition discipline
(the property the PDES roadmap item depends on):

* :mod:`repro.analysis.lint` — static AST lint of simulator idiom
  (cross-partition access, module-level mutable state, ``__slots__`` on
  hot-path classes, wall-clock/RNG in simulated code, stat-key typos),
* :mod:`repro.analysis.conflicts` — dynamic same-cycle conflict detector
  producing ``partition_conflict_report.json``,
* :mod:`repro.analysis.determinism` — schedule-perturbation sanitizer
  proving stats stay bit-identical when independent same-cycle events are
  reordered.

Run ``python -m repro.analysis --help`` (or ``run.py analyze``) for the
command-line surface; ``python -m repro.analysis --self-test`` checks the
analyzer against planted defects.
"""

from repro.analysis.conflicts import (
    AnalysisError,
    ConflictEdge,
    ConflictReport,
    ConflictTracker,
    InstrumentedSimulator,
    analyze_spec,
    conflict_fixture,
    instrument_machine,
    run_spec_machine,
)
from repro.analysis.determinism import (
    DeterminismResult,
    OrderShuffleSimulator,
    TrackedShuffleSimulator,
    diff_fingerprints,
    fingerprint_digest,
    machine_fingerprint,
    sanitize_spec,
)
from repro.analysis.lint import (
    Finding,
    LintReport,
    Rule,
    lint_source,
    lint_tree,
    register_rule,
)
from repro.analysis.partitions import EXTERNAL, PartitionResolver, partition_from_name
from repro.analysis.statkeys import StatKeyRegistry, generate_registry

__all__ = [
    "AnalysisError",
    "ConflictEdge",
    "ConflictReport",
    "ConflictTracker",
    "DeterminismResult",
    "EXTERNAL",
    "Finding",
    "InstrumentedSimulator",
    "LintReport",
    "OrderShuffleSimulator",
    "PartitionResolver",
    "Rule",
    "StatKeyRegistry",
    "TrackedShuffleSimulator",
    "analyze_spec",
    "conflict_fixture",
    "diff_fingerprints",
    "fingerprint_digest",
    "generate_registry",
    "instrument_machine",
    "lint_source",
    "lint_tree",
    "machine_fingerprint",
    "partition_from_name",
    "register_rule",
    "run_spec_machine",
    "sanitize_spec",
]
