"""One-shot helper: capture golden device stats for tests/test_device_golden.py.

Run from the repo root with ``PYTHONPATH=src:tests python tests/_capture_golden.py``.
The output JSON is pasted into test_device_golden.py as GOLDEN.
"""

import json

from conftest import build_machine, run_ping_pong, run_stream
from repro.api import ExperimentSpec, run_point

DEVICES = ("NI2w", "CNI4", "CNI16Q", "CNI512Q", "CNI16Qm")

golden = {}
for device in DEVICES:
    entry = {}
    for size in (16, 256):
        spec = ExperimentSpec(
            kind="latency", device=device, bus="memory",
            message_bytes=size, iterations=10, warmup=4, num_nodes=2,
        )
        entry[f"latency_{size}"] = run_point(spec).metrics["round_trip_cycles"]
    spec = ExperimentSpec(
        kind="macro", device=device, bus="memory",
        workload="em3d", scale=0.25, num_nodes=4,
    )
    metrics = run_point(spec).metrics
    entry["macro_cycles"] = metrics["cycles"]
    entry["macro_membus"] = metrics["memory_bus_occupancy"]
    entry["macro_netmsgs"] = metrics["network_messages"]

    machine = build_machine(device, "memory", num_nodes=2)
    cycles, _ = run_ping_pong(machine, payload_bytes=64, rounds=4)
    entry["pingpong_cycles"] = cycles

    machine = build_machine(device, "memory", num_nodes=2)
    run_stream(machine, payload_bytes=244, count=8)
    entry["stream_ni0"] = machine.nodes[0].ni.stats.as_dict()
    entry["stream_ni1"] = machine.nodes[1].ni.stats.as_dict()
    entry["stream_membus"] = machine.total_memory_bus_occupancy()
    golden[device] = entry

print(json.dumps(golden, indent=1, sort_keys=True))
