"""Partition-safety analyzer: lint rules, conflict detector, sanitizer, CLI."""

import json
import re

import pytest

from repro.analysis import lint as lint_mod
from repro.analysis import determinism as determinism_mod
from repro.analysis.__main__ import main as analysis_main, matrix_specs
from repro.analysis.conflicts import (
    InstrumentedSimulator,
    TrackedDeque,
    analyze_spec,
    conflict_fixture,
    run_spec_machine,
)
from repro.analysis.determinism import (
    OrderShuffleSimulator,
    _probe_run,
    diff_fingerprints,
    machine_fingerprint,
    sanitize_spec,
    strip_elided,
)
from repro.analysis.lint import FIXTURES, Finding, Rule, lint_source, lint_tree, parse_waivers, register_rule
from repro.analysis.partitions import EXTERNAL, PartitionResolver, partition_from_name
from repro.analysis.statkeys import generate_registry
from repro.api import ExperimentSpec
from repro.node.machine import Machine
from repro.sim.engine import Simulator
from repro.sim.process import start_process


SMALL_SPEC = ExperimentSpec(
    kind="macro", device="CNI16Q", bus="memory",
    workload="em3d", scale=0.25, num_nodes=4,
)


# ----------------------------------------------------------------------
# Lint rules
# ----------------------------------------------------------------------
@pytest.mark.parametrize("rule_id", sorted(FIXTURES))
def test_each_rule_fires_on_its_fixture(rule_id):
    relpath, snippet, line = FIXTURES[rule_id]
    findings = lint_source(snippet, relpath)
    assert any(f.rule == rule_id and f.line == line for f in findings), findings


@pytest.mark.parametrize("rule_id", sorted(FIXTURES))
def test_waiver_comment_suppresses_each_rule(rule_id):
    relpath, snippet, line = FIXTURES[rule_id]
    lines = snippet.splitlines()
    lines[line - 1] += f"  # repro: allow[{rule_id}] unit-test waiver"
    findings = lint_source("\n".join(lines) + "\n", relpath)
    hits = [f for f in findings if f.rule == rule_id and f.line == line]
    assert hits and all(f.waived for f in hits)
    assert hits[0].waiver_reason == "unit-test waiver"


def test_lint_self_test_passes():
    assert lint_mod.self_test() == []


def test_cross_rule_ignores_local_variable_attributes():
    # `graph.nodes` on a local is legal; only attribute *chains* reaching
    # another component's .nodes/.messaging are cross-partition.
    findings = lint_source(
        "def local_ok(graph):\n    return graph.nodes\n", "ni/_fixture.py"
    )
    assert not [f for f in findings if f.rule == "CROSS"]


def test_mutstate_rule_exempts_dunder_exports():
    findings = lint_source(
        '__all__ = ["a", "b"]\n', "ni/_fixture.py"
    )
    assert not [f for f in findings if f.rule == "MUTSTATE"]


def test_waiver_parser_handles_multiple_rules():
    waivers = parse_waivers(
        ["x = {}  # repro: allow[MUTSTATE, SLOTS] two rules at once"]
    )
    rules, reason = waivers[1]
    assert rules == frozenset({"MUTSTATE", "SLOTS"})
    assert reason == "two rules at once"


def test_register_rule_plugin():
    class NoTodoRule(Rule):
        id = "NOTODO"
        summary = "test-only rule"

        def applies_to(self, module):
            return True

        def check(self, module, context):
            for i, line in enumerate(module.lines, 1):
                if "TODO" in line:
                    yield i, 0, "TODO found"

    register_rule(NoTodoRule)
    try:
        findings = lint_source("x = 1  # TODO later\n", "ni/_fixture.py")
        assert any(f.rule == "NOTODO" for f in findings)
        with pytest.raises(Exception):
            register_rule(NoTodoRule)  # duplicate id without replace=
    finally:
        del lint_mod._RULES["NOTODO"]


def test_repo_tree_is_lint_clean():
    report = lint_tree()
    assert report.modules_checked > 50
    active = [f.location() + " " + f.rule for f in report.active]
    assert active == [], f"unwaived lint findings: {active}"
    # Every waiver carries a justification.
    assert all(f.waiver_reason for f in report.waived)


def test_stat_key_registry_contains_real_keys():
    registry = generate_registry()
    for key in ("local_deliveries", "barriers", "messages_sent"):
        assert key in registry
    assert "txn_on_memory" in registry  # via the _TXN_BUS_KEY pattern
    assert "no_such_stat_key_xyz" not in registry


# ----------------------------------------------------------------------
# Partition attribution
# ----------------------------------------------------------------------
def test_partition_from_name():
    assert partition_from_name("node3.CNI16Q.extract") == "node3"
    assert partition_from_name("workload-cpu2") == "node2"
    assert partition_from_name("unrelated") is None


def test_partition_map_and_resolver():
    machine = Machine.build(num_nodes=2, ni_name="CNI16Q")
    pmap = machine.partition_map()
    assert set(pmap) == {"fabric", "node0", "node1"}
    resolver = PartitionResolver(machine)
    node0 = machine.nodes[0]
    assert resolver.resolve_owner(node0.ni) == "node0"
    assert resolver.resolve_owner(node0.proc_cache) == "node0"
    assert resolver.resolve_owner(machine.fabric) == "fabric"
    assert resolver.resolve_owner(object()) == EXTERNAL
    # Bound-method resolution: NI delivery callback vs fabric delivery.
    assert resolver.resolve_callback(node0.ni._on_network_message) == "node0"
    assert resolver.resolve_callback(lambda: None) == EXTERNAL


def test_machine_rejects_used_simulator():
    sim = Simulator()
    sim.schedule_call(0, lambda: None, ())
    sim.run()
    with pytest.raises(ValueError):
        Machine.build(num_nodes=2, ni_name="CNI16Q", simulator=sim)


# ----------------------------------------------------------------------
# Conflict detector
# ----------------------------------------------------------------------
def test_conflict_fixture_finds_planted_conflict():
    tracker = conflict_fixture(conflict_cycle=100)
    edge = tracker.edges.get(("node0", "node1", "ni_queue"))
    assert edge is not None
    assert edge.first_cycle == 100
    assert edge.count == 1
    assert edge.example_key == "fixture.queue"
    assert frozenset(("node0", "node1")) in tracker.constraint_pairs()
    # Direct node-to-node sharing is exactly what mediation_only rejects.
    assert tracker.to_dict()["mediation_only"] is False


def test_causally_ordered_accesses_do_not_conflict():
    # node0 writes the queue then wakes node1 in the same cycle; node1's
    # read is a causal descendant of the write, so no conflict edge.
    from repro.sim.process import Signal

    sim = InstrumentedSimulator()
    queue = TrackedDeque(sim.tracker, "ni_queue", "fixture.queue")
    ready = Signal(sim, name="fixture.ready")

    def writer():
        yield 100
        queue.append("payload")
        ready.fire()
        yield 1

    def reader():
        yield ready  # waits from cycle 0; woken same-cycle by the fire
        if queue:
            queue.popleft()
        yield 1

    start_process(sim, writer(), name="node0.fixture")
    start_process(sim, reader(), name="node1.fixture")
    sim.run()
    tracker = sim.finish()
    assert ("node0", "node1", "ni_queue") not in tracker.edges


def test_accesses_outside_events_are_ignored():
    sim = InstrumentedSimulator()
    queue = TrackedDeque(sim.tracker, "ni_queue", "fixture.queue")
    queue.append("setup")  # no event executing: construction-time access
    assert sim.tracker.access_count == 0


def test_instrumented_macro_matches_plain_kernel():
    tracker, result = analyze_spec(SMALL_SPEC)
    _machine, plain = run_spec_machine(SMALL_SPEC)
    assert result.cycles == plain.cycles
    report = tracker.to_dict()
    assert report["mediation_only"] is True
    # Real conflicts exist (fabric deliveries race node-side polls)...
    assert report["edges"]
    # ...but every edge is mediated: either the fabric is an endpoint, or
    # the racing structure is itself a mediation layer (e.g. node<->node
    # edges on the fabric's injection arbitration).
    for edge in report["edges"]:
        assert (
            "fabric" in edge["partitions"]
            or edge["category"] in ("bus", "directory", "fabric")
        ), edge
    assert set(report["events_by_partition"]) >= {"fabric", "node0", "node1"}


def test_rejects_non_macro_spec():
    from repro.analysis.conflicts import AnalysisError

    spec = ExperimentSpec(kind="latency", device="CNI16Q", bus="memory")
    with pytest.raises(AnalysisError):
        run_spec_machine(spec)


# ----------------------------------------------------------------------
# Determinism sanitizer
# ----------------------------------------------------------------------
def test_sanitizer_self_test_passes():
    assert determinism_mod.self_test() == []


def test_shuffled_run_is_reproducible_per_seed():
    first = _probe_run(7, dependent=True)
    second = _probe_run(7, dependent=True)
    assert first == second


def test_strip_elided_and_diff():
    base = {"cycles": 10, "elided_cycles": 5, "inner": {"elided_spins": 1, "x": 2}}
    assert strip_elided(base) == {"cycles": 10, "inner": {"x": 2}}
    diffs = diff_fingerprints({"a": 1, "b": [1, 2]}, {"a": 1, "b": [1, 3]})
    assert diffs == ["b[1]: 2 != 3"]


def test_order_shuffle_simulator_groups_by_process_name():
    sim = OrderShuffleSimulator(seed=1)

    def proc():
        yield 1

    process = start_process(sim, proc(), name="node4.worker")
    # The resume callback groups under the process's partition.
    class FakeEvent:
        callback = process._resume

    assert sim.event_group(FakeEvent) == "node4"


def test_sanitize_small_macro_point_is_deterministic():
    # Regression pin (reduced-scale): the fig8-style point must stay
    # bit-identical under shuffled same-cycle tie-breaking.
    outcome = sanitize_spec(SMALL_SPEC, seeds=(11, 23))
    assert outcome.ok, [run.to_dict() for run in outcome.runs]
    # The shuffles genuinely exercised alternative interleaves.
    assert all(run.shuffle_choices > 0 for run in outcome.runs)
    assert outcome.conflict_summary["mediation_only"] is True
    # Derived constraints are empirical; every endpoint is the fabric or a
    # node (node<->node pairs arise from fabric injection arbitration).
    assert outcome.constraints
    assert any("fabric" in pair for pair in outcome.constraints)
    for pair in outcome.constraints:
        for label in pair:
            assert label == "fabric" or re.fullmatch(r"node\d+", label), pair


def test_sanitize_mesh_fabric_point_is_deterministic():
    spec = ExperimentSpec(
        kind="macro", device="CNI4Q", bus="memory",
        workload="gauss", scale=0.25, num_nodes=4,
        params={"fabric": "mesh"},
    )
    outcome = sanitize_spec(spec, seeds=(11,))
    assert outcome.ok, [run.to_dict() for run in outcome.runs]


def test_sanitize_appbt_backpressure_point_is_deterministic():
    # Regression pin for the constraint-closure fixpoint: appbt's hot-spot
    # traffic through the 4-block queue device is the pattern where a
    # shuffled schedule first manufactured fabric<->node races the
    # canonical run never exhibited (full-scale fig8 drifted until the
    # sanitizer learned to close its constraint set over them).
    spec = ExperimentSpec(
        kind="macro", device="CNI4Q", bus="memory",
        workload="appbt", scale=0.25, num_nodes=4,
    )
    outcome = sanitize_spec(spec, seeds=(11, 23))
    assert outcome.ok, [run.to_dict() for run in outcome.runs]
    # Schema: every run reports how many rounds closure took, and any
    # pairs the fixpoint added are surfaced.
    assert all(run.fixpoint_rounds >= 1 for run in outcome.runs)
    payload = outcome.to_dict()
    assert "inferred_constraints" in payload
    assert payload["runs"][0]["fixpoint_rounds"] >= 1


def test_fingerprint_covers_all_stat_surfaces():
    machine, result = run_spec_machine(SMALL_SPEC)
    fingerprint = machine_fingerprint(machine, result)
    assert set(fingerprint) == {
        "cycles", "memory_bus_occupancy", "io_bus_occupancy",
        "user_messages", "network_messages", "network", "coherence",
        "nodes", "messaging",
    }
    blob = json.dumps(fingerprint, sort_keys=True, default=str)
    assert "elided" not in blob


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_self_test(capsys):
    assert analysis_main(["--self-test"]) == 0
    assert "planted defects" in capsys.readouterr().out


def test_cli_lint_json(capsys):
    assert analysis_main(["lint", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["findings"] == []
    assert payload["modules_checked"] > 50
    assert "counts_by_rule" in payload


def test_cli_statkeys(capsys):
    assert analysis_main(["statkeys", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert "local_deliveries" in payload["literals"]


def test_cli_conflicts_report_shape(tmp_path, capsys):
    out = tmp_path / "partition_conflict_report.json"
    code = analysis_main(
        [
            "conflicts", "--quick", "--out", str(out),
            "--workloads", "em3d", "--devices", "CNI16Q", "--fabrics", "ideal",
        ]
    )
    assert code == 0
    payload = json.loads(out.read_text())
    assert payload["schema"] == "partition_conflict_report/v1"
    assert payload["mediation_only"] is True
    assert payload["points"]
    point = payload["points"][0]
    assert point["spec"]["workload"] == "em3d"
    assert point["cycles"] > 0
    for edge in payload["merged_edges"]:
        assert len(edge["partitions"]) == 2 and edge["count"] > 0


def test_matrix_specs_cover_full_grid():
    specs = matrix_specs(num_nodes=16, scale=1.0)
    assert len(specs) == 12  # 3 workloads x 2 devices x 2 fabrics
    fabrics = {s.params.get("fabric", "ideal") for s in specs}
    assert fabrics == {"ideal", "mesh4x4"}
    assert {s.device for s in specs} == {"CNI4Q", "CNI16Q"}


def test_run_py_analyze_forwards(capsys):
    from repro.experiments.run import main as run_main

    assert run_main(["analyze", "--self-test"]) == 0
    assert "planted defects" in capsys.readouterr().out
