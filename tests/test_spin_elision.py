"""Spin-wait elision: bit-identical timing, exact resume, and bookkeeping.

The elision subsystem (:mod:`repro.sim.spinwait`) must be *invisible* in
simulated physics: every cycle count, bus occupancy and device counter has
to match the spinning simulation exactly, with only the kernel-event count
shrinking.  These tests pin that equivalence at three levels:

* kernel-level: a scripted producer/consumer pair swept over every fire
  alignment (before the first boundary, during the first measured
  iteration, exactly on a boundary, mid-backoff) completes at the same
  simulated time with and without elision;
* machine-level: an on/off grid over the coherent NI devices and two
  macro workloads compares cycles, occupancies and poll counters;
* policy-level: uncached-poll devices (NI2w, CNI4 — whose polls occupy
  the bus) never elide, and ``max_cycles`` expiring mid-sleep still
  raises :class:`WorkloadHangError` in both modes.
"""

import pytest

from conftest import build_machine
from repro.apps import create_workload
from repro.common.params import DEFAULT_PARAMS
from repro.node.machine import Machine, WorkloadHangError
from repro.sim import SPIN_EMPTY, SPIN_PROGRESS, Signal, Simulator, SpinGuard, spin_wait, start_process

ELIDED_KEYS = ("elided_spins", "elided_events", "elided_cycles")


# ----------------------------------------------------------------------
# Kernel-level exact-resume sweep
# ----------------------------------------------------------------------
def _scripted_wait(fire_at: int, elide: bool, backoff: int = 20):
    """One consumer spinning/sleeping for a flag a producer sets at ``fire_at``.

    The producer mirrors the timing shape of a device-side snoop: its final
    hop is scheduled one cycle before the fire, so at a boundary tie the
    spinning consumer's wake-up (scheduled a whole backoff earlier) runs
    first — exactly the ordering the elision arithmetic assumes.

    Returns (completion_time, executed_events, elided_events).
    """
    sim = Simulator()
    state = {"ready": False, "done_at": None}
    signal = Signal(sim, "arrival")
    txn = {"txn_total": 0}

    def producer():
        if fire_at > 1:
            yield fire_at - 1
        yield 1
        state["ready"] = True
        signal.fire()

    def body():
        found = state["ready"]  # observed at the iteration boundary
        yield 1
        return SPIN_PROGRESS if found else SPIN_EMPTY

    guard = None
    if elide:
        guard = SpinGuard(
            sim, signal, lambda: not state["ready"], counters=(), txn_counts=txn,
            device_stats={"elided_spins": 0, "elided_events": 0, "elided_cycles": 0},
        )

    def consumer():
        yield from spin_wait(sim, lambda: state["ready"], body, backoff, guard)
        state["done_at"] = sim.now

    start_process(sim, producer(), name="producer")
    start_process(sim, consumer(), name="consumer")
    sim.run()
    return state["done_at"], sim.event_count, sim.elided_events


@pytest.mark.parametrize("fire_at", list(range(2, 140)))
def test_scripted_wait_is_cycle_exact_for_every_fire_alignment(fire_at):
    """Sweep the fire time across several spin periods: before the first
    boundary, during the first measured iteration, exactly on boundaries,
    and inside backoff windows — completion time must never change."""
    spin_done, spin_events, _ = _scripted_wait(fire_at, elide=False)
    elided_done, elided_events, elided = _scripted_wait(fire_at, elide=True)
    assert elided_done == spin_done
    # The wake machinery (signal resume + two-hop realignment) costs at
    # most three events; everything beyond that must be savings.
    assert elided_events <= spin_events + 3


def test_scripted_wait_actually_elides_long_waits():
    spin_done, spin_events, _ = _scripted_wait(500, elide=False)
    elided_done, elided_events, elided = _scripted_wait(500, elide=True)
    assert elided_done == spin_done
    assert elided > 0
    assert elided_events < spin_events - 10  # dozens of iterations slept through


def test_resume_margin_executes_the_fire_boundary():
    """With resume_margin=1 a fire exactly on an iteration boundary resumes
    *at* that boundary (the blocked-send observation sits one cycle into
    the iteration); with margin 0 that boundary is elided and the wait
    resumes one period later (the poll-loop rule)."""

    def run(margin):
        sim = Simulator()
        state = {"ready": False, "done_at": None}
        signal = Signal(sim, "arrival")

        def producer():
            # Boundaries of the 21-cycle grid below fall at 0, 21, 42, 63;
            # fire exactly on the 63 boundary (with the one-cycle hop that
            # mirrors device-side scheduling).
            yield 62
            yield 1
            state["ready"] = True
            signal.fire()

        def body():
            found = state["ready"]
            yield 1
            return SPIN_PROGRESS if found else SPIN_EMPTY

        guard = SpinGuard(
            sim, signal, lambda: not state["ready"], counters=(),
            txn_counts={}, device_stats={"elided_spins": 0, "elided_events": 0, "elided_cycles": 0},
            resume_margin=margin,
        )

        def consumer():
            yield from spin_wait(sim, lambda: state["ready"], body, 20, guard)
            state["done_at"] = sim.now

        start_process(sim, producer(), name="p")
        start_process(sim, consumer(), name="c")
        sim.run()
        return state["done_at"]

    assert run(0) == 84  # fire boundary elided; resume one period later
    assert run(1) == 63  # fire boundary executed for real


# ----------------------------------------------------------------------
# Machine-level on/off equivalence grid
# ----------------------------------------------------------------------
def _run_macro(device: str, workload_name: str, elide: bool):
    params = DEFAULT_PARAMS.with_overrides(spin_elision=elide)
    machine = Machine.build(device, "memory", num_nodes=4, params=params)
    workload = create_workload(workload_name, scale=0.25)
    cycles = machine.run_programs(workload.programs(machine), max_cycles=2_000_000_000)
    per_node = []
    for node in machine.nodes:
        ni_stats = node.ni.stats.as_dict()
        for key in ELIDED_KEYS:
            ni_stats.pop(key, None)
        per_node.append(
            {
                "ni": ni_stats,
                "cache": node.proc_cache.stats.as_dict(),
                "bus": node.interconnect.stats.as_dict(),
            }
        )
    return {
        "cycles": cycles,
        "membus": machine.total_memory_bus_occupancy(),
        "iobus": machine.total_io_bus_occupancy(),
        "nodes": per_node,
        "ml": [ml.stats.as_dict() for ml in machine.messaging],
    }, machine


@pytest.mark.parametrize("device", ["CNI4", "CNI16Q", "CNI512Q", "CNI16Qm"])
@pytest.mark.parametrize("workload_name", ["gauss", "em3d"])
def test_elision_is_bit_identical(device, workload_name):
    """Each coherent NI device x two workloads: cycles, occupancies, poll
    counters and every other physics counter match the spinning run."""
    on, machine_on = _run_macro(device, workload_name, elide=True)
    off, machine_off = _run_macro(device, workload_name, elide=False)
    assert on == off
    assert machine_off.sim.elided_events == 0
    if device != "CNI4":  # CQ devices actually elide on these workloads
        assert machine_on.sim.elided_events > 0
        assert machine_on.sim.event_count < machine_off.sim.event_count


def test_cni4_uncached_status_polls_never_elide():
    """CNI4 polls through an uncached status register — bus traffic every
    iteration, so nothing may be elided even with the toggle on."""
    _, machine = _run_macro("CNI4", "gauss", elide=True)
    assert machine.sim.elided_events == 0
    assert machine.spin_elision_stats() == {
        "elided_events": 0, "elided_cycles": 0, "elided_spins": 0,
    }


def test_ni2w_is_never_elided():
    _, machine = _run_macro("NI2w", "gauss", elide=True)
    assert machine.sim.elided_events == 0
    assert machine.sim.elided_cycles == 0
    for node in machine.nodes:
        for key in ELIDED_KEYS:
            assert node.ni.stats.get(key) == 0


# ----------------------------------------------------------------------
# Edge cases
# ----------------------------------------------------------------------
@pytest.mark.parametrize("elide", [True, False])
def test_max_cycles_expiring_mid_sleep_raises_hang_error(elide):
    """A wait whose message never comes must still surface as a hang —
    identically whether the waiter is spinning or sleeping on the signal."""
    params = DEFAULT_PARAMS.with_overrides(spin_elision=elide)
    machine = Machine.build("CNI16Qm", "memory", num_nodes=2, params=params)
    ml0, ml1 = machine.messaging

    def sender():
        yield from ml0.processor.compute(10)

    def stuck_receiver():
        yield from ml1.poll_wait(lambda: False)

    with pytest.raises(WorkloadHangError):
        machine.run_programs([sender(), stuck_receiver()], max_cycles=100_000)


def test_toggle_off_restores_pure_spinning():
    params = DEFAULT_PARAMS.with_overrides(spin_elision=False)
    machine = Machine.build("CNI16Qm", "memory", num_nodes=2, params=params)
    for ml in machine.messaging:
        assert ml._recv_spin_guard is None
        assert ml._send_spin_guard is None


def test_device_home_drain_keeps_spinning():
    """Blocked senders that drain through proc_poll (device-homed queues)
    observe the receive queue too deep into each retry to resume exactly,
    so only the drain-free CNI16Qm gets a send-side guard."""
    for device, expect_send_guard in (("CNI16Q", False), ("CNI512Q", False), ("CNI16Qm", True)):
        machine = Machine.build(device, "memory", num_nodes=2)
        ml = machine.messaging[0]
        assert ml._recv_spin_guard is not None, device
        assert (ml._send_spin_guard is not None) is expect_send_guard, device


# ----------------------------------------------------------------------
# Stats surfacing
# ----------------------------------------------------------------------
def test_run_profile_reports_elision_counters():
    _, machine = _run_macro("CNI16Qm", "gauss", elide=True)
    profile = machine.sim.run_profile(max_events=0)
    assert "elided_events" in profile and "elided_cycles" in profile

    workload = create_workload("gauss", scale=0.25)
    machine2 = Machine.build("CNI16Qm", "memory", num_nodes=4)
    machine2.run_programs(workload.programs(machine2), profile=True)
    assert machine2.last_profile["elided_events"] > 0
    assert machine2.last_profile["elided_cycles"] > 0


def test_engine_metrics_expose_elision():
    from repro.api import ExperimentSpec, run_point

    spec = ExperimentSpec(
        kind="engine", device="CNI16Qm", bus="memory",
        workload="gauss", scale=0.25, num_nodes=4,
    )
    metrics = run_point(spec).metrics
    assert metrics["elided_events"] > 0
    assert 0.0 < metrics["elided_fraction"] < 1.0


def test_machine_and_node_rollups_expose_elision():
    _, machine = _run_macro("CNI16Qm", "gauss", elide=True)
    rollup = machine.spin_elision_stats()
    assert rollup["elided_events"] == machine.sim.elided_events > 0
    assert rollup["elided_cycles"] == machine.sim.elided_cycles > 0
    assert rollup["elided_spins"] > 0
    # The per-device counters flow through the existing node snapshots.
    snapshots = [node.stats_snapshot()["ni"] for node in machine.nodes]
    assert sum(snap.get("elided_spins", 0) for snap in snapshots) == rollup["elided_spins"]


# ----------------------------------------------------------------------
# Software-buffer readback regression (messaging.py bugfix)
# ----------------------------------------------------------------------
def test_software_buffered_messages_are_reread_from_their_own_address():
    """A drained message is copied to a rotating user-space buffer address;
    the later poll must re-read that same address (the old code always
    re-read the buffer base, touching cache lines the copy never used)."""
    machine = build_machine("CNI16Q", "memory", num_nodes=2)
    ml0, ml1 = machine.messaging
    counts = {0: 0, 1: 0}
    for node_id, ml in enumerate(machine.messaging):
        ml.register_handler(
            "flood",
            lambda m, s, n, b, node_id=node_id: counts.__setitem__(node_id, counts[node_id] + 1),
        )

    buffer_ops = {0: {"writes": [], "reads": []}, 1: {"writes": [], "reads": []}}
    for node_id, ml in enumerate(machine.messaging):
        base = ml._software_buffer_base
        limit = base + 256 * machine.params.cache_block_bytes
        proc = ml.processor
        orig_write, orig_read = proc.touch_write, proc.touch_read

        def touch_write(addr, size, _o=orig_write, _log=buffer_ops[node_id], _b=base, _l=limit):
            if _b <= addr < _l:
                _log["writes"].append(addr)
            return _o(addr, size)

        def touch_read(addr, size, _o=orig_read, _log=buffer_ops[node_id], _b=base, _l=limit):
            if _b <= addr < _l:
                _log["reads"].append(addr)
            return _o(addr, size)

        proc.touch_write, proc.touch_read = touch_write, touch_read

    n_messages = 30

    def program(node_id):
        ml = machine.messaging[node_id]
        for _ in range(n_messages):
            yield from ml.send_active_message(1 - node_id, "flood", 244)
        yield from ml.poll_wait(lambda: counts[node_id] >= n_messages)

    machine.run_programs([program(0), program(1)], max_cycles=400_000_000)
    assert counts == {0: n_messages, 1: n_messages}
    buffered = sum(ml.stats.get("messages_software_buffered") for ml in machine.messaging)
    assert buffered > 0, "scenario must actually exercise software buffering"
    for node_id in (0, 1):
        writes, reads = buffer_ops[node_id]["writes"], buffer_ops[node_id]["reads"]
        # every buffered message is read back once, from the address it was
        # written to, in FIFO order
        assert reads == writes[: len(reads)]
        if len(writes) > 1:
            assert len(set(writes)) > 1  # the rotating buffer actually rotates
