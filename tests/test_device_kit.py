"""End-to-end tests for the composable device kit: new taxonomy points,
the plugin API, the device-space presets and cache invalidation."""

import pytest

from conftest import build_machine, run_ping_pong, run_stream
from repro.api import (
    ExperimentSpec,
    ResultCache,
    SweepRunner,
    device_space_sweep,
    run_point,
)
from repro.api.spec import SpecError
from repro.common.types import BusKind
from repro.ni import ComposedNI, NI2w, register_device, unregister_device
from repro.ni.primitives import UncachedRecvPort, UncachedSendPort

#: Taxonomy points the paper never evaluated, all synthesized by the registry.
NEW_POINTS = ("NI16w", "NI128Q", "CNI64Q", "CNI16", "CNI4Qm")


class TestNewTaxonomyPointsRun:
    @pytest.mark.parametrize("device", NEW_POINTS)
    def test_macro_workload_completes_through_api(self, device):
        spec = ExperimentSpec(
            kind="macro", device=device, bus="memory",
            workload="em3d", scale=0.25, num_nodes=4,
        )
        metrics = run_point(spec).metrics
        assert metrics["cycles"] > 0
        assert metrics["network_messages"] > 0

    @pytest.mark.parametrize("device", NEW_POINTS)
    def test_ping_pong_completes(self, device):
        machine = build_machine(device, "memory", num_nodes=2)
        cycles, state = run_ping_pong(machine, payload_bytes=64, rounds=3)
        assert state["pongs"] == 3 and cycles > 0

    def test_streaming_delivers_in_order_on_generated_devices(self):
        for device in ("NI16w", "CNI64Q"):
            machine = build_machine(device, "memory", num_nodes=2)
            assert run_stream(machine, payload_bytes=244, count=10) == 10

    def test_bigger_coherent_queues_never_slower_to_stream(self):
        """CNI4Q's single-message queue serializes; CNI64Q pipelines."""
        m_small = build_machine("CNI4Q", "memory", num_nodes=2)
        run_stream(m_small, payload_bytes=244, count=16)
        m_big = build_machine("CNI64Q", "memory", num_nodes=2)
        run_stream(m_big, payload_bytes=244, count=16)
        assert m_big.sim.now <= m_small.sim.now


class TestGeneratedDeviceMechanics:
    def test_ni_q_family_pays_explicit_pointer_stores(self):
        """NI{n}Q publishes tail and head pointers with uncached stores."""
        m_q = build_machine("NI16Q", "memory", num_nodes=2)
        run_stream(m_q, payload_bytes=244, count=6)
        m_w = build_machine("NI16w", "memory", num_nodes=2)
        run_stream(m_w, payload_bytes=244, count=6)
        q_tx, w_tx = (m.nodes[0].ni.stats.get("uncached_stores") for m in (m_q, m_w))
        # One extra store per send (tail pointer); the receive side pays on
        # node 1.  Word counts are identical otherwise.
        assert q_tx == w_tx + 6
        q_rx = m_q.nodes[1].ni.stats.get("uncached_stores")
        w_rx = m_w.nodes[1].ni.stats.get("uncached_stores")
        assert q_rx == w_rx + 6

    def test_ni16w_fifo_scales_with_exposed_words(self):
        machine = build_machine("NI16w", "memory", num_nodes=2)
        assert machine.nodes[0].ni.fifo_messages == 32  # 2 per exposed word

    def test_cni16_exposes_multiple_cdr_slots(self):
        machine = build_machine("CNI16", "memory", num_nodes=2)
        ni = machine.nodes[0].ni
        assert ni.cdr_blocks == 16
        assert ni.send_port.slots == 4
        # Four in-flight messages fit before the sender sees a full device.
        run_stream(machine, payload_bytes=244, count=12)
        assert ni.stats.get("messages_sent") == 12

    def test_cni16_streams_faster_than_cni4(self):
        """Extra CDR slots push out CNI4's single-slot serialization knee."""
        m4 = build_machine("CNI4", "memory", num_nodes=2)
        run_stream(m4, payload_bytes=244, count=16)
        m16 = build_machine("CNI16", "memory", num_nodes=2)
        run_stream(m16, payload_bytes=244, count=16)
        assert m16.sim.now < m4.sim.now
        assert m16.nodes[0].ni.stats.get("send_full") < m4.nodes[0].ni.stats.get("send_full")

    def test_cni4qm_overflows_to_memory(self):
        machine = build_machine("CNI4Qm", "memory", num_nodes=2)
        ni = machine.nodes[0].ni
        assert ni.recv_home == "memory"
        assert ni.recv_q.capacity == 32   # 32x factor: 128 blocks / 4
        assert ni.send_q.capacity == 1


class TestGeneratedClassHygiene:
    def test_no_infrastructure_params_leak_into_tunables(self):
        """The synthesized __init__ must not advertise its self parameter."""
        from repro.ni import TaxonomyError, available_devices

        for info in available_devices():
            assert "ni_self" not in info.tunables and "self" not in info.tunables
        with pytest.raises(TaxonomyError):
            ExperimentSpec(device="CNI64Q", ni_kwargs={"ni_self": 1}).validate()

    def test_conflicting_fifo_sizing_kwargs_rejected(self):
        """Both sizing axes at once fail early, at spec/config validation."""
        from repro.ni import TaxonomyError

        with pytest.raises(TaxonomyError, match="only one of"):
            build_machine("NI16w", "memory", num_nodes=2,
                          fifo_messages=4, queue_blocks=64)
        with pytest.raises(TaxonomyError, match="only one of"):
            ExperimentSpec(device="NI128Q",
                           ni_kwargs={"fifo_messages": 4, "queue_blocks": 16}).validate()
        # A single alternative-axis override suppresses the generated
        # default instead of conflicting with it.
        machine = build_machine("NI16w", "memory", num_nodes=2, queue_blocks=64)
        assert machine.nodes[0].ni.fifo_messages == 16
        machine = build_machine("NI128Q", "memory", num_nodes=2, fifo_messages=8)
        assert machine.nodes[0].ni.fifo_messages == 8

    def test_zero_or_negative_queue_blocks_rejected(self):
        from repro.ni import NIError

        for bad in (0, -4):
            with pytest.raises(NIError, match="whole positive number"):
                build_machine("NI16Q", "memory", num_nodes=2, queue_blocks=bad)

    def test_partial_cdr_slot_sizing_rejected(self):
        from repro.ni import NIError

        with pytest.raises(NIError, match="whole number"):
            build_machine("CNI4", "memory", num_nodes=2, cdr_blocks=6)

    def test_synthesized_classes_pickle(self):
        import pickle

        from repro.ni import device_class

        cls = device_class("CNI64Q")
        assert pickle.loads(pickle.dumps(cls)) is cls
        assert cls.__module__ == "repro.ni.registry"

    def test_case_hint_only_suggests_legal_names(self):
        from repro.ni import TaxonomyError, parse_ni_name

        with pytest.raises(TaxonomyError) as excinfo:
            parse_ni_name("cni4w")  # case-fixed CNI4w is itself illegal
        assert "did you mean" not in str(excinfo.value)
        with pytest.raises(TaxonomyError, match="did you mean 'CNI4'"):
            parse_ni_name("cni4")


class TestBusPlacementRules:
    def test_generated_word_devices_allowed_on_cache_bus(self):
        machine = build_machine("NI16w", "cache", num_nodes=2)
        cycles, state = run_ping_pong(machine, payload_bytes=64, rounds=2)
        assert state["pongs"] == 2 and cycles > 0

    def test_generated_block_devices_rejected_on_cache_bus(self):
        from repro.node.node import NodeConfig, NodeConfigError

        for name in ("NI128Q", "CNI64Q"):
            with pytest.raises(NodeConfigError):
                NodeConfig(ni_name=name, ni_bus=BusKind.CACHE).validate()

    def test_generated_qm_devices_rejected_on_io_bus(self):
        from repro.node.node import NodeConfig, NodeConfigError

        with pytest.raises(NodeConfigError):
            NodeConfig(ni_name="CNI4Qm", ni_bus=BusKind.IO).validate()

    def test_generated_q_devices_allowed_on_io_bus(self):
        machine = build_machine("CNI64Q", "io", num_nodes=2)
        cycles, state = run_ping_pong(machine, payload_bytes=64, rounds=2)
        assert state["pongs"] == 2 and cycles > 0


class TestPluginDevices:
    def test_composed_plugin_runs_a_workload(self):
        @register_device("KitTestNI")
        class KitTestNI(ComposedNI):
            taxonomy_name = "KitTestNI"

            def __init__(self, *args, fifo_messages=8, **kwargs):
                super().__init__(*args, **kwargs)
                send_status = self.allocate_uncached_register()
                send_data = self.allocate_uncached_register()
                recv_status = self.allocate_uncached_register()
                recv_data = self.allocate_uncached_register()
                self._attach_ports(
                    UncachedSendPort(self, send_data, send_status, fifo_messages),
                    UncachedRecvPort(self, recv_data, recv_status, fifo_messages),
                )

        try:
            spec = ExperimentSpec(
                kind="macro", device="KitTestNI", bus="memory",
                workload="em3d", scale=0.25, num_nodes=4,
            )
            assert run_point(spec).metrics["cycles"] > 0
        finally:
            unregister_device("KitTestNI")

    def test_plugin_can_shadow_a_generative_point(self):
        from repro.ni import device_class

        generated = device_class("NI8w")

        @register_device("NI8w")
        class CustomNI8w(NI2w):
            taxonomy_name = "NI8w"

        try:
            assert device_class("NI8w") is CustomNI8w
        finally:
            unregister_device("NI8w")
        assert device_class("NI8w") is generated

    def test_example_plugin_registers_hybrid_device(self):
        """examples/custom_protocol.py's plugin builds and delivers."""
        import importlib.util
        import pathlib

        path = pathlib.Path(__file__).parent.parent / "examples" / "custom_protocol.py"
        loader = importlib.util.spec_from_file_location("custom_protocol", path)
        module = importlib.util.module_from_spec(loader)
        loader.loader.exec_module(module)
        try:
            machine = build_machine("HybridNI", "memory", num_nodes=2)
            assert run_stream(machine, payload_bytes=244, count=6) == 6
            # Coherent send path: message-ready uncached stores, not words.
            assert machine.nodes[0].ni.stats.get("message_ready_signals") == 6
        finally:
            unregister_device("HybridNI")


class TestDeviceSpaceSweep:
    def test_expansion_and_validation(self):
        sweep = device_space_sweep(kind="latency", families=("CNIQ",), sizes=(4, 16))
        devices = [p.device for p in sweep]
        assert devices == ["CNI4Q", "CNI16Q"]
        with pytest.raises(SpecError):
            device_space_sweep(families=("bogus",))

    def test_illegal_size_fails_at_expansion(self):
        from repro.ni import TaxonomyError

        with pytest.raises(TaxonomyError):
            device_space_sweep(families=("CNIQ",), sizes=(6,)).expand()

    def test_runs_across_families(self):
        results = SweepRunner().run(
            device_space_sweep(
                kind="bandwidth", families=("NIw", "CNIQ"), sizes=(4,),
                messages=8, warmup=2,
            )
        )
        by_device = {r.spec.device: r.metrics["bandwidth_mbps"] for r in results}
        assert set(by_device) == {"NI4w", "CNI4Q"}
        assert by_device["CNI4Q"] > by_device["NI4w"]


class TestCacheSchemaInvalidation:
    def test_schema_bump_invalidates_entries(self, tmp_path, monkeypatch):
        spec = ExperimentSpec(kind="latency", device="NI2w", message_bytes=16,
                              iterations=2, warmup=1)
        cache = ResultCache(str(tmp_path))
        cache.put(run_point(spec))
        assert cache.get(spec) is not None

        import repro.api.cache as cache_module

        monkeypatch.setattr(cache_module, "DEVICE_SCHEMA_VERSION",
                            cache_module.DEVICE_SCHEMA_VERSION + 1)
        fresh = ResultCache(str(tmp_path))
        assert fresh.get(spec) is None  # key no longer matches

    def test_schema_version_stamped_in_payload(self, tmp_path):
        import json

        from repro.ni import DEVICE_SCHEMA_VERSION

        spec = ExperimentSpec(kind="latency", device="NI2w", message_bytes=16,
                              iterations=2, warmup=1)
        cache = ResultCache(str(tmp_path))
        path = cache.put(run_point(spec))
        payload = json.loads(open(path).read())
        assert payload["device_schema_version"] == DEVICE_SCHEMA_VERSION

    def test_stale_payload_stamp_is_a_miss(self, tmp_path):
        import json

        spec = ExperimentSpec(kind="latency", device="NI2w", message_bytes=16,
                              iterations=2, warmup=1)
        cache = ResultCache(str(tmp_path))
        path = cache.put(run_point(spec))
        payload = json.loads(open(path).read())
        payload["device_schema_version"] = -1
        with open(path, "w") as handle:
            json.dump(payload, handle)
        assert cache.get(spec) is None


class TestMachineDeviceSpace:
    def test_machine_enumerates_devices(self):
        from repro.node.machine import Machine

        names = {info.name for info in Machine.available_devices()}
        assert {"NI2w", "NI16w", "NI128Q", "CNI64Q"} <= names

    def test_machine_device_info(self):
        machine = build_machine("CNI64Q", "memory", num_nodes=2)
        infos = machine.device_info()
        assert len(infos) == 2
        assert all(info.exposed_size == 64 and info.queue == "Q" for info in infos)
