"""Tests for the unified experiment API (repro.api).

Covers the satellite requirements: spec hashing stability, cache hit/miss
behaviour, parallel vs serial result equality, ResultSet JSON round-trips,
plus Machine.from_spec and the early ni_kwargs validation.
"""

import json
import os

import pytest

from repro import Machine
from repro.api import (
    ExperimentSpec,
    ResultCache,
    ResultSet,
    RunResult,
    SpecError,
    SweepRunner,
    SweepSpec,
    bandwidth_sweep,
    latency_sweep,
    macro_sweep,
    occupancy_reductions,
    paper_tables,
    run_point,
    speedups,
)
from repro.experiments.run import main as run_main
from repro.ni.taxonomy import TaxonomyError
from repro.node.node import NodeConfigError

#: A tiny latency spec used throughout (fast: 3 iterations, 1 warm-up).
QUICK = dict(kind="latency", message_bytes=8, iterations=3, warmup=1)


def quick_sweep():
    return latency_sweep(
        [("NI2w", "memory"), ("CNI512Q", "memory")], (8, 16), iterations=3, warmup=1
    )


class TestSpec:
    def test_hash_is_stable_across_calls_and_round_trips(self):
        spec = ExperimentSpec(**QUICK)
        assert spec.spec_hash() == spec.spec_hash()
        clone = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert clone.spec_hash() == spec.spec_hash()

    def test_hash_pinned_value(self):
        """The canonical encoding (and thus cache keys) must not drift
        silently; bump SPEC_VERSION when changing it deliberately."""
        spec = ExperimentSpec(
            kind="latency", device="NI2w", bus="memory", message_bytes=64, iterations=10
        )
        assert spec.spec_hash() == (
            "e4f937cae1d22b02a9dc22329bb496646568bfee5e1c939a58372002ec9e4bd2"
        )

    def test_hash_sensitive_to_every_axis(self):
        base = ExperimentSpec(**QUICK)
        variants = [
            base.with_overrides(device="CNI4"),
            base.with_overrides(bus="io"),
            base.with_overrides(message_bytes=16),
            base.with_overrides(snarfing=True),
            base.with_overrides(ni_kwargs={"fifo_messages": 4}),
            base.with_overrides(params={"sliding_window": 2}),
            base.with_overrides(seed=7),
        ]
        hashes = {base.spec_hash()} | {v.spec_hash() for v in variants}
        assert len(hashes) == len(variants) + 1

    def test_kwargs_order_does_not_change_hash(self):
        a = ExperimentSpec(**QUICK, ni_kwargs={"a": 1, "b": 2})
        b = ExperimentSpec(**QUICK, ni_kwargs={"b": 2, "a": 1})
        assert a.spec_hash() == b.spec_hash()

    def test_validate_rejects_bad_specs(self):
        with pytest.raises(SpecError):
            ExperimentSpec(kind="nonsense").validate()
        with pytest.raises(SpecError):
            ExperimentSpec(kind="latency", bus="quantum").validate()
        with pytest.raises(SpecError):
            ExperimentSpec(kind="latency", iterations=0).validate()
        with pytest.raises(SpecError):
            ExperimentSpec(kind="macro").validate()  # workload missing
        with pytest.raises(SpecError):
            ExperimentSpec(kind="macro", workload="hpcg").validate()

    def test_validate_rejects_bad_ni_kwargs_early(self):
        spec = ExperimentSpec(**QUICK, device="CNI16Q", ni_kwargs={"bogus_knob": 1})
        with pytest.raises(TaxonomyError):
            spec.validate()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(SpecError):
            ExperimentSpec.from_dict({"kind": "latency", "flux_capacitor": True})

    def test_config_label_and_describe(self):
        spec = ExperimentSpec(kind="bandwidth", device="CNI16Qm", snarfing=True)
        assert spec.config == "CNI16Qm@memory+snarf"
        assert "CNI16Qm" in spec.describe()

    def test_resolved_seed_prefers_explicit_then_workload_kwargs(self):
        assert ExperimentSpec(seed=7).resolved_seed() == 7
        assert ExperimentSpec(workload_kwargs={"seed": 9}).resolved_seed() == 9
        # Device placement must not change the problem instance.
        a = ExperimentSpec(kind="macro", workload="gauss", device="NI2w")
        b = ExperimentSpec(kind="macro", workload="gauss", device="CNI16Qm")
        assert a.resolved_seed() == b.resolved_seed()


class TestSweepSpec:
    def test_cartesian_expansion(self):
        sweep = SweepSpec.cartesian(
            ExperimentSpec(**QUICK), device=("NI2w", "CNI4"), message_bytes=(8, 16, 32)
        )
        points = sweep.expand()
        assert len(sweep) == len(points) == 6
        assert {(p.device, p.message_bytes) for p in points} == {
            (d, s) for d in ("NI2w", "CNI4") for s in (8, 16, 32)
        }

    def test_cartesian_rejects_unknown_axis(self):
        with pytest.raises(SpecError):
            SweepSpec.cartesian(ExperimentSpec(), voltage=(1, 2))

    def test_explicit_points_preserved_in_order(self):
        points = [ExperimentSpec(**QUICK, device=d) for d in ("CNI4", "NI2w")]
        sweep = SweepSpec.explicit(points)
        assert [p.device for p in sweep] == ["CNI4", "NI2w"]

    def test_sweep_dict_round_trip(self):
        sweep = SweepSpec.cartesian(ExperimentSpec(**QUICK), message_bytes=(8, 16))
        clone = SweepSpec.from_dict(json.loads(json.dumps(sweep.to_dict())))
        assert clone.sweep_hash() == sweep.sweep_hash()
        explicit = SweepSpec.explicit(sweep.expand())
        clone2 = SweepSpec.from_dict(explicit.to_dict())
        assert clone2.sweep_hash() == explicit.sweep_hash()


class TestRunPoint:
    def test_latency_metrics(self):
        result = run_point(ExperimentSpec(**QUICK, device="CNI512Q"))
        assert result.metrics["round_trip_cycles"] > 0
        assert result.metrics["round_trip_us"] == pytest.approx(
            result.metrics["round_trip_cycles"] / 200.0
        )
        assert result.value == result.metrics["round_trip_us"]

    def test_bandwidth_metrics(self):
        result = run_point(
            ExperimentSpec(kind="bandwidth", device="CNI512Q", message_bytes=256,
                           messages=10, warmup=2)
        )
        assert result.metrics["bandwidth_mbps"] > 0
        assert 0 < result.metrics["relative_bandwidth"] < 2.0

    def test_macro_metrics(self):
        result = run_point(
            ExperimentSpec(kind="macro", workload="gauss", device="CNI16Qm",
                           num_nodes=4, scale=0.15,
                           workload_kwargs={"elimination_cycles": 2000})
        )
        assert result.metrics["cycles"] > 0
        assert result.metrics["memory_bus_occupancy"] > 0

    def test_params_override_changes_behaviour(self):
        base = ExperimentSpec(kind="bandwidth", device="CNI512Q", message_bytes=256,
                              messages=15, warmup=3)
        narrow = base.with_overrides(params={"sliding_window": 1})
        fast = run_point(base)
        slow = run_point(narrow)
        assert slow.metrics["total_cycles"] > fast.metrics["total_cycles"]

    def test_run_point_is_deterministic(self):
        spec = ExperimentSpec(**QUICK, device="CNI4")
        assert run_point(spec) == run_point(spec)


class TestResultSet:
    def test_json_round_trip_identity(self):
        results = SweepRunner().run(quick_sweep())
        assert ResultSet.from_json(results.to_json()) == results

    def test_run_result_json_round_trip(self):
        result = run_point(ExperimentSpec(**QUICK))
        assert RunResult.from_json(result.to_json()) == result

    def test_save_load(self, tmp_path):
        results = SweepRunner().run(quick_sweep())
        path = str(tmp_path / "results.json")
        results.save(path)
        assert ResultSet.load(path) == results

    def test_filter_by_field_and_membership(self):
        results = SweepRunner().run(quick_sweep())
        ni2w = results.filter(device="NI2w")
        assert len(ni2w) == 2
        assert all(r.spec.device == "NI2w" for r in ni2w)
        both = results.filter(device=("NI2w", "CNI512Q"), message_bytes=8)
        assert len(both) == 2
        assert results.filter(lambda r: r.value > 0) == results

    def test_filter_unknown_field_raises(self):
        results = SweepRunner().run([ExperimentSpec(**QUICK)])
        with pytest.raises(SpecError):
            results.filter(astrology="aries")

    def test_pivot_layout(self):
        results = SweepRunner().run(quick_sweep())
        panel = results.pivot(series="device", x="message_bytes", value="round_trip_us")
        assert set(panel) == {"NI2w", "CNI512Q"}
        assert set(panel["NI2w"]) == {8, 16}
        assert all(v > 0 for row in panel.values() for v in row.values())

    def test_merge_deduplicates(self):
        results = SweepRunner().run(quick_sweep())
        merged = results.merge(results)
        assert len(merged) == len(results)


class TestRunnerCache:
    def test_cache_miss_then_hit(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = SweepRunner(cache_dir=cache_dir)
        uncached = first.run(quick_sweep())
        assert first.cache_stats() == {"hits": 0, "misses": 4}
        assert all(not r.cached for r in uncached)

        second = SweepRunner(cache_dir=cache_dir)
        cached = second.run(quick_sweep())
        assert second.cache_stats() == {"hits": 4, "misses": 0}
        assert all(r.cached for r in cached)
        assert cached == uncached  # equality ignores provenance

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        spec = ExperimentSpec(**QUICK)
        runner = SweepRunner(cache_dir=cache_dir)
        result = runner.run_one(spec)
        path = ResultCache(cache_dir).path_for(spec)
        with open(path, "w") as handle:
            handle.write("{not json")
        rerun = SweepRunner(cache_dir=cache_dir).run_one(spec)
        assert rerun == result
        assert not rerun.cached

    @pytest.mark.parametrize(
        "contents", ["5", '{"spec": 5}', '{"spec": {"kind": "latency"}, "metrics": 7}']
    )
    def test_wrong_shape_json_cache_entry_is_a_miss(self, tmp_path, contents):
        """Valid JSON of the wrong shape must degrade to a miss, not crash."""
        cache_dir = str(tmp_path / "cache")
        spec = ExperimentSpec(**QUICK)
        result = SweepRunner(cache_dir=cache_dir).run_one(spec)
        with open(ResultCache(cache_dir).path_for(spec), "w") as handle:
            handle.write(contents)
        rerun = SweepRunner(cache_dir=cache_dir).run_one(spec)
        assert rerun == result
        assert not rerun.cached

    def test_wrong_spec_in_cache_file_is_a_miss(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        spec = ExperimentSpec(**QUICK)
        other = ExperimentSpec(**QUICK, device="CNI4")
        runner = SweepRunner(cache_dir=cache_dir)
        other_result = runner.run_one(other)
        # Plant the other spec's result under this spec's cache path.
        with open(ResultCache(cache_dir).path_for(spec), "w") as handle:
            handle.write(other_result.to_json())
        rerun = SweepRunner(cache_dir=cache_dir).run_one(spec)
        assert rerun.spec == spec
        assert not rerun.cached

    def test_duplicate_points_simulated_once(self):
        spec = ExperimentSpec(**QUICK)
        runner = SweepRunner()
        results = runner.run([spec, spec, spec])
        assert len(results) == 3
        assert results[0] is results[1] is results[2]

    def test_cache_entry_from_other_simulator_version_is_a_miss(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        spec = ExperimentSpec(**QUICK)
        runner = SweepRunner(cache_dir=cache_dir)
        result = runner.run_one(spec)
        path = ResultCache(cache_dir).path_for(spec)
        with open(path) as handle:
            payload = json.load(handle)
        payload["repro_version"] = "0.0.0-stale"
        with open(path, "w") as handle:
            json.dump(payload, handle)
        follow_up = SweepRunner(cache_dir=cache_dir)
        rerun = follow_up.run_one(spec)
        assert rerun == result
        assert not rerun.cached
        assert follow_up.cache_stats()["misses"] == 1
        # The stale entry was rewritten: a third runner hits.
        third = SweepRunner(cache_dir=cache_dir)
        assert third.run_one(spec).cached

    def test_runner_history_memoises_across_run_calls(self):
        spec = ExperimentSpec(**QUICK)
        runner = SweepRunner()
        first = runner.run_one(spec)
        # Same runner, new sweep sharing the point: served from history,
        # not re-simulated (identical object, not merely equal).
        again = runner.run([spec, ExperimentSpec(**QUICK, device="CNI4")])
        assert again[0] is first

    def test_cache_clear(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        SweepRunner(cache_dir=cache_dir).run(quick_sweep())
        cache = ResultCache(cache_dir)
        assert cache.clear() == 4
        assert cache.clear() == 0


class TestParallelExecution:
    def test_parallel_equals_serial(self):
        serial = SweepRunner(jobs=1).run(quick_sweep())
        parallel = SweepRunner(jobs=4).run(quick_sweep())
        assert parallel == serial

    def test_parallel_fills_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        SweepRunner(jobs=2, cache_dir=cache_dir).run(quick_sweep())
        follow_up = SweepRunner(cache_dir=cache_dir)
        follow_up.run(quick_sweep())
        assert follow_up.cache_stats()["hits"] == 4

    def test_progress_callback_sees_every_unique_point(self):
        seen = []
        runner = SweepRunner(progress=lambda done, total, result: seen.append((done, total)))
        runner.run(quick_sweep())
        assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]

    def test_history_accumulates_across_runs(self):
        runner = SweepRunner()
        runner.run(quick_sweep())
        runner.run([ExperimentSpec(**QUICK, device="CNI4")])
        assert len(runner.history) == 5

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)


class TestPresets:
    def test_macro_sweep_prepends_baseline_once(self):
        sweep = macro_sweep(["gauss"], [("NI2w", "memory"), ("CNI4", "memory")],
                            num_nodes=4, scale=0.15)
        configs = [(p.device, p.bus) for p in sweep]
        assert configs == [("NI2w", "memory"), ("CNI4", "memory")]
        sweep2 = macro_sweep(["gauss"], [("CNI4", "io")], num_nodes=4, scale=0.15)
        assert [(p.device, p.bus) for p in sweep2] == [("NI2w", "memory"), ("CNI4", "io")]

    def test_speedups_and_occupancy_from_results(self):
        sweep = macro_sweep(
            ["gauss"], [("CNI16Qm", "memory")], num_nodes=4, scale=0.15,
            workload_kwargs={"gauss": {"elimination_cycles": 2000}},
        )
        results = SweepRunner().run(sweep)
        ratio = speedups(results, "gauss")
        assert ratio["NI2w@memory"] == 1.0
        assert ratio["CNI16Qm@memory"] > 0
        reductions = occupancy_reductions(results, "gauss")
        assert reductions["NI2w"] == 0.0
        assert "CNI16Qm" in reductions

    def test_speedups_require_baseline(self):
        results = SweepRunner().run(
            [ExperimentSpec(kind="macro", workload="gauss", device="CNI4",
                            num_nodes=4, scale=0.15)]
        )
        with pytest.raises(KeyError):
            speedups(results, "gauss")

    def test_bandwidth_sweep_snarfing_config_label(self):
        sweep = bandwidth_sweep([("CNI16Qm", "memory")], (64,), messages=5, snarfing=True)
        assert sweep.expand()[0].config == "CNI16Qm@memory+snarf"

    def test_paper_tables_keys(self):
        rows = paper_tables()
        assert set(rows) == {"table1", "table2", "table3", "table4"}
        assert len(rows["table1"]) == 5


class TestMachineFromSpec:
    def test_from_spec_builds_described_machine(self):
        spec = ExperimentSpec(device="CNI512Q", bus="io", num_nodes=4)
        machine = Machine.from_spec(spec)
        assert len(machine.nodes) == 4
        assert all(node.config.ni_name == "CNI512Q" for node in machine.nodes)
        assert "CNI512Q" in machine.describe() and "io" in machine.describe()

    def test_from_spec_applies_params_and_ni_kwargs(self):
        spec = ExperimentSpec(
            device="CNI16Q",
            num_nodes=2,
            ni_kwargs={"send_queue_blocks": 32},
            params={"sliding_window": 2},
        )
        machine = Machine.from_spec(spec)
        assert machine.params.sliding_window == 2

    def test_build_raises_taxonomy_error_before_node_assembly(self):
        with pytest.raises(TaxonomyError):
            Machine.build("CNI16Q", "memory", num_nodes=2, ni_kwargs={"wrong": 1})
        with pytest.raises(TaxonomyError):
            Machine.from_spec(ExperimentSpec(device="CNI9999"))

    def test_build_still_rejects_illegal_bus_placements_eagerly(self):
        with pytest.raises(NodeConfigError):
            Machine.build("CNI16Qm", "io", num_nodes=2)


class TestCli:
    def test_fig6_quick_json_output(self, tmp_path, capsys):
        out = str(tmp_path / "out.json")
        cache = str(tmp_path / "cache")
        code = run_main([
            "fig6", "--quick", "--jobs", "2", "--json", out, "--cache-dir", cache,
        ])
        assert code == 0
        assert "Figure 6" in capsys.readouterr().out
        with open(out) as handle:
            payload = json.load(handle)
        assert payload["experiment"] == "fig6"
        assert payload["cache"]["misses"] > 0
        results = ResultSet.from_dict(payload)
        assert len(results) == 36  # 3 sizes x (5 memory + 4 io + 3 alternate)
        assert all(r.spec.kind == "latency" for r in results)

        # Second invocation: everything from cache, identical data points.
        out2 = str(tmp_path / "out2.json")
        assert run_main(["fig6", "--quick", "--json", out2, "--cache-dir", cache]) == 0
        with open(out2) as handle:
            payload2 = json.load(handle)
        # fig6 has 36 points but only 30 unique specs (the alternate panel
        # shares 6 with the memory/io panels); duplicates come from the
        # runner's in-process history, not the disk cache.  The CLI's memo
        # is a ResultStore, so the stats carry store counters too.
        assert payload2["cache"]["hits"] == 30
        assert payload2["cache"]["misses"] == 0
        assert payload2["cache"]["entries"] == 30
        assert ResultSet.from_dict(payload2) == results

    def test_tables_include_rows_in_json(self, tmp_path, capsys):
        out = str(tmp_path / "tables.json")
        assert run_main(["tables", "--no-cache", "--json", out]) == 0
        assert "Table 1" in capsys.readouterr().out
        with open(out) as handle:
            payload = json.load(handle)
        assert set(payload["tables"]) == {"table1", "table2", "table3", "table4"}

    def test_no_cache_flag_skips_cache_directory(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert run_main(["occupancy", "--quick", "--nodes", "4", "--scale", "0.15",
                         "--no-cache"]) == 0
        assert "occupancy" in capsys.readouterr().out.lower()
        assert not os.path.exists(tmp_path / ".repro-cache")


class TestEngineKind:
    """The kind="engine" points that track kernel throughput."""

    def test_engine_spec_requires_workload(self):
        with pytest.raises(SpecError):
            ExperimentSpec(kind="engine").validate()

    def test_engine_spec_validates_with_workload(self):
        spec = ExperimentSpec(kind="engine", workload="moldyn", scale=0.25)
        assert spec.validate() is spec
        assert "moldyn" in spec.describe()

    def test_engine_sweep_builds_engine_points(self):
        from repro.api import engine_sweep

        sweep = engine_sweep(["moldyn"], [("NI2w", "memory"), ("CNI16Qm", "memory")],
                             num_nodes=2, scale=0.1)
        points = sweep.expand()
        assert len(points) == 2
        assert all(p.kind == "engine" for p in points)

    def test_run_point_reports_kernel_throughput(self):
        spec = ExperimentSpec(
            kind="engine", workload="moldyn", device="CNI16Qm", bus="memory",
            num_nodes=2, scale=0.1, workload_kwargs={"iterations": 1},
        )
        result = run_point(spec)
        assert result.metrics["events"] > 0
        assert result.metrics["events_per_sec"] > 0
        assert result.metrics["cycles"] > 0
        assert (
            result.metrics["lane_events"] + result.metrics["heap_events"]
            == result.metrics["events"]
        )

    def test_machine_run_programs_profile_hook(self):
        from repro.node.machine import Machine

        machine = Machine.build("CNI16Qm", "memory", num_nodes=2)

        def idle():
            yield 5

        machine.run_programs({0: idle()}, max_cycles=10_000, profile=True)
        assert machine.last_profile is not None
        assert machine.last_profile["events"] == machine.sim.event_count

    def test_engine_points_are_never_served_from_cache(self, tmp_path):
        from repro.api import SweepRunner

        spec = ExperimentSpec(
            kind="engine", workload="moldyn", device="CNI16Qm", bus="memory",
            num_nodes=2, scale=0.1, workload_kwargs={"iterations": 1},
        )
        runner = SweepRunner(cache_dir=str(tmp_path))
        runner.run_one(spec)
        runner.run_one(spec)
        # Wall-clock measurements must re-run: no cache traffic at all.
        assert runner.cache_stats() == {"hits": 0, "misses": 0}

    def test_cni4_rejects_messages_larger_than_its_cdr_window(self):
        from repro.common.params import DEFAULT_PARAMS
        from repro.ni.base import NIError
        from repro.node.machine import Machine

        with pytest.raises(NIError, match="CDR blocks"):
            Machine.build(
                "CNI4", "memory", num_nodes=2,
                params=DEFAULT_PARAMS.with_overrides(network_message_bytes=512),
            )

    def test_processor_compute_rejects_fractional_cycles(self):
        from repro.node.machine import Machine
        from repro.sim import SimulationError

        machine = Machine.build("NI2w", "memory", num_nodes=2)

        def program():
            yield from machine.nodes[0].processor.compute(12.5)

        machine.start()
        machine.nodes[0].processor.run_program(program())
        with pytest.raises(SimulationError):
            machine.sim.run()
