"""Tests for the cachable-queue mechanism: sense reverse, lazy pointers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import NetworkMessage
from repro.ni.cq import CachableQueue, QueueError, SenseReverseQueue, sense_for_pass


def make_queue(num_blocks=16, blocks_per_entry=4):
    return CachableQueue(
        name="q",
        base_addr=0x8000_0000,
        num_blocks=num_blocks,
        blocks_per_entry=blocks_per_entry,
        block_bytes=64,
        head_ptr_addr=0x0010_0000,
        tail_ptr_addr=0x0010_0040,
    )


def msg(i=0):
    return NetworkMessage(source=0, dest=1, payload_bytes=32, seq=i)


class TestBasicQueueOperations:
    def test_new_queue_is_empty(self):
        q = make_queue()
        assert q.empty()
        assert not q.full()
        assert q.peek() is None
        assert q.capacity == 4

    def test_enqueue_dequeue_fifo_order(self):
        q = make_queue()
        for i in range(3):
            q.enqueue(msg(i))
        assert [q.dequeue().seq for _ in range(3)] == [0, 1, 2]

    def test_fill_to_capacity_then_full(self):
        q = make_queue()
        for i in range(q.capacity):
            q.enqueue(msg(i))
        assert q.full()
        with pytest.raises(QueueError):
            q.enqueue(msg(99))

    def test_dequeue_empty_raises(self):
        with pytest.raises(QueueError):
            make_queue().dequeue()

    def test_wraparound_many_passes(self):
        q = make_queue()
        sent = 0
        received = 0
        for _ in range(5 * q.capacity):
            q.enqueue(msg(sent))
            sent += 1
            out = q.dequeue()
            assert out.seq == received
            received += 1
        assert q.empty()

    def test_occupancy_tracking(self):
        q = make_queue()
        q.enqueue(msg())
        q.enqueue(msg())
        assert q.occupancy == 2
        q.dequeue()
        assert q.occupancy == 1
        assert q.max_occupancy == 2

    def test_invalid_geometry_rejected(self):
        with pytest.raises(QueueError):
            make_queue(num_blocks=10, blocks_per_entry=4)
        with pytest.raises(QueueError):
            make_queue(num_blocks=0)


class TestSenseReverse:
    def test_sense_alternates_per_pass(self):
        assert sense_for_pass(1) == 1
        assert sense_for_pass(2) == 0
        assert sense_for_pass(3) == 1

    def test_sender_sense_flips_on_wrap(self):
        q = make_queue()
        assert q.sender_sense == 1
        for i in range(q.capacity):
            q.enqueue(msg(i))
        assert q.sender_sense == 0

    def test_receiver_sense_follows_sender(self):
        q = make_queue()
        for i in range(q.capacity):
            q.enqueue(msg(i))
        for _ in range(q.capacity):
            q.dequeue()
        assert q.receiver_sense == q.sender_sense == 0

    def test_stale_entry_not_visible_after_wrap(self):
        """Sense reverse means old entries need no clearing: after a full
        pass, an un-overwritten slot reads as invalid."""
        q = make_queue()
        for i in range(q.capacity):
            q.enqueue(msg(i))
        for _ in range(q.capacity):
            q.dequeue()
        # The slots still physically hold pass-1 entries (sense 1), but the
        # receiver now expects sense 0, so the queue reads as empty.
        assert q.entries[q.head_index()].message is not None
        assert not q.head_entry_valid()
        assert q.peek() is None

    def test_valid_entry_visible_mid_pass(self):
        q = make_queue()
        q.enqueue(msg(7))
        assert q.head_entry_valid()
        assert q.peek().seq == 7


class TestLazyPointers:
    def test_shadow_initially_conservative(self):
        q = make_queue()
        for i in range(q.capacity):
            q.enqueue(msg(i))
            q.dequeue()
        # The sender has not refreshed its shadow, so it believes the queue
        # might be full even though it is actually empty.
        assert q.full_by_shadow()
        assert not q.full()

    def test_refresh_shadow_unblocks_sender(self):
        q = make_queue()
        for i in range(q.capacity):
            q.enqueue(msg(i))
            q.dequeue()
        q.refresh_shadow()
        assert not q.full_by_shadow()
        assert q.shadow_refreshes == 1

    def test_shadow_never_underestimates_occupancy(self):
        q = make_queue()
        q.enqueue(msg())
        q.refresh_shadow()
        q.enqueue(msg())
        # shadow-based occupancy >= true occupancy is the safety property.
        assert q.tail_count - q.shadow_head_count >= q.occupancy

    def test_shadow_refresh_rate_bounded_when_half_full(self):
        """If the queue stays no more than half full, the sender needs at
        most two refreshes per pass around the array (paper Section 2.2)."""
        q = make_queue(num_blocks=32)  # 8 entries
        refreshes_per_pass = []
        for _pass in range(6):
            start = q.shadow_refreshes
            for i in range(q.capacity):
                if q.full_by_shadow():
                    q.refresh_shadow()
                q.enqueue(msg(i))
                q.dequeue()  # receiver keeps up: occupancy <= 1
            refreshes_per_pass.append(q.shadow_refreshes - start)
        assert all(count <= 2 for count in refreshes_per_pass)


class TestAddressHelpers:
    def test_entry_block_addresses_contiguous(self):
        q = make_queue()
        blocks = q.entry_block_addrs(1)
        assert blocks == [0x8000_0000 + 4 * 64, 0x8000_0000 + 5 * 64, 0x8000_0000 + 6 * 64, 0x8000_0000 + 7 * 64]

    def test_partial_entry_blocks(self):
        q = make_queue()
        assert len(q.entry_block_addrs(0, 2)) == 2
        with pytest.raises(QueueError):
            q.entry_block_addrs(0, 5)
        with pytest.raises(QueueError):
            q.entry_block_addrs(99)

    def test_valid_word_is_first_block(self):
        q = make_queue()
        assert q.valid_word_addr(2) == q.entry_block_addrs(2)[0]

    def test_all_block_addrs(self):
        q = make_queue()
        assert len(q.all_block_addrs()) == 16


class TestSenseReverseReferenceQueue:
    def test_reference_full_and_empty(self):
        q = SenseReverseQueue(capacity=4)
        assert q.is_empty()
        for i in range(4):
            assert q.enqueue(i)
        assert q.is_full()
        assert not q.enqueue(99)
        assert [q.dequeue() for _ in range(4)] == [0, 1, 2, 3]
        assert q.is_empty()
        assert q.dequeue() is None

    def test_invalid_capacity(self):
        with pytest.raises(QueueError):
            SenseReverseQueue(capacity=0)


class TestEquivalenceWithFigure4And5PseudoCode:
    """Property: CachableQueue (monotonic counters) behaves identically to a
    literal transcription of the paper's Figure 4/5 sense-reverse queue."""

    @given(
        capacity=st.integers(min_value=1, max_value=8),
        ops=st.lists(st.booleans(), min_size=1, max_size=200),
    )
    @settings(max_examples=150, deadline=None)
    def test_same_visible_behaviour(self, capacity, ops):
        cq = CachableQueue(
            name="cq",
            base_addr=0,
            num_blocks=capacity * 4,
            blocks_per_entry=4,
            block_bytes=64,
            head_ptr_addr=0x1000,
            tail_ptr_addr=0x1040,
        )
        ref = SenseReverseQueue(capacity=capacity)
        sequence = 0
        for is_enqueue in ops:
            if is_enqueue:
                ref_ok = ref.enqueue(sequence)
                cq_ok = not cq.full()
                if cq_ok:
                    cq.enqueue(msg(sequence))
                assert cq_ok == ref_ok
                if ref_ok:
                    sequence += 1
            else:
                ref_item = ref.dequeue()
                cq_item = cq.peek()
                if cq_item is not None:
                    cq.dequeue()
                assert (ref_item is None) == (cq_item is None)
                if ref_item is not None:
                    assert cq_item.seq == ref_item

    @given(
        capacity=st.integers(min_value=1, max_value=6),
        n_messages=st.integers(min_value=0, max_value=60),
    )
    @settings(max_examples=80, deadline=None)
    def test_fifo_order_preserved_under_backpressure(self, capacity, n_messages):
        cq = CachableQueue(
            name="cq",
            base_addr=0,
            num_blocks=capacity * 4,
            blocks_per_entry=4,
            block_bytes=64,
            head_ptr_addr=0x1000,
            tail_ptr_addr=0x1040,
        )
        sent = 0
        received = []
        while len(received) < n_messages:
            while sent < n_messages and not cq.full():
                cq.enqueue(msg(sent))
                sent += 1
            item = cq.peek()
            if item is not None:
                cq.dequeue()
                received.append(item.seq)
        assert received == list(range(n_messages))
