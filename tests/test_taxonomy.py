"""Tests for the NI/CNI taxonomy parser and device factory."""

import pytest

from repro.ni import (
    CNI4,
    CNI16Q,
    CNI512Q,
    CNI16Qm,
    NI2w,
    TaxonomyError,
    available_devices,
    classify_existing_machines,
    device_class,
    parse_ni_name,
    register_device,
    validate_ni_kwargs,
)
from repro.ni.base import AbstractNI
from repro.ni.taxonomy import EVALUATED_DEVICES, _DEVICE_CLASSES


class TestParser:
    def test_ni2w(self):
        spec = parse_ni_name("NI2w")
        assert not spec.coherent
        assert spec.exposed_size == 2
        assert spec.unit == "words"
        assert spec.queue is None
        assert spec.home == "device"
        assert spec.exposed_blocks is None

    def test_cni4(self):
        spec = parse_ni_name("CNI4")
        assert spec.coherent
        assert spec.exposed_size == 4
        assert spec.unit == "blocks"
        assert spec.queue is None
        assert spec.exposed_blocks == 4

    def test_cni16q(self):
        spec = parse_ni_name("CNI16Q")
        assert spec.coherent and spec.queue == "Q" and spec.home == "device"

    def test_cni512q(self):
        spec = parse_ni_name("CNI512Q")
        assert spec.exposed_size == 512 and spec.queue == "Q"

    def test_cni16qm(self):
        spec = parse_ni_name("CNI16Qm")
        assert spec.queue == "Qm"
        assert spec.home == "memory"

    def test_paper_classification_of_existing_machines(self):
        machines = classify_existing_machines()
        assert machines["TMC CM-5"] == "NI2w"
        assert parse_ni_name(machines["MIT Alewife"]).exposed_size == 16
        assert parse_ni_name(machines["MIT *T-NG"]).queue == "Q"

    @pytest.mark.parametrize("bad", ["", "XNI4", "CNI", "NI0", "CNIQ", "NI-4", "NI4Qx"])
    def test_malformed_names_rejected(self, bad):
        with pytest.raises(TaxonomyError):
            parse_ni_name(bad)

    def test_memory_home_requires_coherent_device(self):
        with pytest.raises(TaxonomyError):
            parse_ni_name("NI16Qm")

    # ------------------------------------------------------------------
    # Edge cases: every rejection names the offending grammar field.
    # ------------------------------------------------------------------
    def test_zero_size_names_size_field(self):
        with pytest.raises(TaxonomyError, match="size"):
            parse_ni_name("NI0")

    @pytest.mark.parametrize("aliased", ["NI04", "CNI016Q"])
    def test_leading_zero_sizes_rejected(self, aliased):
        """'NI04' must not alias 'NI4' into a distinct cacheable device."""
        with pytest.raises(TaxonomyError, match="leading zeros"):
            parse_ni_name(aliased)

    def test_word_sized_coherent_device_names_unit_field(self):
        with pytest.raises(TaxonomyError, match="unit"):
            parse_ni_name("CNI4w")

    @pytest.mark.parametrize("lower", ["cni4", "ni2W", "CNI16qm", "cNi16Q"])
    def test_lowercase_names_rejected_with_case_hint(self, lower):
        with pytest.raises(TaxonomyError, match="case-sensitive"):
            parse_ni_name(lower)

    @pytest.mark.parametrize("bad", ["NI4wQm", "NI4wQ"])
    def test_queue_suffix_on_word_sized_device_names_queue_field(self, bad):
        with pytest.raises(TaxonomyError, match="queue"):
            parse_ni_name(bad)

    def test_memory_home_on_uncoherent_device_names_queue_field(self):
        with pytest.raises(TaxonomyError, match="queue"):
            parse_ni_name("NI16Qm")

    def test_describe_mentions_key_attributes(self):
        text = parse_ni_name("CNI16Qm").describe()
        assert "coherent" in text and "16" in text and "memory" in text

    @pytest.mark.parametrize("name", EVALUATED_DEVICES)
    def test_parse_describe_round_trip(self, name):
        """parse_ni_name ↔ describe() round-trip for every evaluated device."""
        spec = parse_ni_name(name)
        # Re-parsing the spec's own name reproduces the spec exactly.
        assert parse_ni_name(spec.name) == spec
        text = spec.describe()
        assert text.startswith(f"{spec.name}:")
        assert str(spec.exposed_size) in text
        assert f"home={spec.home}" in text
        unit_word = "cache blocks" if spec.unit == "blocks" else "4-byte words"
        assert unit_word in text
        kind_word = "coherent" if spec.coherent else "uncached"
        assert kind_word in text


class TestFactory:
    def test_evaluated_devices_resolve_to_classes(self):
        assert device_class("NI2w") is NI2w
        assert device_class("CNI4") is CNI4
        assert device_class("CNI16Q") is CNI16Q
        assert device_class("CNI512Q") is CNI512Q
        assert device_class("CNI16Qm") is CNI16Qm

    def test_any_legal_taxonomy_point_resolves(self):
        """The registry synthesizes classes for the whole generative space."""
        for name in ("CNI1024Q", "NI16w", "NI128Q", "CNI64Q", "CNI16", "CNI4Qm"):
            cls = device_class(name)
            assert issubclass(cls, AbstractNI)
            assert cls.taxonomy_name == name

    def test_synthesized_classes_are_memoised(self):
        assert device_class("CNI64Q") is device_class("CNI64Q")

    def test_illegal_names_still_rejected(self):
        with pytest.raises(TaxonomyError):
            device_class("CNI6Q")  # not a whole number of 4-block messages
        with pytest.raises(TaxonomyError):
            device_class("NX4")

    def test_evaluated_device_list_matches_paper(self):
        assert EVALUATED_DEVICES == ("NI2w", "CNI4", "CNI16Q", "CNI512Q", "CNI16Qm")

    def test_available_devices_metadata_sorted(self):
        devices = available_devices()
        names = [info.name for info in devices]
        assert names == sorted(names)
        for name in EVALUATED_DEVICES:
            assert name in names

    def test_available_devices_carry_parsed_specs_and_tunables(self):
        by_name = {info.name: info for info in available_devices()}
        for name in EVALUATED_DEVICES:
            info = by_name[name]
            assert info.spec is not None
            assert info.spec == parse_ni_name(name)
            assert info.tunables  # every evaluated device has constructor knobs
            assert name in info.describe()
        assert "send_queue_blocks" in by_name["CNI16Q"].tunables
        assert "fifo_messages" in by_name["NI2w"].tunables

    def test_available_device_names(self):
        from repro.ni import available_device_names

        names = available_device_names()
        assert names == tuple(sorted(names))
        assert set(EVALUATED_DEVICES) <= set(names)

    def test_unparseable_registered_name_yields_none_spec(self):
        class OddNI(NI2w):
            taxonomy_name = "weird-device"

        register_device("weird-device", OddNI)
        try:
            by_name = {info.name: info for info in available_devices()}
            info = by_name["weird-device"]
            assert info.spec is None
            assert "custom" in info.describe()
        finally:
            _DEVICE_CLASSES.pop("weird-device", None)

    def test_register_custom_device(self):
        class MyNI(NI2w):
            taxonomy_name = "NI4w"

        register_device("NI4w", MyNI)
        try:
            assert device_class("NI4w") is MyNI
        finally:
            _DEVICE_CLASSES.pop("NI4w", None)

    def test_register_non_ni_class_rejected(self):
        with pytest.raises(TaxonomyError):
            register_device("bogus", int)


class TestRegistry:
    """The declarative DeviceSpec registry behind the generative space."""

    def test_device_spec_plans_every_family(self):
        from repro.ni.registry import DeviceSpec

        assert DeviceSpec.from_name("NI16w").family == "uncached"
        assert DeviceSpec.from_name("NI16w").ni_defaults == {"fifo_messages": 32}
        assert DeviceSpec.from_name("NI128Q").ni_defaults == {
            "queue_blocks": 128, "explicit_pointers": True,
        }
        assert DeviceSpec.from_name("CNI16").family == "cdr"
        assert DeviceSpec.from_name("CNI64Q").ni_defaults["recv_home"] == "device"
        qm = DeviceSpec.from_name("CNI4Qm")
        assert qm.ni_defaults == {
            "send_queue_blocks": 4, "recv_queue_blocks": 128,
            "recv_cache_blocks": 4, "recv_home": "memory",
        }

    def test_paper_devices_plan_matches_their_handwritten_classes(self):
        """The generative plan for the paper names mirrors the pinned classes."""
        from repro.ni.registry import DeviceSpec

        assert DeviceSpec.from_name("NI2w").ni_defaults == {"fifo_messages": 4}
        assert DeviceSpec.from_name("CNI4").ni_defaults == {"cdr_blocks": 4}
        assert DeviceSpec.from_name("CNI16Q").ni_defaults == {
            "send_queue_blocks": 16, "recv_queue_blocks": 16,
            "recv_cache_blocks": 16, "recv_home": "device",
        }
        assert DeviceSpec.from_name("CNI16Qm").ni_defaults == {
            "send_queue_blocks": 16, "recv_queue_blocks": 512,
            "recv_cache_blocks": 16, "recv_home": "memory",
        }

    def test_register_device_decorator_form(self):
        from repro.ni import NI2w, register_device, unregister_device

        @register_device("TestPluginNI")
        class PluginNI(NI2w):
            taxonomy_name = "TestPluginNI"

        try:
            assert device_class("TestPluginNI") is PluginNI
        finally:
            unregister_device("TestPluginNI")
        with pytest.raises(TaxonomyError):
            device_class("TestPluginNI")

    def test_unregister_restores_shadowed_paper_devices(self):
        from repro.ni import NI2w, register_device, unregister_device

        class ShadowNI(NI2w):
            taxonomy_name = "NI2w"

        register_device("NI2w", ShadowNI)
        try:
            assert device_class("NI2w") is ShadowNI
        finally:
            unregister_device("NI2w")
        assert device_class("NI2w") is NI2w

    def test_available_devices_enumerates_generative_space(self):
        infos = {info.name: info for info in available_devices()}
        # Classified machines from the paper's Section 3 are all buildable.
        for name in ("NI2w", "NI16w", "NI128Q"):
            assert name in infos
        assert infos["NI16w"].generated and not infos["NI2w"].generated
        assert "generated" in infos["NI16w"].describe()
        names = [info.name for info in available_devices()]
        assert names == sorted(names)
        # The non-generative view is the registered-only view.
        registered = available_devices(generative=False)
        assert all(not info.generated for info in registered)

    def test_generative_sample_all_plan_cleanly(self):
        from repro.ni.registry import GENERATIVE_SAMPLE, DeviceSpec

        for name in GENERATIVE_SAMPLE:
            spec = DeviceSpec.from_name(name)
            assert spec.name == name
            assert spec.family in ("uncached", "cdr", "cq")

    def test_device_schema_version_exported(self):
        from repro.ni import DEVICE_SCHEMA_VERSION

        assert isinstance(DEVICE_SCHEMA_VERSION, int) and DEVICE_SCHEMA_VERSION >= 2


class TestNiKwargsValidation:
    def test_supported_kwargs_accepted(self):
        validate_ni_kwargs("CNI16Q", {"send_queue_blocks": 32, "recv_queue_blocks": 32})
        validate_ni_kwargs("NI2w", {"fifo_messages": 4})
        validate_ni_kwargs("CNI4", None)
        validate_ni_kwargs("CNI4", {})

    def test_unknown_kwarg_rejected_with_supported_list(self):
        with pytest.raises(TaxonomyError) as excinfo:
            validate_ni_kwargs("CNI16Q", {"queue_blocks": 32})
        message = str(excinfo.value)
        assert "queue_blocks" in message and "send_queue_blocks" in message

    def test_infrastructure_params_not_accepted_as_ni_kwargs(self):
        for infra in ("sim", "node_id", "bus_kind", "dram_allocator"):
            with pytest.raises(TaxonomyError):
                validate_ni_kwargs("CNI512Q", {infra: None})

    def test_unknown_device_rejected(self):
        with pytest.raises(TaxonomyError):
            validate_ni_kwargs("CNI9999", {})
